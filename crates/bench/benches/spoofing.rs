//! Criterion benches for the fingerprint half of the paper: cost of each
//! spoofing method, of the detectors that catch them, and of a full
//! simulated site visit.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use hlisa_detect::{probe_side_effects, scan_fingerprint, TemplateAttackDetector};
use hlisa_jsom::{build_firefox_world, BrowserFlavor, Value};
use hlisa_spoof::{SpoofMethod, SpoofingExtension};
use hlisa_stats::rngutil::rng_from_seed;
use hlisa_web::visit::DetectorRuntime;
use hlisa_web::{generate_population, simulate_visit, ClientKind, PopulationConfig};

fn bench_world_build(c: &mut Criterion) {
    c.bench_function("jsom/build_firefox_world", |b| {
        b.iter(|| build_firefox_world(BrowserFlavor::WebDriverFirefox))
    });
}

fn bench_spoof_methods(c: &mut Criterion) {
    let mut group = c.benchmark_group("spoof/apply");
    for method in SpoofMethod::ALL {
        group.bench_function(method.name(), |b| {
            b.iter_batched(
                || build_firefox_world(BrowserFlavor::WebDriverFirefox),
                |mut world| {
                    method
                        .apply(&mut world, "webdriver", Value::Bool(false))
                        .unwrap();
                    world
                },
                BatchSize::SmallInput,
            )
        });
    }
    group.finish();
}

fn bench_detectors(c: &mut Criterion) {
    let mut group = c.benchmark_group("detect");
    group.bench_function("scan_fingerprint", |b| {
        b.iter_batched(
            || build_firefox_world(BrowserFlavor::WebDriverFirefox),
            |mut world| scan_fingerprint(&mut world),
            BatchSize::SmallInput,
        )
    });
    group.bench_function("probe_side_effects", |b| {
        b.iter_batched(
            || {
                let mut w = build_firefox_world(BrowserFlavor::WebDriverFirefox);
                SpoofingExtension::paper_default().inject(&mut w).unwrap();
                w
            },
            |mut world| probe_side_effects(&mut world),
            BatchSize::SmallInput,
        )
    });
    group.bench_function("template_attack_build", |b| {
        b.iter(TemplateAttackDetector::new)
    });
    let detector = TemplateAttackDetector::new();
    group.bench_function("template_attack_diff", |b| {
        b.iter_batched(
            || {
                let mut w = build_firefox_world(BrowserFlavor::WebDriverFirefox);
                SpoofingExtension::paper_default().inject(&mut w).unwrap();
                w
            },
            |mut world| detector.is_tampered(&mut world),
            BatchSize::SmallInput,
        )
    });
    group.finish();
}

fn bench_visit(c: &mut Criterion) {
    let sites = generate_population(&PopulationConfig {
        n_sites: 16,
        unreachable_sites: 0,
        ..PopulationConfig::default()
    });
    let runtime = DetectorRuntime::new();
    let mut group = c.benchmark_group("crawl");
    group.bench_function("simulate_visit", |b| {
        let mut rng = rng_from_seed(1);
        let mut i = 0usize;
        b.iter(|| {
            let site = &sites[i % sites.len()];
            i += 1;
            simulate_visit(site, ClientKind::OpenWpmSpoofed, &runtime, &mut rng)
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_world_build,
    bench_spoof_methods,
    bench_detectors,
    bench_visit
);
criterion_main!(benches);
