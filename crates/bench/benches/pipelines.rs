//! Criterion benches for the interaction half: trajectory synthesis,
//! action-chain execution, the browser event pipeline, typing/scroll
//! planners, and the statistical detectors.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use hlisa::motion::{plan_motion, MotionStyle};
use hlisa::scrolling::plan_hlisa_scroll;
use hlisa::typing::plan_hlisa_typing;
use hlisa::HlisaActionChains;
use hlisa_browser::dom::standard_test_page;
use hlisa_browser::{Browser, BrowserConfig, Point, RawInput};
use hlisa_detect::reference::TYPING_TASK_TEXT;
use hlisa_human::HumanParams;
use hlisa_stats::ks::ks_two_sample;
use hlisa_stats::rngutil::rng_from_seed;
use hlisa_stats::wilcoxon::{wilcoxon_signed_rank, Alternative};
use hlisa_stats::Normal;
use hlisa_webdriver::{By, SeleniumActionChains, Session};
use rand::Rng;

fn bench_motion(c: &mut Criterion) {
    let params = HumanParams::paper_baseline();
    let mut group = c.benchmark_group("motion/plan");
    for (name, style) in [
        ("hlisa", MotionStyle::hlisa()),
        ("naive_bezier", MotionStyle::naive_bezier()),
    ] {
        group.bench_function(name, |b| {
            let mut rng = rng_from_seed(1);
            b.iter(|| {
                plan_motion(
                    style,
                    &params,
                    &mut rng,
                    Point::new(100.0, 500.0),
                    Point::new(900.0, 300.0),
                    40.0,
                )
            })
        });
    }
    group.finish();
}

fn bench_planners(c: &mut Criterion) {
    let params = HumanParams::paper_baseline();
    c.bench_function("typing/plan_hlisa_100_chars", |b| {
        let mut rng = rng_from_seed(2);
        b.iter(|| plan_hlisa_typing(&params, &mut rng, TYPING_TASK_TEXT))
    });
    c.bench_function("scroll/plan_hlisa_30000px", |b| {
        let mut rng = rng_from_seed(3);
        b.iter(|| plan_hlisa_scroll(&params, &mut rng, 30_000.0))
    });
}

fn bench_chains(c: &mut Criterion) {
    let mut group = c.benchmark_group("chains/full_form_fill");
    group.sample_size(30);
    group.bench_function("hlisa", |b| {
        b.iter_batched(
            || {
                Session::new(Browser::open(
                    BrowserConfig::webdriver(),
                    standard_test_page("https://bench.test/", 5_000.0),
                ))
            },
            |mut s| {
                let el = s.find_element(By::Id("text_area".into())).unwrap();
                HlisaActionChains::new(1)
                    .send_keys_to_element(el, "benchmark input")
                    .perform(&mut s)
                    .unwrap();
                s
            },
            BatchSize::SmallInput,
        )
    });
    group.bench_function("selenium", |b| {
        b.iter_batched(
            || {
                Session::new(Browser::open(
                    BrowserConfig::webdriver(),
                    standard_test_page("https://bench.test/", 5_000.0),
                ))
            },
            |mut s| {
                let el = s.find_element(By::Id("text_area".into())).unwrap();
                SeleniumActionChains::new()
                    .send_keys_to_element(el, "benchmark input")
                    .perform(&mut s)
                    .unwrap();
                s
            },
            BatchSize::SmallInput,
        )
    });
    group.finish();
}

fn bench_event_pipeline(c: &mut Criterion) {
    c.bench_function("browser/1000_raw_pointer_events", |b| {
        b.iter_batched(
            || {
                Browser::open(
                    BrowserConfig::regular(),
                    standard_test_page("https://bench.test/", 5_000.0),
                )
            },
            |mut browser| {
                for i in 0..1_000 {
                    browser.input_after(
                        1.0,
                        RawInput::MouseMove {
                            x: f64::from(i % 1_000),
                            y: f64::from(i % 600),
                        },
                    );
                }
                browser
            },
            BatchSize::SmallInput,
        )
    });
}

fn bench_stats(c: &mut Criterion) {
    let mut rng = rng_from_seed(9);
    let d = Normal::new(100.0, 20.0);
    let a: Vec<f64> = (0..500).map(|_| d.sample(&mut rng)).collect();
    let b2: Vec<f64> = (0..500)
        .map(|_| d.sample(&mut rng) + rng.gen_range(-1.0..1.0))
        .collect();
    c.bench_function("stats/ks_two_sample_500", |b| {
        b.iter(|| ks_two_sample(&a, &b2))
    });
    c.bench_function("stats/wilcoxon_500_pairs", |b| {
        b.iter(|| wilcoxon_signed_rank(&a, &b2, Alternative::TwoSided))
    });
}

criterion_group!(
    benches,
    bench_motion,
    bench_planners,
    bench_chains,
    bench_event_pipeline,
    bench_stats
);
criterion_main!(benches);
