//! The draw ledger: a committed, machine-readable census of every
//! randomness derivation site in the workspace.
//!
//! [`build_ledger`] walks the same file set as the workspace linter,
//! collects every `ctx.stream("...")` / `ctx.fork(...)` /
//! `ctx.fork_visit(...)` call site from the AST pass, and aggregates
//! them by `(crate, file, function, kind, stream)`. [`render_ledger`]
//! serialises the result as canonical JSON — sorted keys, one entry per
//! line — so `LINT_LEDGER.json` diffs cleanly under review.
//!
//! Line numbers are deliberately omitted: the ledger records *which
//! code derives from which stream*, so unrelated edits that only shift
//! lines leave it byte-identical, and a ledger diff always means the
//! randomness topology actually changed. `hlisa-lint --ledger-check`
//! (and a test below) fail when the committed file drifts from the
//! tree.

use crate::provenance::{collect_stream_sites, AstAnalysis, StreamSite};
use crate::workspace::workspace_files;
use std::collections::BTreeMap;
use std::fs;
use std::io;
use std::path::Path;

/// The committed ledger's file name, at the workspace root.
pub const LEDGER_FILE: &str = "LINT_LEDGER.json";

/// One aggregated derivation site group.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LedgerEntry {
    /// Owning crate (the `crates/` directory name), or `tests` for the
    /// shared integration-test tree.
    pub crate_name: String,
    /// Workspace-relative file path.
    pub file: String,
    /// Innermost enclosing item path (`mod::fn`), or `<file>`.
    pub function: String,
    /// `stream`, `fork`, or `fork_visit`.
    pub kind: &'static str,
    /// Stream name / fork label, or `<dynamic>` for non-literal labels.
    pub stream: String,
    /// Call sites in non-test code.
    pub sites: usize,
    /// Call sites inside `#[test]`-gated regions.
    pub test_sites: usize,
}

/// The aggregated ledger, sorted by `(file, function, kind, stream)`.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Ledger {
    /// Aggregated entries.
    pub entries: Vec<LedgerEntry>,
    /// Files the walk covered (ledger provenance, recorded in the JSON).
    pub files_scanned: usize,
}

impl Ledger {
    /// Per-stream `(sites, test_sites)` totals across the workspace,
    /// sorted by stream name. `fork`/`fork_visit` labels count too —
    /// they name derivation points just as streams do.
    pub fn stream_totals(&self) -> Vec<(String, usize, usize)> {
        let mut map: BTreeMap<&str, (usize, usize)> = BTreeMap::new();
        for e in &self.entries {
            let t = map.entry(&e.stream).or_default();
            t.0 += e.sites;
            t.1 += e.test_sites;
        }
        map.into_iter()
            .map(|(s, (a, b))| (s.to_string(), a, b))
            .collect()
    }
}

fn crate_of(rel: &str) -> String {
    match rel.strip_prefix("crates/") {
        Some(rest) => rest.split('/').next().unwrap_or(rest).to_string(),
        None => "tests".to_string(),
    }
}

fn aggregate(files: &[(String, Vec<StreamSite>)]) -> Ledger {
    let mut map: BTreeMap<(String, String, &'static str, String), (usize, usize)> = BTreeMap::new();
    for (rel, sites) in files {
        for s in sites {
            let key = (
                rel.clone(),
                s.function.clone(),
                s.kind.label(),
                s.stream.clone(),
            );
            let counts = map.entry(key).or_default();
            if s.in_test {
                counts.1 += 1;
            } else {
                counts.0 += 1;
            }
        }
    }
    Ledger {
        entries: map
            .into_iter()
            .map(
                |((file, function, kind, stream), (sites, test_sites))| LedgerEntry {
                    crate_name: crate_of(&file),
                    file,
                    function,
                    kind,
                    stream,
                    sites,
                    test_sites,
                },
            )
            .collect(),
        files_scanned: files.len(),
    }
}

/// Builds the ledger for the workspace at `root` by parsing every file
/// the linter covers and collecting its derivation sites.
pub fn build_ledger(root: &Path) -> io::Result<Ledger> {
    let mut files = Vec::new();
    for (rel, path, _passes) in workspace_files(root)? {
        let text = fs::read_to_string(&path)?;
        let analysis = AstAnalysis::of(&text);
        files.push((rel, collect_stream_sites(&analysis)));
    }
    Ok(aggregate(&files))
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Renders the ledger as canonical JSON: fixed key order, entries one
/// per line, trailing newline. Byte-stable for identical trees.
pub fn render_ledger(ledger: &Ledger) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str("  \"version\": 1,\n");
    out.push_str(&format!("  \"files_scanned\": {},\n", ledger.files_scanned));
    out.push_str("  \"entries\": [\n");
    for (i, e) in ledger.entries.iter().enumerate() {
        let sep = if i + 1 == ledger.entries.len() {
            ""
        } else {
            ","
        };
        out.push_str(&format!(
            "    {{\"crate\": \"{}\", \"file\": \"{}\", \"function\": \"{}\", \
             \"kind\": \"{}\", \"stream\": \"{}\", \"sites\": {}, \"test_sites\": {}}}{}\n",
            json_escape(&e.crate_name),
            json_escape(&e.file),
            json_escape(&e.function),
            e.kind,
            json_escape(&e.stream),
            e.sites,
            e.test_sites,
            sep,
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

/// Compares the freshly built ledger against the committed
/// `LINT_LEDGER.json`. `Ok(())` when current; `Err(diff summary)` when
/// the committed file is missing or stale.
pub fn check_ledger(root: &Path) -> io::Result<Result<(), String>> {
    let expected = render_ledger(&build_ledger(root)?);
    let path = root.join(LEDGER_FILE);
    let committed = match fs::read_to_string(&path) {
        Ok(text) => text,
        Err(e) if e.kind() == io::ErrorKind::NotFound => {
            return Ok(Err(format!(
                "{LEDGER_FILE} is missing; run `hlisa-lint --ledger-write`"
            )))
        }
        Err(e) => return Err(e),
    };
    if committed == expected {
        return Ok(Ok(()));
    }
    let first_diff = committed
        .lines()
        .zip(expected.lines())
        .position(|(a, b)| a != b)
        .map(|i| i + 1)
        .unwrap_or_else(|| committed.lines().count().min(expected.lines().count()) + 1);
    Ok(Err(format!(
        "{LEDGER_FILE} is stale (first differing line {first_diff}); \
         run `hlisa-lint --ledger-write` and commit the result"
    )))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::provenance::SiteKind;

    fn site(function: &str, kind: SiteKind, stream: &str, in_test: bool) -> StreamSite {
        StreamSite {
            function: function.to_string(),
            kind,
            stream: stream.to_string(),
            in_test,
            line: 1,
        }
    }

    #[test]
    fn sites_aggregate_by_context_without_lines() {
        let files = vec![(
            "crates/core/src/motion.rs".to_string(),
            vec![
                site("gesture", SiteKind::Stream, "cursor", false),
                site("gesture", SiteKind::Stream, "cursor", false),
                site("gesture", SiteKind::Stream, "cursor", true),
                site("gesture", SiteKind::Fork, "segment", false),
            ],
        )];
        let ledger = aggregate(&files);
        assert_eq!(ledger.entries.len(), 2);
        let cursor = &ledger.entries[1];
        assert_eq!(
            (cursor.kind, cursor.sites, cursor.test_sites),
            ("stream", 2, 1)
        );
        assert_eq!(cursor.crate_name, "core");
        let fork = &ledger.entries[0];
        assert_eq!((fork.kind, fork.stream.as_str()), ("fork", "segment"));
    }

    #[test]
    fn tests_tree_files_get_the_tests_crate_label() {
        let files = vec![(
            "tests/api_properties.rs".to_string(),
            vec![site("roundtrip", SiteKind::Stream, "visit", true)],
        )];
        let ledger = aggregate(&files);
        assert_eq!(ledger.entries[0].crate_name, "tests");
    }

    #[test]
    fn rendering_is_canonical_and_escapes() {
        let files = vec![(
            "crates/core/src/a.rs".to_string(),
            vec![site("f", SiteKind::Stream, "cursor", false)],
        )];
        let text = render_ledger(&aggregate(&files));
        assert!(text.starts_with("{\n  \"version\": 1,\n"));
        assert!(text.ends_with("  ]\n}\n"));
        assert!(text.contains(
            "{\"crate\": \"core\", \"file\": \"crates/core/src/a.rs\", \
             \"function\": \"f\", \"kind\": \"stream\", \"stream\": \"cursor\", \
             \"sites\": 1, \"test_sites\": 0}"
        ));
        assert_eq!(json_escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
    }

    #[test]
    fn stream_totals_sum_across_entries() {
        let files = vec![
            (
                "crates/core/src/a.rs".to_string(),
                vec![site("f", SiteKind::Stream, "cursor", false)],
            ),
            (
                "crates/human/src/b.rs".to_string(),
                vec![site("g", SiteKind::Stream, "cursor", true)],
            ),
        ];
        let totals = aggregate(&files).stream_totals();
        assert_eq!(totals, vec![("cursor".to_string(), 1, 1)]);
    }

    #[test]
    fn the_committed_ledger_is_current() {
        // The gate behind `hlisa-lint --ledger-check`: the committed
        // LINT_LEDGER.json must match a fresh build of the tree, so any
        // change to the randomness topology shows up as a reviewed diff.
        let here = Path::new(env!("CARGO_MANIFEST_DIR"));
        let root = crate::workspace::find_workspace_root(here).expect("workspace root");
        let status = check_ledger(&root).expect("walk");
        assert!(status.is_ok(), "{}", status.unwrap_err());
    }

    #[test]
    fn the_ledger_is_not_empty() {
        let here = Path::new(env!("CARGO_MANIFEST_DIR"));
        let root = crate::workspace::find_workspace_root(here).expect("workspace root");
        let ledger = build_ledger(&root).expect("walk");
        assert!(ledger.entries.len() > 10, "suspiciously small ledger");
        assert!(ledger
            .entries
            .iter()
            .any(|e| e.kind == "fork" || e.kind == "fork_visit"));
    }
}
