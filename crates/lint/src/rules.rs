//! The rule catalog: every rule either analyzer can fire, with its
//! rationale and the paper passage it descends from. Ids are stable —
//! they appear in `// lint: allow(<id>)` comments, JSON output, and
//! [`hlisa_webdriver::AuditFinding`]s.

/// Which analyzer owns a rule.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AnalyzerKind {
    /// The token-level workspace scanner ([`crate::source`]).
    Source,
    /// The action-chain detectability linter ([`crate::chain`]).
    Chain,
    /// The AST-level stream-provenance analysis ([`crate::provenance`]).
    Provenance,
}

/// One catalog entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RuleInfo {
    /// Stable id.
    pub id: &'static str,
    /// Owning analyzer.
    pub kind: AnalyzerKind,
    /// One-line rationale.
    pub summary: &'static str,
    /// Paper (or related-work) anchor.
    pub paper_ref: &'static str,
}

/// Every shipped rule.
pub const CATALOG: &[RuleInfo] = &[
    // --- Source invariants (determinism hazards) ----------------------
    RuleInfo {
        id: "no-wall-clock",
        kind: AnalyzerKind::Source,
        summary: "Instant::now()/SystemTime outside hlisa-sim: time must come \
                  from the shared virtual clock or runs are irreproducible",
        paper_ref: "OpenWPM-reliability (PAPERS.md): nondeterministic timing \
                    corrupts measurement comparisons",
    },
    RuleInfo {
        id: "no-thread-rng",
        kind: AnalyzerKind::Source,
        summary: "argless thread_rng() outside hlisa-sim: OS-seeded RNG makes \
                  every run unrepeatable",
        paper_ref: "§5 reliability discussion; SimContext named streams (PR 1)",
    },
    RuleInfo {
        id: "no-unordered-containers",
        kind: AnalyzerKind::Source,
        summary: "std HashMap/HashSet in non-test code: iteration order is \
                  randomised per process and leaks into results",
        paper_ref: "OpenWPM-reliability (PAPERS.md): hidden iteration-order \
                    dependence is a reproducibility hazard",
    },
    RuleInfo {
        id: "no-rng-from-seed",
        kind: AnalyzerKind::Source,
        summary: "resurrected rng_from_seed outside hlisa-sim: ad-hoc seeding \
                  bypasses the SimContext stream-derivation tree",
        paper_ref: "PR 1 (SimContext layer); §5 reliability discussion",
    },
    RuleInfo {
        id: "no-hardcoded-min-move",
        kind: AnalyzerKind::Source,
        summary: "numeric pointer-move duration floor bypassing \
                  HLISA_MIN_MOVE_MS: the 50 ms override has one definition site",
        paper_ref: "§4.1: \"we change this duration to 50 msec\"",
    },
    RuleInfo {
        id: "no-panic",
        kind: AnalyzerKind::Source,
        summary: "unwrap()/expect()/panic! in non-test code: a panicking crawl \
                  worker silently drops its sites from the measurement; fail \
                  through the typed VisitError/recovery path instead",
        paper_ref: "OpenWPM-reliability (PAPERS.md): unhandled harness crashes \
                    bias crawl results; ISSUE 4 fault plane",
    },
    // --- Stream provenance (AST pass) ----------------------------------
    RuleInfo {
        id: "stream-name-registry",
        kind: AnalyzerKind::Provenance,
        summary: "ctx.stream(\"...\") with a name missing from \
                  hlisa_sim::STREAM_REGISTRY, or computed at runtime: every \
                  stream name is part of the reproducibility contract and has \
                  exactly one registered spelling",
        paper_ref: "PR 1 (SimContext named streams); §5 reliability \
                    discussion: replayable randomness needs stable labels",
    },
    RuleInfo {
        id: "conditional-draw",
        kind: AnalyzerKind::Provenance,
        summary: "a draw from one stream sits under a branch decided by a \
                  different stream: the dependent stream's consumption rate \
                  now varies with the governing stream's values, so editing \
                  one behaviour silently reshuffles another's draws",
        paper_ref: "§5 reliability discussion: cross-stream coupling defeats \
                    per-stream replay; OpenWPM-reliability (PAPERS.md)",
    },
    RuleInfo {
        id: "loop-variant-fork",
        kind: AnalyzerKind::Provenance,
        summary: "ctx.fork()/fork_visit() inside a loop with all-literal \
                  arguments: every iteration derives the same child seed, so \
                  the iterations replay each other instead of being \
                  independent",
        paper_ref: "PR 1 (SimContext derivation tree): child seeds must \
                    incorporate loop-variant salt",
    },
    RuleInfo {
        id: "stale-allow",
        kind: AnalyzerKind::Provenance,
        summary: "a `// lint: allow(...)` directive that names an unknown \
                  rule or no longer suppresses any finding: dead allows \
                  license future regressions on their line",
        paper_ref: "ISSUE 7 suppression audit; OpenWPM-reliability \
                    (PAPERS.md): unaudited exemptions rot",
    },
    // --- Chain detectability (Table 1 tells) --------------------------
    RuleInfo {
        id: "sub-min-move",
        kind: AnalyzerKind::Chain,
        summary: "pointer move requested below HLISA_MIN_MOVE_MS (Selenium's \
                  zero-duration teleport request)",
        paper_ref: "§4.1: Selenium's minimum move duration \"is too high for \
                    simulating human interaction\"",
    },
    RuleInfo {
        id: "straight-line-gesture",
        kind: AnalyzerKind::Chain,
        summary: "gesture waypoints perfectly collinear: no human moves on a \
                  chord",
        paper_ref: "Table 1 / Fig. 1 A: movement \"in a straight line\"",
    },
    RuleInfo {
        id: "uniform-speed-gesture",
        kind: AnalyzerKind::Chain,
        summary: "per-waypoint speeds constant: no acceleration or deceleration \
                  profile",
        paper_ref: "Table 1 / Fig. 1 C: \"with uniform speed\"; §4.1 naive \
                    solution critique",
    },
    RuleInfo {
        id: "superhuman-move-speed",
        kind: AnalyzerKind::Chain,
        summary: "a single move faster than human motor limits (zero-duration \
                  moves are infinitely fast)",
        paper_ref: "Fig. 3 level 1: \"detect artificial behaviour\"",
    },
    RuleInfo {
        id: "click-without-approach",
        kind: AnalyzerKind::Chain,
        summary: "pointer press with no preceding cursor movement (outside the \
                  double-click re-press window)",
        paper_ref: "Table 1: clicks appear \"out of nowhere\"",
    },
    RuleInfo {
        id: "zero-dwell-click",
        kind: AnalyzerKind::Chain,
        summary: "button press and release in (nearly) the same instant",
        paper_ref: "Table 1: press and release \"in the same millisecond\"",
    },
    RuleInfo {
        id: "zero-dwell-key",
        kind: AnalyzerKind::Chain,
        summary: "key press and release in (nearly) the same instant",
        paper_ref: "§4.1: Selenium typing has no dwell at all",
    },
    RuleInfo {
        id: "superhuman-typing-cadence",
        kind: AnalyzerKind::Chain,
        summary: "burst typing speed beyond human limits (Selenium: 13,333 cpm)",
        paper_ref: "§4.1: \"Selenium types with a speed of 13,333 characters \
                    per minute\"",
    },
    RuleInfo {
        id: "metronomic-typing",
        kind: AnalyzerKind::Chain,
        summary: "inter-keystroke intervals too regular: fixed-delay loops with \
                  narrow jitter, not a human rhythm",
        paper_ref: "§4.1 naive solution critique; Appendix F typing model",
    },
    RuleInfo {
        id: "capitals-without-shift",
        kind: AnalyzerKind::Chain,
        summary: "uppercase keydown with no Shift held",
        paper_ref: "Table 1: capitals typed \"without pressing the Shift key\"",
    },
    RuleInfo {
        id: "no-finger-breaks",
        kind: AnalyzerKind::Chain,
        summary: "unbroken wheel-tick run far beyond a human flick: scrolling \
                  needs finger-repositioning breaks",
        paper_ref: "§4.1: HLISA scrolls \"in small bursts, with short pauses\"",
    },
    RuleInfo {
        id: "scroll-teleport",
        kind: AnalyzerKind::Chain,
        summary: "script-origin scroll jump with no wheel activity",
        paper_ref: "Table 1: scrolling \"of an arbitrary amount at once, \
                    without the corresponding wheel events\"",
    },
    RuleInfo {
        id: "script-click",
        kind: AnalyzerKind::Chain,
        summary: "synthetic element.click() dispatch: a click event with no \
                  pointer activity",
        paper_ref: "§4.2 honey elements; Table 1 click side effects",
    },
];

/// Looks up a catalog entry by id.
pub fn rule_info(id: &str) -> Option<&'static RuleInfo> {
    CATALOG.iter().find(|r| r.id == id)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_are_unique_and_kebab_case() {
        for (i, r) in CATALOG.iter().enumerate() {
            assert!(
                r.id.chars().all(|c| c.is_ascii_lowercase() || c == '-'),
                "{} not kebab-case",
                r.id
            );
            assert!(
                !CATALOG[..i].iter().any(|p| p.id == r.id),
                "duplicate id {}",
                r.id
            );
        }
    }

    #[test]
    fn lookup_finds_both_kinds() {
        assert_eq!(
            rule_info("no-wall-clock").unwrap().kind,
            AnalyzerKind::Source
        );
        assert_eq!(rule_info("sub-min-move").unwrap().kind, AnalyzerKind::Chain);
        assert!(rule_info("nope").is_none());
    }

    #[test]
    fn every_rule_cites_the_paper() {
        for r in CATALOG {
            assert!(!r.summary.is_empty());
            assert!(!r.paper_ref.is_empty(), "{} lacks a reference", r.id);
        }
    }
}
