//! The planner gate: the linter's self-check against the repo's own
//! interaction planners.
//!
//! Fig. 3's simulator ladder predicts exactly how the rungs should fare
//! against a static Table 1 linter: stock Selenium and the naive
//! improver trip multiple rules, the HLISA planner trips none. This
//! module drives each planner through the same Appendix-E-shaped task
//! (move, click, type a pangram, scroll a viewport-and-a-half) on the
//! standard test page with a [`ChainLinter`] installed as the session
//! auditor, and returns the resulting report. `hlisa-lint` (and a test
//! below) require the split to hold — a regression in either the linter
//! or a planner flips the gate.

use crate::chain::ChainLinter;
use crate::diag::Report;
use hlisa::chains::HlisaActionChains;
use hlisa::naive::NaiveActionChains;
use hlisa_browser::dom::standard_test_page;
use hlisa_browser::{Browser, BrowserConfig};
use hlisa_webdriver::{By, SeleniumActionChains, Session};

/// The typing payload: a pangram with a capital (Shift behaviour) and
/// word spacing, like the paper's Appendix E typing task.
pub const GATE_TEXT: &str = "The quick brown fox jumps over the lazy dog";

/// How far the gate task scrolls (px): far enough that a human needs
/// many flicks and a script scroll is an unmistakable teleport.
const GATE_SCROLL_PX: f64 = 3_000.0;

fn audited_session() -> Session {
    let mut s = Session::new(Browser::open(
        BrowserConfig::webdriver(),
        standard_test_page("https://lint.test/", 30_000.0),
    ));
    s.install_auditor(Box::new(ChainLinter::new()));
    s
}

fn elements(
    s: &mut Session,
) -> (
    hlisa_webdriver::ElementHandle,
    hlisa_webdriver::ElementHandle,
    hlisa_webdriver::ElementHandle,
) {
    // The gate page literal in this module defines all three ids; a
    // missing element is a broken fixture, not a recoverable crawl state.
    let jump = s.find_element(By::Id("jump".into())).expect("jump"); // lint: allow(no-panic)
    let submit = s.find_element(By::Id("submit".into())).expect("submit"); // lint: allow(no-panic)
    let text = s
        .find_element(By::Id("text_area".into()))
        .expect("text_area"); // lint: allow(no-panic)
    (jump, submit, text)
}

/// Runs the gate task through stock Selenium `ActionChains` (plus its
/// script-scroll idiom — Selenium has no scrolling API, §4.1).
pub fn selenium_report() -> Report {
    let mut s = audited_session();
    let (jump, submit, text) = elements(&mut s);
    SeleniumActionChains::new()
        .move_to_element(jump)
        .click(Some(submit))
        .send_keys_to_element(text, GATE_TEXT)
        .perform(&mut s)
        // the simulated gate session cannot fail. lint: allow(no-panic)
        .expect("selenium gate task");
    s.scroll_by_script(GATE_SCROLL_PX);
    Report::from_findings(&s.finish_audit())
}

/// Runs the gate task through the naive §4.1 improver.
pub fn naive_report(seed: u64) -> Report {
    let mut s = audited_session();
    let (jump, submit, text) = elements(&mut s);
    NaiveActionChains::new(seed)
        .move_to_element(jump)
        .click(Some(submit))
        .send_keys_to_element(text, GATE_TEXT)
        .scroll_by(GATE_SCROLL_PX)
        .perform(&mut s)
        // the simulated gate session cannot fail. lint: allow(no-panic)
        .expect("naive gate task");
    Report::from_findings(&s.finish_audit())
}

/// Runs the gate task through the HLISA planner.
pub fn hlisa_report(seed: u64) -> Report {
    let mut s = audited_session();
    let (jump, submit, text) = elements(&mut s);
    HlisaActionChains::new(seed)
        .move_to_element(jump)
        .click(Some(submit))
        .send_keys_to_element(text, GATE_TEXT)
        .scroll_by(0.0, GATE_SCROLL_PX)
        .perform(&mut s)
        // the simulated gate session cannot fail. lint: allow(no-panic)
        .expect("hlisa gate task");
    Report::from_findings(&s.finish_audit())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn selenium_trips_at_least_three_distinct_rules() {
        let r = selenium_report();
        let ids = r.rule_ids();
        assert!(ids.len() >= 3, "only {ids:?}");
        // The signature tells of §4.1 are all present.
        for rule in [
            "sub-min-move",
            "zero-dwell-click",
            "superhuman-typing-cadence",
            "capitals-without-shift",
            "scroll-teleport",
        ] {
            assert!(ids.contains(&rule), "{rule} missing from {ids:?}");
        }
    }

    #[test]
    fn the_naive_improver_still_trips_at_least_three_rules() {
        for seed in [1, 7, 42] {
            let ids = naive_report(seed).rule_ids();
            assert!(ids.len() >= 3, "seed {seed}: only {ids:?}");
            // Fixed limits, wrong distributions (Fig. 1 C / §4.1).
            for rule in [
                "uniform-speed-gesture",
                "metronomic-typing",
                "no-finger-breaks",
            ] {
                assert!(
                    ids.contains(&rule),
                    "seed {seed}: {rule} missing from {ids:?}"
                );
            }
        }
    }

    #[test]
    fn hlisa_chains_lint_clean() {
        for seed in [0, 1, 7, 42, 1337] {
            let r = hlisa_report(seed);
            assert!(r.is_clean(), "seed {seed} flagged:\n{}", r.render_human());
        }
    }
}
