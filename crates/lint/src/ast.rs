//! The AST for the Rust subset the workspace uses.
//!
//! Design rule: **every lexed token of a file is represented exactly once
//! in its AST** — either as a structural field (a function name, a method
//! call, a literal) or inside an opaque [`TokenRun`] (generics, patterns,
//! types, macro bodies, `use` trees). Structural nodes give the
//! provenance passes real shape to walk (blocks, conditions, match arms,
//! loops, calls); opaque runs guarantee that token-level rules still see
//! *all* source, so the AST pass can reproduce every token-scanner
//! finding even where it has no deeper structure. The differential test
//! in `tests/ast_differential.rs` holds the two analyzers to that
//! contract over the whole workspace.
//!
//! Lines are 1-based and attached to the nodes rules anchor diagnostics
//! to; opaque runs carry per-token lines.

use crate::parse::Token;

/// A flattened run of tokens the parser keeps but does not structure:
/// generic parameter lists, where clauses, patterns, types, `use` trees,
/// macro bodies. Group delimiters are preserved as punct tokens so
/// neighbour-sensitive token rules behave exactly as in the scanner.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TokenRun {
    /// The tokens, in source order.
    pub tokens: Vec<Token>,
}

impl TokenRun {
    /// True when the run holds no tokens.
    pub fn is_empty(&self) -> bool {
        self.tokens.is_empty()
    }
}

/// One attribute: `#[...]` (or the inner form `#![...]`), flattened.
#[derive(Debug, Clone, PartialEq)]
pub struct Attr {
    /// Tokens inside the brackets.
    pub tokens: TokenRun,
    /// Line of the `#`.
    pub line: usize,
}

impl Attr {
    /// True when this attribute gates the item to test builds: it
    /// mentions `test` and is not a `not(...)` form — the same predicate
    /// the token scanner's region marker uses, so exemption behaviour
    /// stays identical.
    pub fn is_test_gate(&self) -> bool {
        let mut has_test = false;
        let mut has_not = false;
        for t in &self.tokens.tokens {
            if let Some(w) = t.ident() {
                if w == "test" {
                    has_test = true;
                } else if w == "not" {
                    has_not = true;
                }
            }
        }
        has_test && !has_not
    }
}

/// A whole parsed file.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct File {
    /// Inner attributes (`#![...]`) at the top.
    pub attrs: Vec<Attr>,
    /// Top-level items, in source order.
    pub items: Vec<Item>,
}

/// One item, with its outer attributes.
#[derive(Debug, Clone, PartialEq)]
pub struct Item {
    /// Outer attributes, in source order.
    pub attrs: Vec<Attr>,
    /// Visibility tokens (`pub`, `pub(crate)`, ...), kept opaque.
    pub vis: TokenRun,
    /// What the item is.
    pub kind: ItemKind,
    /// Line the item's leading keyword sits on.
    pub line: usize,
}

/// Item kinds. Anything the parser does not model structurally lands in
/// [`ItemKind::Verbatim`] with all its tokens.
#[derive(Debug, Clone, PartialEq)]
pub enum ItemKind {
    /// `fn` (with qualifiers like `unsafe`/`const`/`async` in `quals`).
    Fn(ItemFn),
    /// `mod name { ... }` or `mod name;`.
    Mod(ItemMod),
    /// `impl ... { ... }`.
    Impl(ItemImpl),
    /// `trait ... { ... }`.
    Trait(ItemTrait),
    /// `struct`/`enum`/`union` definition.
    Adt(ItemAdt),
    /// `use ...;` — the tree stays opaque.
    Use(TokenRun),
    /// `const`/`static` with a parsed initialiser expression.
    Const(ItemConst),
    /// `type Alias = ...;` — opaque.
    TypeAlias(TokenRun),
    /// An item-position macro invocation (`macro_rules!`, `thread_local!`).
    Macro(MacroCall),
    /// Anything else (`extern crate`, `extern "C" { ... }`), opaque.
    Verbatim(TokenRun),
}

/// A function item or associated function.
#[derive(Debug, Clone, PartialEq)]
pub struct ItemFn {
    /// Qualifier tokens before `fn` (`const`, `unsafe`, `extern "C"`...).
    pub quals: TokenRun,
    /// The function name.
    pub name: String,
    /// Generic parameters, opaque (without the outer `<`/`>`... included).
    pub generics: TokenRun,
    /// Parameter list, opaque (delimiters included).
    pub params: TokenRun,
    /// Return type tokens (`->` included), opaque.
    pub ret: TokenRun,
    /// Where clause, opaque.
    pub where_clause: TokenRun,
    /// The body, or `None` for a trait method signature.
    pub body: Option<Block>,
}

/// A module item.
#[derive(Debug, Clone, PartialEq)]
pub struct ItemMod {
    /// The module name.
    pub name: String,
    /// Inline items, or `None` for `mod name;`.
    pub items: Option<Vec<Item>>,
}

/// An impl block: header opaque, associated items parsed.
#[derive(Debug, Clone, PartialEq)]
pub struct ItemImpl {
    /// Everything between `impl` and the body brace.
    pub header: TokenRun,
    /// Associated items.
    pub items: Vec<Item>,
}

/// A trait definition: header opaque, associated items parsed.
#[derive(Debug, Clone, PartialEq)]
pub struct ItemTrait {
    /// Everything between `trait` and the body brace.
    pub header: TokenRun,
    /// Associated items.
    pub items: Vec<Item>,
}

/// A struct / enum / union definition.
#[derive(Debug, Clone, PartialEq)]
pub struct ItemAdt {
    /// `struct` | `enum` | `union`.
    pub keyword: String,
    /// The type name.
    pub name: String,
    /// Generics + where clause, opaque.
    pub header: TokenRun,
    /// Field / variant tokens, opaque (delimiters included).
    pub body: TokenRun,
    /// True when the definition body is brace-delimited (the token
    /// scanner only treats braced items as test-exemptable regions).
    pub braced: bool,
}

/// A const or static item.
#[derive(Debug, Clone, PartialEq)]
pub struct ItemConst {
    /// `const` | `static` (plus `mut` for statics).
    pub keyword: TokenRun,
    /// The item name.
    pub name: String,
    /// The type, opaque.
    pub ty: TokenRun,
    /// The initialiser, parsed (`None` in trait position).
    pub value: Option<Expr>,
}

/// A macro invocation: `path!(...)` / `path![...]` / `path! { ... }`.
#[derive(Debug, Clone, PartialEq)]
pub struct MacroCall {
    /// Path segments before the `!`.
    pub path: Vec<String>,
    /// The delimited body, flattened (delimiters included).
    pub body: TokenRun,
    /// Line of the path start.
    pub line: usize,
}

/// A `{ ... }` block.
#[derive(Debug, Clone, PartialEq)]
pub struct Block {
    /// Statements, in order.
    pub stmts: Vec<Stmt>,
    /// Line of the opening brace.
    pub line: usize,
}

/// One statement.
#[derive(Debug, Clone, PartialEq)]
pub enum Stmt {
    /// `let pat: ty = init else { ... };`
    Let(StmtLet),
    /// A nested item.
    Item(Item),
    /// An expression statement.
    Expr(StmtExpr),
}

/// An expression statement with its outer attributes.
#[derive(Debug, Clone, PartialEq)]
pub struct StmtExpr {
    /// Outer attributes.
    pub attrs: Vec<Attr>,
    /// The expression.
    pub expr: Expr,
    /// True when a trailing semicolon was present.
    pub semi: bool,
}

/// A let statement.
#[derive(Debug, Clone, PartialEq)]
pub struct StmtLet {
    /// Outer attributes.
    pub attrs: Vec<Attr>,
    /// The pattern, opaque.
    pub pat: TokenRun,
    /// The ascribed type, opaque (empty when absent).
    pub ty: TokenRun,
    /// The initialiser.
    pub init: Option<Expr>,
    /// The `else` diverging block of a let-else.
    pub else_block: Option<Block>,
    /// Line of the `let`.
    pub line: usize,
}

/// A literal expression.
#[derive(Debug, Clone, PartialEq)]
pub struct Lit {
    /// Kind of literal.
    pub kind: LitKind,
    /// For strings: the inner text (escapes unprocessed). For numbers:
    /// the source spelling. Otherwise empty.
    pub text: String,
    /// Source line.
    pub line: usize,
}

/// Literal kinds the rules distinguish.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LitKind {
    /// A string (or raw/byte string).
    Str,
    /// A numeric literal.
    Num,
    /// A char or byte literal.
    Char,
    /// `true` / `false`.
    Bool,
}

/// One path segment, with its own line (long paths wrap under rustfmt,
/// and diagnostics anchor to the segment, not the path head).
#[derive(Debug, Clone, PartialEq)]
pub struct PathSeg {
    /// The segment identifier (`self`, `Self`, `crate` included).
    pub name: String,
    /// Source line of the segment.
    pub line: usize,
}

/// A path expression: `a::b::c`, possibly with turbofish runs between
/// segments (kept opaque in `turbofish`).
#[derive(Debug, Clone, PartialEq)]
pub struct ExprPath {
    /// Segments, in order.
    pub segments: Vec<PathSeg>,
    /// Any `::<...>` tokens encountered in the path, flattened.
    pub turbofish: TokenRun,
    /// Line of the first segment.
    pub line: usize,
}

/// An `if` (or `if let`) expression.
#[derive(Debug, Clone, PartialEq)]
pub struct ExprIf {
    /// The `let` pattern for `if let`, opaque; empty for plain `if`.
    pub let_pat: TokenRun,
    /// The condition (the scrutinee for `if let`).
    pub cond: Box<Expr>,
    /// The then-block.
    pub then_block: Block,
    /// `else` branch: a `Block` or another `If`.
    pub else_branch: Option<Box<Expr>>,
    /// Line of the `if`.
    pub line: usize,
}

/// A `match` expression.
#[derive(Debug, Clone, PartialEq)]
pub struct ExprMatch {
    /// The scrutinee.
    pub scrutinee: Box<Expr>,
    /// The arms.
    pub arms: Vec<Arm>,
    /// Line of the `match`.
    pub line: usize,
}

/// One match arm.
#[derive(Debug, Clone, PartialEq)]
pub struct Arm {
    /// Outer attributes.
    pub attrs: Vec<Attr>,
    /// The pattern, opaque.
    pub pat: TokenRun,
    /// The `if` guard, parsed.
    pub guard: Option<Expr>,
    /// The arm body.
    pub body: Expr,
    /// Line of the pattern start.
    pub line: usize,
}

/// A loop of any flavour.
#[derive(Debug, Clone, PartialEq)]
pub struct ExprLoop {
    /// `for` | `while` | `loop`.
    pub keyword: String,
    /// Optional label tokens (`'outer:`).
    pub label: TokenRun,
    /// `for` pattern, opaque (empty otherwise; `while let` patterns too).
    pub pat: TokenRun,
    /// The `for` iterable / `while` condition (`None` for `loop`).
    pub head: Option<Box<Expr>>,
    /// The body.
    pub body: Block,
    /// Line of the keyword.
    pub line: usize,
}

/// A closure.
#[derive(Debug, Clone, PartialEq)]
pub struct ExprClosure {
    /// `move` and friends, opaque.
    pub quals: TokenRun,
    /// Parameters between the pipes, opaque.
    pub params: TokenRun,
    /// Return type tokens, opaque.
    pub ret: TokenRun,
    /// The body.
    pub body: Box<Expr>,
    /// Line of the opening pipe.
    pub line: usize,
}

/// One field initialiser in a struct literal.
#[derive(Debug, Clone, PartialEq)]
pub struct FieldInit {
    /// Field name (a numeric name for tuple-struct field positions).
    pub name: String,
    /// The value; `None` for shorthand `Struct { name }`.
    pub value: Option<Expr>,
    /// Source line of the name.
    pub line: usize,
}

/// An expression.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// A literal.
    Lit(Lit),
    /// A path (identifier chain).
    Path(ExprPath),
    /// A unary operation (`-`, `!`, `*`, `&`, `&mut`).
    Unary {
        /// Operator spelling.
        op: String,
        /// Operand.
        expr: Box<Expr>,
        /// Line of the operator.
        line: usize,
    },
    /// A binary / assignment / range operation.
    Binary {
        /// Operator spelling.
        op: String,
        /// Left side (`None` only for prefix ranges like `..n`).
        lhs: Option<Box<Expr>>,
        /// Right side (`None` for open ranges like `1..`).
        rhs: Option<Box<Expr>>,
        /// Line of the operator.
        line: usize,
    },
    /// A free or path call: `f(args)`.
    Call {
        /// The callee.
        callee: Box<Expr>,
        /// The arguments.
        args: Vec<Expr>,
        /// Line of the opening paren.
        line: usize,
    },
    /// A method call: `recv.name::<...>(args)`.
    MethodCall {
        /// The receiver.
        recv: Box<Expr>,
        /// Method name.
        name: String,
        /// Turbofish tokens, opaque.
        turbofish: TokenRun,
        /// Arguments.
        args: Vec<Expr>,
        /// Line of the method name.
        line: usize,
    },
    /// A field access: `base.name` (or `.0`).
    Field {
        /// The base expression.
        base: Box<Expr>,
        /// Field name (numeric for tuple fields).
        name: String,
        /// Line of the name.
        line: usize,
    },
    /// Indexing: `base[idx]`.
    Index {
        /// The base expression.
        base: Box<Expr>,
        /// The index.
        idx: Box<Expr>,
        /// Line of the bracket.
        line: usize,
    },
    /// A cast: `expr as Type` (type opaque).
    Cast {
        /// The value.
        expr: Box<Expr>,
        /// The target type tokens.
        ty: TokenRun,
        /// Line of the `as`.
        line: usize,
    },
    /// The `?` operator.
    Try(Box<Expr>),
    /// A parenthesised expression or tuple.
    Tuple {
        /// The elements (one = parenthesised expr).
        elems: Vec<Expr>,
        /// True when a trailing comma forced tuple-ness.
        is_tuple: bool,
        /// Line of the open paren.
        line: usize,
    },
    /// An array literal `[a, b]` or repeat `[x; n]`.
    Array {
        /// Elements (for repeat: value then length).
        elems: Vec<Expr>,
        /// True for `[x; n]`.
        repeat: bool,
        /// Line of the bracket.
        line: usize,
    },
    /// A block expression (incl. `unsafe` blocks; quals opaque).
    Block {
        /// `unsafe` etc.
        quals: TokenRun,
        /// The block.
        block: Block,
    },
    /// An `if` expression.
    If(ExprIf),
    /// A `match` expression.
    Match(ExprMatch),
    /// A loop.
    Loop(ExprLoop),
    /// A closure.
    Closure(ExprClosure),
    /// `return expr?`.
    Return(Option<Box<Expr>>, usize),
    /// `break 'label expr?` (label opaque).
    Break(TokenRun, Option<Box<Expr>>, usize),
    /// `continue 'label?`.
    Continue(TokenRun, usize),
    /// A macro invocation in expression position.
    Macro(MacroCall),
    /// A struct literal.
    Struct {
        /// The struct path.
        path: ExprPath,
        /// Field initialisers.
        fields: Vec<FieldInit>,
        /// The `..rest` expression.
        rest: Option<Box<Expr>>,
        /// Line of the brace.
        line: usize,
    },
    /// Tokens the parser could not structure (recorded as a parse issue).
    Opaque(TokenRun),
}

impl Expr {
    /// The source line a diagnostic for this expression anchors to.
    pub fn line(&self) -> usize {
        match self {
            Expr::Lit(l) => l.line,
            Expr::Path(p) => p.line,
            Expr::Unary { line, .. }
            | Expr::Binary { line, .. }
            | Expr::Call { line, .. }
            | Expr::MethodCall { line, .. }
            | Expr::Field { line, .. }
            | Expr::Index { line, .. }
            | Expr::Cast { line, .. }
            | Expr::Tuple { line, .. }
            | Expr::Array { line, .. }
            | Expr::Struct { line, .. } => *line,
            Expr::Try(e) => e.line(),
            Expr::Block { block, .. } => block.line,
            Expr::If(i) => i.line,
            Expr::Match(m) => m.line,
            Expr::Loop(l) => l.line,
            Expr::Closure(c) => c.line,
            Expr::Return(_, line) | Expr::Break(_, _, line) | Expr::Continue(_, line) => *line,
            Expr::Macro(m) => m.line,
            Expr::Opaque(run) => run.tokens.first().map(|t| t.line).unwrap_or(0),
        }
    }
}
