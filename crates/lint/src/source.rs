//! The source-invariant analyzer: a hand-rolled token-level Rust scanner
//! (no `syn`; the vendored dependency set has no parser) that denies the
//! determinism hazards PR 1's SimContext layer exists to prevent.
//!
//! The lexer understands exactly enough Rust to be sound for these
//! rules: line/block comments (nested), string/raw-string/char literals
//! (so banned names inside text never fire), lifetimes vs char literals,
//! identifiers, numbers, and punctuation — each with a line number.
//! `#[test]` / `#[cfg(test)]` items are exempt (tests legitimately use
//! `HashSet` for order-free assertions), and any finding can be
//! suppressed with a `// lint: allow(<rule>)` comment on the same line
//! or the line above — keeping exceptions explicit and auditable.

use crate::diag::{Diagnostic, Location, Severity};
use std::collections::BTreeMap;

#[derive(Debug, Clone, PartialEq)]
enum Tok {
    Ident(String),
    Punct(char),
    Num,
}

#[derive(Debug, Clone)]
struct Token {
    tok: Tok,
    line: usize,
}

#[derive(Debug, Default)]
struct Lexed {
    tokens: Vec<Token>,
    /// Line → rule ids allowed by a `// lint: allow(...)` comment there.
    allows: BTreeMap<usize, Vec<String>>,
}

fn is_ident_start(c: char) -> bool {
    c.is_alphabetic() || c == '_'
}

fn is_ident_continue(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

/// Records any `lint: allow(a, b)` directives found in a comment.
///
/// Doc comments (`///`, `//!`) are rendered documentation, not lint
/// directives: a rule id *mentioned* in prose must never suppress a
/// finding, so they are excluded. (`////` and longer are ordinary
/// comments per the reference.)
fn scan_allow(comment: &str, line: usize, allows: &mut BTreeMap<usize, Vec<String>>) {
    if (comment.starts_with("///") && !comment.starts_with("////")) || comment.starts_with("//!") {
        return;
    }
    let mut rest = comment;
    while let Some(pos) = rest.find("lint: allow(") {
        let tail = &rest[pos + "lint: allow(".len()..];
        let Some(close) = tail.find(')') else { break };
        for rule in tail[..close].split(',') {
            let rule = rule.trim();
            if !rule.is_empty() {
                allows.entry(line).or_default().push(rule.to_string());
            }
        }
        rest = &tail[close..];
    }
}

fn lex(src: &str) -> Lexed {
    let mut out = Lexed::default();
    let chars: Vec<char> = src.chars().collect();
    let mut i = 0;
    let mut line = 1;
    let n = chars.len();

    while i < n {
        let c = chars[i];
        match c {
            '\n' => {
                line += 1;
                i += 1;
            }
            _ if c.is_whitespace() => i += 1,
            '/' if i + 1 < n && chars[i + 1] == '/' => {
                let start = i;
                while i < n && chars[i] != '\n' {
                    i += 1;
                }
                let comment: String = chars[start..i].iter().collect();
                scan_allow(&comment, line, &mut out.allows);
            }
            '/' if i + 1 < n && chars[i + 1] == '*' => {
                let mut depth = 1;
                i += 2;
                while i < n && depth > 0 {
                    if chars[i] == '\n' {
                        line += 1;
                        i += 1;
                    } else if chars[i] == '/' && i + 1 < n && chars[i + 1] == '*' {
                        depth += 1;
                        i += 2;
                    } else if chars[i] == '*' && i + 1 < n && chars[i + 1] == '/' {
                        depth -= 1;
                        i += 2;
                    } else {
                        i += 1;
                    }
                }
            }
            '"' => {
                i += 1;
                while i < n {
                    match chars[i] {
                        '\\' => i += 2,
                        '"' => {
                            i += 1;
                            break;
                        }
                        '\n' => {
                            line += 1;
                            i += 1;
                        }
                        _ => i += 1,
                    }
                }
            }
            '\'' => {
                // Lifetime (`'a`) vs char literal (`'a'`, `'\n'`).
                if i + 1 < n && is_ident_start(chars[i + 1]) && chars[i + 1] != '\\' {
                    // Look past the identifier: a closing quote means char.
                    let mut j = i + 2;
                    while j < n && is_ident_continue(chars[j]) {
                        j += 1;
                    }
                    if j < n && chars[j] == '\'' {
                        i = j + 1; // char literal like 'a'
                    } else {
                        i += 1; // lifetime: skip the quote, lex the ident
                    }
                } else {
                    // Escaped or symbolic char literal.
                    i += 1;
                    while i < n {
                        match chars[i] {
                            '\\' => i += 2,
                            '\'' => {
                                i += 1;
                                break;
                            }
                            '\n' => {
                                line += 1;
                                i += 1;
                            }
                            _ => i += 1,
                        }
                    }
                }
            }
            _ if c.is_ascii_digit() => {
                while i < n && (is_ident_continue(chars[i]) || chars[i] == '.') {
                    // Stop a float at a range operator (`0..10`).
                    if chars[i] == '.' && i + 1 < n && chars[i + 1] == '.' {
                        break;
                    }
                    i += 1;
                }
                out.tokens.push(Token {
                    tok: Tok::Num,
                    line,
                });
            }
            _ if is_ident_start(c) => {
                let start = i;
                while i < n && is_ident_continue(chars[i]) {
                    i += 1;
                }
                let word: String = chars[start..i].iter().collect();
                // Raw / byte string prefixes: `r"…"`, `r#"…"#`, `b"…"`,
                // `br##"…"##` — the quote body must not produce tokens.
                if (word == "r" || word == "b" || word == "br" || word == "rb")
                    && i < n
                    && (chars[i] == '"' || chars[i] == '#')
                {
                    let mut hashes = 0;
                    let mut j = i;
                    while j < n && chars[j] == '#' {
                        hashes += 1;
                        j += 1;
                    }
                    if j < n && chars[j] == '"' {
                        if word.contains('r') {
                            // Raw: no escapes; ends at `"` + `hashes` hashes.
                            j += 1;
                            'raw: while j < n {
                                if chars[j] == '\n' {
                                    line += 1;
                                } else if chars[j] == '"' {
                                    let mut k = 0;
                                    while k < hashes && j + 1 + k < n && chars[j + 1 + k] == '#' {
                                        k += 1;
                                    }
                                    if k == hashes {
                                        j += 1 + hashes;
                                        break 'raw;
                                    }
                                }
                                j += 1;
                            }
                            i = j;
                            continue;
                        } else if hashes == 0 {
                            // Byte string `b"…"`: escape rules like `"…"`.
                            j += 1;
                            while j < n {
                                match chars[j] {
                                    '\\' => j += 2,
                                    '"' => {
                                        j += 1;
                                        break;
                                    }
                                    '\n' => {
                                        line += 1;
                                        j += 1;
                                    }
                                    _ => j += 1,
                                }
                            }
                            i = j;
                            continue;
                        }
                    }
                }
                out.tokens.push(Token {
                    tok: Tok::Ident(word),
                    line,
                });
            }
            _ => {
                out.tokens.push(Token {
                    tok: Tok::Punct(c),
                    line,
                });
                i += 1;
            }
        }
    }
    out
}

/// Marks every token belonging to a `#[test]`- or `#[cfg(test)]`-gated
/// item (attribute through closing brace of the item body).
fn mark_test_regions(tokens: &[Token]) -> Vec<bool> {
    let mut in_test = vec![false; tokens.len()];
    let n = tokens.len();
    let mut i = 0;
    while i < n {
        let is_attr =
            tokens[i].tok == Tok::Punct('#') && i + 1 < n && tokens[i + 1].tok == Tok::Punct('[');
        if !is_attr {
            i += 1;
            continue;
        }
        // Find the matching `]` and classify the attribute.
        let mut depth = 0;
        let mut j = i + 1;
        let mut has_test = false;
        let mut has_not = false;
        while j < n {
            match &tokens[j].tok {
                Tok::Punct('[') => depth += 1,
                Tok::Punct(']') => {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                Tok::Ident(w) if w == "test" => has_test = true,
                Tok::Ident(w) if w == "not" => has_not = true,
                _ => {}
            }
            j += 1;
        }
        if j >= n || !has_test || has_not {
            i = j.min(n - 1) + 1;
            continue;
        }
        // Find the item body's `{` (a `;` first means no body, e.g. a
        // cfg-gated `use`). Intervening attributes are skipped.
        let mut k = j + 1;
        let mut body = None;
        while k < n {
            match &tokens[k].tok {
                Tok::Punct('{') => {
                    body = Some(k);
                    break;
                }
                Tok::Punct(';') => break,
                Tok::Punct('#') if k + 1 < n && tokens[k + 1].tok == Tok::Punct('[') => {
                    let mut d = 0;
                    k += 1;
                    while k < n {
                        match &tokens[k].tok {
                            Tok::Punct('[') => d += 1,
                            Tok::Punct(']') => {
                                d -= 1;
                                if d == 0 {
                                    break;
                                }
                            }
                            _ => {}
                        }
                        k += 1;
                    }
                }
                _ => {}
            }
            k += 1;
        }
        if let Some(start) = body {
            let mut d = 0;
            let mut m = start;
            while m < n {
                match &tokens[m].tok {
                    Tok::Punct('{') => d += 1,
                    Tok::Punct('}') => {
                        d -= 1;
                        if d == 0 {
                            break;
                        }
                    }
                    _ => {}
                }
                m += 1;
            }
            for flag in in_test.iter_mut().take(m.min(n - 1) + 1).skip(i) {
                *flag = true;
            }
        }
        i = j + 1;
    }
    in_test
}

/// Per-file rule exemptions, granted by the workspace walker to the few
/// sanctioned definition sites (see `workspace.rs`).
#[derive(Debug, Default, Clone, Copy)]
pub struct Exemptions {
    /// Skip `no-hardcoded-min-move`: only the pointer-move profile
    /// definition site (`crates/webdriver/src/actions.rs`), where numeric
    /// durations are the point.
    pub min_move: bool,
    /// Skip `no-unordered-containers`: only for sanctioned interior-use
    /// modules whose hash containers are point-queried and never iterated
    /// (the jsom atom interner), so their ordering can't reach output.
    pub unordered: bool,
    /// Skip `no-panic`: only for sanctioned fail-fast modules (the
    /// offline bench report builders), where aborting on a malformed
    /// local artifact is the intended behaviour.
    pub panics: bool,
    /// Skip `no-wall-clock`: only for the bench timing harnesses, whose
    /// entire job is measuring real elapsed time (`Instant::now()`);
    /// their readings are reporting artifacts, never simulation inputs.
    pub wall_clock: bool,
    /// Skip `no-rng-from-seed`: only the rng construction site itself
    /// (`crates/stats/src/rngutil.rs`), which defines `rng_from_seed`
    /// and therefore necessarily names it.
    pub rng_def: bool,
}

/// Scans one source file. `file` labels diagnostics (workspace-relative
/// path); `exempt` carries the file's sanctioned rule exemptions.
pub fn analyze_source(file: &str, src: &str, exempt: Exemptions) -> Vec<Diagnostic> {
    let lexed = lex(src);
    let in_test = mark_test_regions(&lexed.tokens);
    let allowed = |line: usize, rule: &str| {
        let hit = |l: usize| {
            lexed
                .allows
                .get(&l)
                .is_some_and(|v| v.iter().any(|r| r == rule))
        };
        hit(line) || (line > 1 && hit(line - 1))
    };

    let mut out = Vec::new();
    let mut fire = |rule: &'static str, line: usize, message: String| {
        if !allowed(line, rule) {
            out.push(Diagnostic {
                rule,
                severity: Severity::Deny,
                location: Location::in_file(file, line),
                message,
            });
        }
    };

    let toks = &lexed.tokens;
    for (i, t) in toks.iter().enumerate() {
        if in_test[i] {
            continue;
        }
        let Tok::Ident(name) = &t.tok else { continue };
        match name.as_str() {
            "thread_rng" => fire(
                "no-thread-rng",
                t.line,
                "thread_rng() is OS-seeded; draw from a SimContext stream".into(),
            ),
            "rng_from_seed" if !exempt.rng_def => fire(
                "no-rng-from-seed",
                t.line,
                "ad-hoc seeding bypasses SimContext's derivation tree".into(),
            ),
            "SystemTime" if !exempt.wall_clock => fire(
                "no-wall-clock",
                t.line,
                "SystemTime reads the wall clock; use the SimContext virtual clock".into(),
            ),
            "Instant" if !exempt.wall_clock => {
                let now_follows = matches!(toks.get(i + 1).map(|t| &t.tok), Some(Tok::Punct(':')))
                    && matches!(toks.get(i + 2).map(|t| &t.tok), Some(Tok::Punct(':')))
                    && matches!(toks.get(i + 3).map(|t| &t.tok), Some(Tok::Ident(w)) if w == "now");
                if now_follows {
                    fire(
                        "no-wall-clock",
                        t.line,
                        "Instant::now() reads the wall clock; use the SimContext virtual clock"
                            .into(),
                    );
                }
            }
            "HashMap" | "HashSet" if !exempt.unordered => fire(
                "no-unordered-containers",
                t.line,
                format!("{name} iteration order is per-process random; use a BTree container"),
            ),
            "unwrap" if !exempt.panics => {
                // `.unwrap()` — a method call with no arguments. The
                // leading dot keeps definitions (`fn unwrap`) and paths
                // (`Option::unwrap` as a value) from firing.
                let is_bare_call = i > 0
                    && matches!(&toks[i - 1].tok, Tok::Punct('.'))
                    && matches!(toks.get(i + 1).map(|t| &t.tok), Some(Tok::Punct('(')))
                    && matches!(toks.get(i + 2).map(|t| &t.tok), Some(Tok::Punct(')')));
                if is_bare_call {
                    fire(
                        "no-panic",
                        t.line,
                        "unwrap() panics the worker; propagate a typed error or carry a \
                         justified allow"
                            .into(),
                    );
                }
            }
            "expect" if !exempt.panics => {
                // `.expect(...)` — same panic path as unwrap(): the
                // stated invariant is documentation, not handling, and
                // the worker still dies when it is wrong. The leading
                // dot keeps definitions (`fn expect`) and paths from
                // firing; the opening paren keeps field accesses out.
                let is_dotted_call = i > 0
                    && matches!(&toks[i - 1].tok, Tok::Punct('.'))
                    && matches!(toks.get(i + 1).map(|t| &t.tok), Some(Tok::Punct('(')));
                if is_dotted_call {
                    fire(
                        "no-panic",
                        t.line,
                        "expect() panics the worker like unwrap(); propagate a typed error \
                         or carry a justified allow"
                            .into(),
                    );
                }
            }
            "panic" if !exempt.panics => {
                // `panic!(...)` — the macro bang. `panic::catch_unwind`
                // (`panic` followed by `::`) and idents like
                // `should_panic` lex differently and never reach here.
                if matches!(toks.get(i + 1).map(|t| &t.tok), Some(Tok::Punct('!'))) {
                    fire(
                        "no-panic",
                        t.line,
                        "panic! aborts the crawl worker; fail through the typed error path".into(),
                    );
                }
            }
            "min_duration_ms" if !exempt.min_move => {
                let assigns_number =
                    matches!(toks.get(i + 1).map(|t| &t.tok), Some(Tok::Punct(':')))
                        && matches!(toks.get(i + 2).map(|t| &t.tok), Some(Tok::Num));
                if assigns_number {
                    fire(
                        "no-hardcoded-min-move",
                        t.line,
                        "hard-coded move-duration floor; derive from HLISA_MIN_MOVE_MS".into(),
                    );
                }
            }
            "override_pointer_move_min_duration" if !exempt.min_move => {
                let called_with_number =
                    matches!(toks.get(i + 1).map(|t| &t.tok), Some(Tok::Punct('(')))
                        && matches!(toks.get(i + 2).map(|t| &t.tok), Some(Tok::Num));
                if called_with_number {
                    fire(
                        "no-hardcoded-min-move",
                        t.line,
                        "literal duration bypasses HLISA_MIN_MOVE_MS".into(),
                    );
                }
            }
            _ => {}
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rules_of(src: &str) -> Vec<&'static str> {
        let mut ids: Vec<&'static str> = analyze_source("fixture.rs", src, Exemptions::default())
            .iter()
            .map(|d| d.rule)
            .collect();
        ids.sort_unstable();
        ids.dedup();
        ids
    }

    #[test]
    fn banned_names_in_strings_and_comments_do_not_fire() {
        let src = r##"
            // thread_rng HashMap Instant::now SystemTime rng_from_seed
            /* SystemTime /* nested HashMap */ thread_rng */
            fn f() -> &'static str { "thread_rng HashMap \" SystemTime" }
            fn g() -> &'static str { r#"Instant::now() "quoted" HashSet"# }
            fn h() -> u8 { b'"' }
        "##;
        assert!(rules_of(src).is_empty(), "{:?}", rules_of(src));
    }

    #[test]
    fn each_source_rule_fires_on_its_fixture() {
        assert_eq!(
            rules_of("fn f() { let t = std::time::Instant::now(); }"),
            ["no-wall-clock"]
        );
        assert_eq!(rules_of("use std::time::SystemTime;"), ["no-wall-clock"]);
        assert_eq!(
            rules_of("fn f() { let mut r = rand::thread_rng(); }"),
            ["no-thread-rng"]
        );
        assert_eq!(
            rules_of("use std::collections::HashMap;\nfn f(s: HashSet<u8>) {}"),
            ["no-unordered-containers"]
        );
        assert_eq!(
            rules_of("fn f() { let r = rng_from_seed(42); }"),
            ["no-rng-from-seed"]
        );
        assert_eq!(
            rules_of("fn f(s: &mut Session) { s.override_pointer_move_min_duration(50.0); }"),
            ["no-hardcoded-min-move"]
        );
        assert_eq!(
            rules_of("fn p() -> PointerMoveProfile { PointerMoveProfile { min_duration_ms: 250.0, sample_interval_ms: 10.0 } }"),
            ["no-hardcoded-min-move"]
        );
    }

    #[test]
    fn no_panic_fires_on_unwrap_calls_and_panic_macros() {
        assert_eq!(
            rules_of("fn f(x: Option<u8>) -> u8 { x.unwrap() }"),
            ["no-panic"]
        );
        assert_eq!(rules_of("fn f() { panic!(\"boom\"); }"), ["no-panic"]);
        // `expect` panics exactly like `unwrap`; the message string does
        // not keep the worker alive.
        assert_eq!(
            rules_of("fn f(x: Option<u8>) -> u8 { x.expect(\"set by new()\") }"),
            ["no-panic"]
        );
        // `unwrap_or` family, `panic::catch_unwind`, and definitions of
        // an `unwrap` method are not panics.
        assert!(rules_of("fn f(x: Option<u8>) -> u8 { x.unwrap_or(0) }").is_empty());
        assert!(rules_of("fn f() { let _ = std::panic::catch_unwind(|| 1); }").is_empty());
        assert!(rules_of("impl W { fn unwrap(self) -> u8 { self.0 } }").is_empty());
        // Test regions stay exempt, and allow-comments suppress.
        assert!(rules_of("#[test]\nfn t() { Some(1).unwrap(); }").is_empty());
        assert!(
            rules_of("fn f(x: Option<u8>) -> u8 { x.unwrap() } // lint: allow(no-panic)")
                .is_empty()
        );
    }

    #[test]
    fn panic_exemption_skips_only_the_panic_rule() {
        let src = "fn f(x: Option<u8>) { x.unwrap(); let t = SystemTime::now(); }";
        let exempt = Exemptions {
            panics: true,
            ..Default::default()
        };
        let ids: Vec<_> = analyze_source("bench.rs", src, exempt)
            .iter()
            .map(|d| d.rule)
            .collect();
        assert_eq!(ids, ["no-wall-clock"]);
    }

    #[test]
    fn symbolic_floors_are_fine() {
        // Deriving from the constant or a variable is the sanctioned path.
        assert!(rules_of(
            "fn f(s: &mut Session) { s.override_pointer_move_min_duration(HLISA_MIN_MOVE_MS); }"
        )
        .is_empty());
        assert!(rules_of("struct P { min_duration_ms: f64 }").is_empty());
    }

    #[test]
    fn test_regions_are_exempt() {
        let src = "
            #[cfg(test)]
            mod tests {
                use std::collections::HashSet;
                #[test]
                fn t() { let s: HashSet<u8> = HashSet::new(); }
            }
        ";
        assert!(rules_of(src).is_empty());
        // …but #[cfg(not(test))] is not a test region.
        let src2 = "
            #[cfg(not(test))]
            mod prod { use std::collections::HashSet; }
        ";
        assert_eq!(rules_of(src2), ["no-unordered-containers"]);
    }

    #[test]
    fn allow_comments_suppress_same_line_and_next_line() {
        let same = "fn f() { let r = rng_from_seed(1); } // lint: allow(no-rng-from-seed)";
        assert!(rules_of(same).is_empty());
        let above = "
            // kept for the fixed published figures; lint: allow(no-rng-from-seed)
            fn f() { let r = rng_from_seed(1); }
        ";
        assert!(rules_of(above).is_empty());
        // The wrong rule id does not suppress.
        let wrong = "fn f() { let r = rng_from_seed(1); } // lint: allow(no-wall-clock)";
        assert_eq!(rules_of(wrong), ["no-rng-from-seed"]);
    }

    #[test]
    fn lines_are_reported_accurately() {
        let src = "fn a() {}\nfn b() { let x = rng_from_seed(3); }\n";
        let d = analyze_source("x.rs", src, Exemptions::default());
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].location.line, Some(2));
        assert_eq!(d[0].location.file.as_deref(), Some("x.rs"));
    }

    #[test]
    fn exempt_file_skips_only_the_min_move_rule() {
        let src = "fn p() { let p = P { min_duration_ms: 250.0 }; let t = SystemTime::now(); }";
        let exempt = Exemptions {
            min_move: true,
            ..Default::default()
        };
        let ids: Vec<_> = analyze_source("actions.rs", src, exempt)
            .iter()
            .map(|d| d.rule)
            .collect();
        assert_eq!(ids, ["no-wall-clock"]);
    }

    #[test]
    fn unordered_exemption_skips_only_the_container_rule() {
        let src = "use std::collections::HashMap;\nfn f() { let t = SystemTime::now(); }";
        let exempt = Exemptions {
            unordered: true,
            ..Default::default()
        };
        let ids: Vec<_> = analyze_source("atom.rs", src, exempt)
            .iter()
            .map(|d| d.rule)
            .collect();
        assert_eq!(ids, ["no-wall-clock"]);
    }

    #[test]
    fn lifetimes_do_not_derail_the_lexer() {
        let src = "fn f<'a>(x: &'a str) -> &'a str { let c = 'x'; let d = '\\n'; x }";
        assert!(rules_of(src).is_empty());
        // And idents straight after a lifetime still lex.
        let src2 = "fn f<'a>(m: &'a HashMap<u8, u8>) {}";
        assert_eq!(rules_of(src2), ["no-unordered-containers"]);
    }
}
