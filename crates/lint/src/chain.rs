//! The action-chain detectability linter.
//!
//! Replays an interaction program *symbolically* — no browser, no clock —
//! and flags every Table 1 tell before `perform` ever runs. Judgements
//! use the same [`hlisa_detect::thresholds`] constants as the runtime
//! detector, so a chain that lints clean is exactly a chain the level-1
//! detector has no threshold left to fire on.
//!
//! Time model: a `Pause` advances the virtual clock by its duration, a
//! `PointerMove` by its *requested* duration (the request is the tell —
//! the driver-side floor that later rescues it is itself Selenium's
//! fingerprint), and everything else is instantaneous. A *gesture* is a
//! maximal run of consecutive `PointerMove`s; a typing *burst* is a run
//! of keydowns with no gap over [`CADENCE_WINDOW_RESET_MS`]; a wheel
//! *run* is a tick sequence never separated by a finger-repositioning
//! break. Each rule fires at most once per program, at the first action
//! that makes it decidable.

use crate::diag::{Diagnostic, Location, Report, Severity};
use hlisa_detect::thresholds::{
    CADENCE_WINDOW_RESET_MS, FINGER_BREAK_FLOOR_MS, MAX_FLICK_RUN_TICKS, MAX_HUMAN_SPEED_PX_PER_MS,
    MAX_HUMAN_TYPING_CPM, METRONOME_CV, MIN_CADENCE_KEYS, MIN_GESTURE_MOVES,
    MIN_HUMAN_CLICK_DWELL_MS, MIN_HUMAN_KEY_DWELL_MS, MIN_SEGMENT_PATH_PX, REPRESS_WINDOW_MS,
    SCRIPT_SCROLL_JUMP_PX, UNIFORM_SPEED_CV, WAYPOINT_COLLINEARITY_EPS,
};
use hlisa_stats::descriptive::coefficient_of_variation;
use hlisa_webdriver::actions::{Action, HLISA_MIN_MOVE_MS};
use hlisa_webdriver::audit::{ActionAuditor, AuditFinding};
use std::collections::{BTreeMap, VecDeque};

/// Stateful symbolic replayer. Feed it actions with
/// [`observe`](ChainLinter::observe) (or whole programs via
/// [`lint_actions`]); collect findings with
/// [`into_report`](ChainLinter::into_report). Also implements
/// [`ActionAuditor`] so a [`hlisa_webdriver::Session`] can run it live as
/// strict mode.
#[derive(Debug, Default)]
pub struct ChainLinter {
    now_ms: f64,
    action_index: usize,
    cursor: (f64, f64),
    gesture_points: Vec<(f64, f64)>,
    gesture_durations: Vec<f64>,
    gesture_start: usize,
    pointer_down_at: Option<f64>,
    last_pointer_up: Option<f64>,
    moved_since_up: bool,
    shift_down: bool,
    open_keys: BTreeMap<String, VecDeque<f64>>,
    burst_downs: Vec<f64>,
    wheel_run: usize,
    last_wheel: Option<f64>,
    fired: Vec<&'static str>,
    diags: Vec<Diagnostic>,
    drained: usize,
}

fn dist(a: (f64, f64), b: (f64, f64)) -> f64 {
    ((b.0 - a.0).powi(2) + (b.1 - a.1).powi(2)).sqrt()
}

impl ChainLinter {
    /// A fresh linter (cursor at the page origin, clock at zero).
    pub fn new() -> Self {
        Self::default()
    }

    fn fire(&mut self, rule: &'static str, location: Location, message: String) {
        if self.fired.contains(&rule) {
            return;
        }
        self.fired.push(rule);
        self.diags.push(Diagnostic {
            rule,
            severity: Severity::Deny,
            location,
            message,
        });
    }

    fn here(&self) -> Location {
        Location::at_action(self.action_index)
    }

    /// Judges and discards the pending gesture (run of consecutive
    /// pointer moves).
    fn end_gesture(&mut self) {
        if let &[first, .., last] = self.gesture_points.as_slice() {
            let path: f64 = self
                .gesture_points
                .windows(2)
                .map(|w| dist(w[0], w[1]))
                .sum();
            let chord = dist(first, last);
            let start = Location::at_action(self.gesture_start);
            // Waypoints are coarse, so the tell is *exact* collinearity:
            // human trajectories carry jitter and curvature that survive
            // any subsampling, while a straight-line loop is collinear to
            // floating-point precision.
            if path >= MIN_SEGMENT_PATH_PX && chord / path > 1.0 - WAYPOINT_COLLINEARITY_EPS {
                self.fire(
                    "straight-line-gesture",
                    start.clone(),
                    format!("gesture path {path:.0} px is perfectly straight"),
                );
            }
            // The final segment is excluded: `trajectory_to_actions`
            // clamps the last (partial) segment up to the duration floor
            // in every planner, which distorts its speed identically for
            // humanlike and naive motion.
            let mut speeds: Vec<f64> = self
                .gesture_points
                .windows(2)
                .zip(&self.gesture_durations)
                .filter(|(_, d)| **d > 0.0)
                .map(|(w, d)| dist(w[0], w[1]) / d)
                .collect();
            speeds.pop();
            if speeds.len() >= MIN_GESTURE_MOVES && path >= MIN_SEGMENT_PATH_PX {
                let cv = coefficient_of_variation(&speeds);
                if cv < UNIFORM_SPEED_CV {
                    self.fire(
                        "uniform-speed-gesture",
                        start,
                        format!(
                            "gesture speed is uniform across {} moves \
                             (CV {cv:.4})",
                            speeds.len()
                        ),
                    );
                }
            }
        }
        self.gesture_points.clear();
        self.gesture_durations.clear();
    }

    /// Judges and discards the pending typing burst.
    fn flush_burst(&mut self) {
        if self.burst_downs.len() >= MIN_CADENCE_KEYS {
            let n = self.burst_downs.len();
            let span = self.burst_downs[n - 1] - self.burst_downs[0];
            let cpm = if span > 0.0 {
                (n - 1) as f64 * 60_000.0 / span
            } else {
                f64::INFINITY
            };
            if cpm > MAX_HUMAN_TYPING_CPM {
                self.fire(
                    "superhuman-typing-cadence",
                    self.here(),
                    format!("{n} keys at {cpm:.0} cpm (limit {MAX_HUMAN_TYPING_CPM:.0})"),
                );
            }
            let intervals: Vec<f64> = self.burst_downs.windows(2).map(|w| w[1] - w[0]).collect();
            let cv = coefficient_of_variation(&intervals);
            if cv < METRONOME_CV {
                self.fire(
                    "metronomic-typing",
                    self.here(),
                    format!("inter-key intervals too regular over {n} keys (CV {cv:.4})"),
                );
            }
        }
        self.burst_downs.clear();
    }

    /// Feeds one action through the symbolic replay.
    pub fn observe(&mut self, action: &Action) {
        match action {
            Action::PointerMove { x, y, duration_ms } => {
                if *duration_ms < HLISA_MIN_MOVE_MS {
                    self.fire(
                        "sub-min-move",
                        self.here(),
                        format!(
                            "pointer move requested at {duration_ms:.1} ms \
                             (floor {HLISA_MIN_MOVE_MS:.0} ms)"
                        ),
                    );
                }
                let d = dist(self.cursor, (*x, *y));
                if d > 0.0 && (*duration_ms <= 0.0 || d / duration_ms > MAX_HUMAN_SPEED_PX_PER_MS) {
                    let speed = if *duration_ms > 0.0 {
                        format!("{:.1} px/ms", d / duration_ms)
                    } else {
                        "infinite speed".to_string()
                    };
                    self.fire(
                        "superhuman-move-speed",
                        self.here(),
                        format!("{d:.0} px move at {speed}"),
                    );
                }
                if self.gesture_points.is_empty() {
                    self.gesture_points.push(self.cursor);
                    self.gesture_start = self.action_index;
                }
                self.gesture_points.push((*x, *y));
                self.gesture_durations.push(*duration_ms);
                self.now_ms += duration_ms.max(0.0);
                self.cursor = (*x, *y);
                self.moved_since_up = true;
                self.wheel_run = 0;
            }
            Action::PointerDown(_) => {
                self.end_gesture();
                let repress = self
                    .last_pointer_up
                    .is_some_and(|up| self.now_ms - up <= REPRESS_WINDOW_MS);
                if !self.moved_since_up && !repress {
                    self.fire(
                        "click-without-approach",
                        self.here(),
                        "button press with no preceding cursor movement".to_string(),
                    );
                }
                self.pointer_down_at = Some(self.now_ms);
                self.wheel_run = 0;
            }
            Action::PointerUp(_) => {
                self.end_gesture();
                if let Some(down) = self.pointer_down_at.take() {
                    let dwell = self.now_ms - down;
                    if dwell < MIN_HUMAN_CLICK_DWELL_MS {
                        self.fire(
                            "zero-dwell-click",
                            self.here(),
                            format!(
                                "button held {dwell:.1} ms \
                                 (human floor {MIN_HUMAN_CLICK_DWELL_MS:.0} ms)"
                            ),
                        );
                    }
                }
                self.last_pointer_up = Some(self.now_ms);
                self.moved_since_up = false;
                self.wheel_run = 0;
            }
            Action::KeyDown(key) => {
                self.end_gesture();
                self.wheel_run = 0;
                if key == "Shift" {
                    self.shift_down = true;
                } else {
                    let is_capital = key.len() == 1
                        && key.chars().next().is_some_and(|c| c.is_ascii_uppercase());
                    if is_capital && !self.shift_down {
                        self.fire(
                            "capitals-without-shift",
                            self.here(),
                            format!("'{key}' typed with no Shift held"),
                        );
                    }
                    if let Some(&last) = self.burst_downs.last() {
                        if self.now_ms - last > CADENCE_WINDOW_RESET_MS {
                            self.flush_burst();
                        }
                    }
                    self.burst_downs.push(self.now_ms);
                    self.open_keys
                        .entry(key.clone())
                        .or_default()
                        .push_back(self.now_ms);
                }
            }
            Action::KeyUp(key) => {
                self.end_gesture();
                self.wheel_run = 0;
                if key == "Shift" {
                    self.shift_down = false;
                } else if let Some(down) = self.open_keys.get_mut(key).and_then(VecDeque::pop_front)
                {
                    let dwell = self.now_ms - down;
                    if dwell < MIN_HUMAN_KEY_DWELL_MS {
                        self.fire(
                            "zero-dwell-key",
                            self.here(),
                            format!(
                                "'{key}' held {dwell:.1} ms \
                                 (human floor {MIN_HUMAN_KEY_DWELL_MS:.0} ms)"
                            ),
                        );
                    }
                }
            }
            Action::Pause(ms) => {
                self.end_gesture();
                // A pause is exactly how a human separates scroll flicks,
                // so it does NOT reset the wheel run — only break-length
                // gaps do, judged at the next tick.
                self.now_ms += ms.max(0.0);
            }
            Action::WheelTick(_) => {
                self.end_gesture();
                let continues = self
                    .last_wheel
                    .is_some_and(|t| self.now_ms - t < FINGER_BREAK_FLOOR_MS);
                self.wheel_run = if continues { self.wheel_run + 1 } else { 1 };
                self.last_wheel = Some(self.now_ms);
                if self.wheel_run >= MAX_FLICK_RUN_TICKS {
                    self.fire(
                        "no-finger-breaks",
                        self.here(),
                        format!(
                            "{} wheel ticks with no gap ≥ {FINGER_BREAK_FLOOR_MS:.0} ms",
                            self.wheel_run
                        ),
                    );
                }
            }
        }
        self.action_index += 1;
    }

    /// Closes open windows (gesture, burst) and returns every finding.
    pub fn into_report(mut self) -> Report {
        self.end_gesture();
        self.flush_burst();
        Report::from_diagnostics(self.diags)
    }

    fn drain(&mut self) -> Vec<AuditFinding> {
        let new = self.diags[self.drained..]
            .iter()
            .map(|d| AuditFinding {
                rule: d.rule,
                detail: d.message.clone(),
            })
            .collect();
        self.drained = self.diags.len();
        new
    }
}

/// Lints one complete action program.
pub fn lint_actions(actions: &[Action]) -> Report {
    let mut linter = ChainLinter::new();
    for a in actions {
        linter.observe(a);
    }
    linter.into_report()
}

impl ActionAuditor for ChainLinter {
    fn audit_actions(&mut self, actions: &[Action]) -> Vec<AuditFinding> {
        for a in actions {
            self.observe(a);
        }
        self.drain()
    }

    fn note_script_scroll(&mut self, delta_px: f64) -> Vec<AuditFinding> {
        if delta_px.abs() > SCRIPT_SCROLL_JUMP_PX {
            self.fire(
                "scroll-teleport",
                Location::default(),
                format!(
                    "script scroll of {:.0} px with no wheel events \
                     (limit {SCRIPT_SCROLL_JUMP_PX:.0} px)",
                    delta_px.abs()
                ),
            );
        }
        self.drain()
    }

    fn note_script_click(&mut self) -> Vec<AuditFinding> {
        self.fire(
            "script-click",
            Location::default(),
            "synthetic element.click() dispatch".to_string(),
        );
        self.drain()
    }

    fn finish(&mut self) -> Vec<AuditFinding> {
        self.end_gesture();
        self.flush_burst();
        self.drain()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hlisa_browser::events::MouseButton;

    fn rules_of(actions: &[Action]) -> Vec<&'static str> {
        lint_actions(actions).rule_ids()
    }

    fn mv(x: f64, y: f64, d: f64) -> Action {
        Action::PointerMove {
            x,
            y,
            duration_ms: d,
        }
    }

    /// A believable approach: curved, decelerating, every move ≥ 50 ms.
    fn approach() -> Vec<Action> {
        vec![
            mv(10.0, 5.0, 60.0),
            mv(18.0, 14.0, 70.0),
            mv(23.0, 26.0, 90.0),
            mv(26.0, 40.0, 120.0),
            mv(27.0, 55.0, 160.0),
        ]
    }

    #[test]
    fn a_humanlike_program_lints_clean() {
        let mut a = approach();
        a.extend([
            Action::Pause(80.0),
            Action::PointerDown(MouseButton::Left),
            Action::Pause(70.0),
            Action::PointerUp(MouseButton::Left),
        ]);
        assert!(rules_of(&a).is_empty(), "{:?}", rules_of(&a));
    }

    #[test]
    fn sub_min_move_fires_on_requests_below_the_floor() {
        assert_eq!(rules_of(&[mv(30.0, 0.0, 20.0)]), ["sub-min-move"]);
        // At the floor is fine.
        assert!(rules_of(&[mv(30.0, 0.0, 50.0)]).is_empty());
    }

    #[test]
    fn zero_duration_moves_are_superhuman() {
        let ids = rules_of(&[mv(300.0, 200.0, 0.0)]);
        assert!(ids.contains(&"superhuman-move-speed"), "{ids:?}");
        assert!(ids.contains(&"sub-min-move"), "{ids:?}");
        // A fast-but-finite long move also trips the speed limit.
        let ids = rules_of(&[mv(700.0, 0.0, 60.0)]);
        assert!(ids.contains(&"superhuman-move-speed"), "{ids:?}");
    }

    #[test]
    fn straight_gestures_are_flagged_even_with_varying_speed() {
        let ids = rules_of(&[
            mv(20.0, 0.0, 60.0),
            mv(40.0, 0.0, 90.0),
            mv(60.0, 0.0, 120.0),
            mv(80.0, 0.0, 150.0),
            mv(100.0, 0.0, 180.0),
        ]);
        assert_eq!(ids, ["straight-line-gesture"]);
    }

    #[test]
    fn uniform_speed_fires_even_on_a_curved_path() {
        // Arc with every segment at exactly 0.5 px/ms (the last segment
        // is excluded from the CV as duration-clamped, so five moves
        // leave the four the rule needs).
        let ids = rules_of(&[
            mv(30.0, 10.0, 63.2),
            mv(55.0, 30.0, 64.0),
            mv(70.0, 58.0, 63.6),
            mv(75.0, 90.0, 64.8),
            mv(70.0, 122.0, 64.8),
        ]);
        assert_eq!(ids, ["uniform-speed-gesture"]);
    }

    #[test]
    fn short_wiggles_are_not_judged_for_shape() {
        // Path below MIN_SEGMENT_PATH_PX: too little signal.
        assert!(rules_of(&[
            mv(5.0, 0.0, 60.0),
            mv(10.0, 0.0, 60.0),
            mv(15.0, 0.0, 60.0),
            mv(20.0, 0.0, 60.0),
            mv(25.0, 0.0, 60.0),
        ])
        .is_empty());
    }

    #[test]
    fn clicks_without_approach_fire_but_represses_do_not() {
        let ids = rules_of(&[
            Action::PointerDown(MouseButton::Left),
            Action::Pause(20.0),
            Action::PointerUp(MouseButton::Left),
        ]);
        assert_eq!(ids, ["click-without-approach"]);

        // Double click: second press inside the re-press window is human.
        let mut a = approach();
        a.extend([
            Action::PointerDown(MouseButton::Left),
            Action::Pause(30.0),
            Action::PointerUp(MouseButton::Left),
            Action::Pause(120.0),
            Action::PointerDown(MouseButton::Left),
            Action::Pause(30.0),
            Action::PointerUp(MouseButton::Left),
        ]);
        assert!(rules_of(&a).is_empty(), "{:?}", rules_of(&a));
    }

    #[test]
    fn zero_dwell_click_fires_on_instant_release() {
        let mut a = approach();
        a.extend([
            Action::PointerDown(MouseButton::Left),
            Action::PointerUp(MouseButton::Left),
        ]);
        assert_eq!(rules_of(&a), ["zero-dwell-click"]);
    }

    #[test]
    fn zero_dwell_key_fires_on_instant_release() {
        assert_eq!(
            rules_of(&[Action::KeyDown("a".into()), Action::KeyUp("a".into())]),
            ["zero-dwell-key"]
        );
        // With dwell it is clean.
        assert!(rules_of(&[
            Action::KeyDown("a".into()),
            Action::Pause(40.0),
            Action::KeyUp("a".into()),
        ])
        .is_empty());
    }

    #[test]
    fn capitals_need_shift() {
        let ids = rules_of(&[
            Action::KeyDown("A".into()),
            Action::Pause(40.0),
            Action::KeyUp("A".into()),
        ]);
        assert_eq!(ids, ["capitals-without-shift"]);
        // Shift held: clean.
        assert!(rules_of(&[
            Action::KeyDown("Shift".into()),
            Action::Pause(30.0),
            Action::KeyDown("A".into()),
            Action::Pause(40.0),
            Action::KeyUp("A".into()),
            Action::Pause(20.0),
            Action::KeyUp("Shift".into()),
        ])
        .is_empty());
    }

    #[test]
    fn selenium_cadence_trips_both_typing_rules() {
        // 13,333 cpm: keydown+keyup then a fixed 4.5 ms pause, no dwell.
        let mut a = Vec::new();
        for c in "hello brave new".chars() {
            a.push(Action::KeyDown(c.to_string()));
            a.push(Action::KeyUp(c.to_string()));
            a.push(Action::Pause(4.5));
        }
        let ids = rules_of(&a);
        assert!(ids.contains(&"superhuman-typing-cadence"), "{ids:?}");
        assert!(ids.contains(&"metronomic-typing"), "{ids:?}");
        assert!(ids.contains(&"zero-dwell-key"), "{ids:?}");
    }

    #[test]
    fn fixed_interval_typing_is_metronomic_even_at_human_speed() {
        // Exactly 50 ms between keydowns (1,200 cpm) with real dwell.
        let mut a = Vec::new();
        for c in "abcdefghijkl".chars() {
            a.push(Action::KeyDown(c.to_string()));
            a.push(Action::Pause(20.0));
            a.push(Action::KeyUp(c.to_string()));
            a.push(Action::Pause(30.0));
        }
        assert_eq!(rules_of(&a), ["metronomic-typing"]);
    }

    #[test]
    fn irregular_typing_is_clean() {
        let gaps = [
            80.0, 150.0, 95.0, 210.0, 120.0, 60.0, 170.0, 100.0, 140.0, 90.0, 200.0,
        ];
        let dwells = [
            40.0, 70.0, 55.0, 90.0, 45.0, 60.0, 80.0, 50.0, 65.0, 75.0, 58.0, 48.0,
        ];
        let mut a = Vec::new();
        for (i, c) in "abcdefghijkl".chars().enumerate() {
            a.push(Action::KeyDown(c.to_string()));
            a.push(Action::Pause(dwells[i]));
            a.push(Action::KeyUp(c.to_string()));
            if i < gaps.len() {
                a.push(Action::Pause(gaps[i]));
            }
        }
        assert!(rules_of(&a).is_empty(), "{:?}", rules_of(&a));
    }

    #[test]
    fn endless_wheel_runs_need_finger_breaks() {
        let mut a = Vec::new();
        for _ in 0..35 {
            a.push(Action::WheelTick(1));
            a.push(Action::Pause(100.0));
        }
        assert_eq!(rules_of(&a), ["no-finger-breaks"]);

        // Flicks separated by real breaks are clean, however long.
        let mut a = Vec::new();
        for flick in 0..12 {
            for _ in 0..5 {
                a.push(Action::WheelTick(1));
                a.push(Action::Pause(60.0));
            }
            let _ = flick;
            a.push(Action::Pause(220.0));
        }
        assert!(rules_of(&a).is_empty(), "{:?}", rules_of(&a));
    }

    #[test]
    fn each_rule_fires_once_with_a_location() {
        let r = lint_actions(&[mv(30.0, 0.0, 10.0), mv(60.0, 0.0, 10.0)]);
        let subs: Vec<_> = r
            .diagnostics()
            .iter()
            .filter(|d| d.rule == "sub-min-move")
            .collect();
        assert_eq!(subs.len(), 1);
        assert_eq!(subs[0].location.action_index, Some(0));
    }

    #[test]
    fn the_auditor_face_reports_incrementally() {
        let mut l = ChainLinter::new();
        let first = l.audit_actions(&[mv(30.0, 0.0, 10.0)]);
        assert_eq!(first.len(), 1);
        assert_eq!(first[0].rule, "sub-min-move");
        // Same rule again: deduped, nothing new.
        assert!(l.audit_actions(&[mv(60.0, 0.0, 10.0)]).is_empty());

        assert!(l.note_script_scroll(120.0).is_empty());
        let jump = l.note_script_scroll(2_500.0);
        assert_eq!(jump.len(), 1);
        assert_eq!(jump[0].rule, "scroll-teleport");
        let click = l.note_script_click();
        assert_eq!(click[0].rule, "script-click");

        // finish() closes the open gesture (two straight 30 px moves).
        let tail = l.finish();
        assert!(
            tail.iter().any(|f| f.rule == "straight-line-gesture"),
            "{tail:?}"
        );
    }
}
