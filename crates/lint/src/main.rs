//! The `hlisa-lint` binary: workspace determinism analysis plus the
//! planner detectability gate, wired into `scripts/verify.sh` and CI.
//!
//! Exit codes: 0 = clean, 1 = diagnostics found or gate violated,
//! 2 = usage/IO error.

use hlisa_lint::gate;
use hlisa_lint::{
    analyze_ast, build_ledger, check_ledger, find_workspace_root, lint_workspace, render_ledger,
    Exemptions, Report, LEDGER_FILE,
};
use std::path::PathBuf;
use std::process::ExitCode;

const USAGE: &str = "\
hlisa-lint: workspace determinism analyzer + action-chain detectability linter

USAGE:
    hlisa-lint [--json] [--root <dir>] [--skip-gate] [--ledger-check]
    hlisa-lint [--root <dir>] --ledger-write
    hlisa-lint [--json] --check-file <file.rs>

MODES:
    (default)            lint every crate's sources, then run the planner
                         gate (Selenium/naive chains must trip rules, the
                         HLISA chain must lint clean)
    --ledger-write       rebuild LINT_LEDGER.json from the tree and exit
    --check-file <file>  run only the per-file AST analysis on one file

OPTIONS:
    --json          machine-readable output
    --root <dir>    workspace root (default: discovered from the cwd)
    --skip-gate     source analysis only
    --ledger-check  also fail if the committed LINT_LEDGER.json is stale
";

struct Args {
    json: bool,
    skip_gate: bool,
    ledger_check: bool,
    ledger_write: bool,
    root: Option<PathBuf>,
    check_file: Option<PathBuf>,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        json: false,
        skip_gate: false,
        ledger_check: false,
        ledger_write: false,
        root: None,
        check_file: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--json" => args.json = true,
            "--skip-gate" => args.skip_gate = true,
            "--ledger-check" => args.ledger_check = true,
            "--ledger-write" => args.ledger_write = true,
            "--root" => {
                args.root = Some(PathBuf::from(it.next().ok_or("--root needs a directory")?));
            }
            "--check-file" => {
                args.check_file =
                    Some(PathBuf::from(it.next().ok_or("--check-file needs a file")?));
            }
            "--help" | "-h" => return Err(String::new()),
            other => return Err(format!("unknown argument: {other}")),
        }
    }
    Ok(args)
}

fn emit(report: &Report, json: bool) {
    if json {
        println!("{}", report.to_json());
    } else {
        print!("{}", report.render_human());
    }
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(msg) => {
            if msg.is_empty() {
                print!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            eprintln!("error: {msg}\n\n{USAGE}");
            return ExitCode::from(2);
        }
    };

    // Single-file mode: the fixture/pre-commit entry point.
    if let Some(file) = &args.check_file {
        let text = match std::fs::read_to_string(file) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("error: cannot read {}: {e}", file.display());
                return ExitCode::from(2);
            }
        };
        let report = Report::from_diagnostics(analyze_ast(
            &file.to_string_lossy().replace('\\', "/"),
            &text,
            Exemptions::default(),
        ));
        emit(&report, args.json);
        return if report.is_clean() {
            ExitCode::SUCCESS
        } else {
            ExitCode::from(1)
        };
    }

    // Workspace mode.
    let root = match args.root.clone().or_else(|| {
        std::env::current_dir()
            .ok()
            .and_then(|d| find_workspace_root(&d))
    }) {
        Some(r) => r,
        None => {
            eprintln!("error: no workspace root found (try --root)");
            return ExitCode::from(2);
        }
    };
    if args.ledger_write {
        let ledger = match build_ledger(&root) {
            Ok(l) => l,
            Err(e) => {
                eprintln!("error: building ledger: {e}");
                return ExitCode::from(2);
            }
        };
        let path = root.join(LEDGER_FILE);
        if let Err(e) = std::fs::write(&path, render_ledger(&ledger)) {
            eprintln!("error: writing {}: {e}", path.display());
            return ExitCode::from(2);
        }
        eprintln!(
            "ledger: wrote {} ({} entries, {} files scanned)",
            path.display(),
            ledger.entries.len(),
            ledger.files_scanned
        );
        return ExitCode::SUCCESS;
    }

    let mut report = match lint_workspace(&root) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("error: walking {}: {e}", root.display());
            return ExitCode::from(2);
        }
    };

    let mut ledger_ok = true;
    if args.ledger_check {
        match check_ledger(&root) {
            Ok(Ok(())) => {
                if !args.json {
                    eprintln!("ledger: ok ({LEDGER_FILE} matches the tree)");
                }
            }
            Ok(Err(msg)) => {
                ledger_ok = false;
                eprintln!("ledger: {msg}");
            }
            Err(e) => {
                eprintln!("error: checking ledger: {e}");
                return ExitCode::from(2);
            }
        }
    }

    // The planner gate: the linter must keep separating the Fig. 3 rungs.
    let mut gate_ok = true;
    if !args.skip_gate {
        let selenium = gate::selenium_report().rule_ids();
        let naive = gate::naive_report(7).rule_ids();
        let hlisa = gate::hlisa_report(7);
        if selenium.len() < 3 {
            gate_ok = false;
            eprintln!("gate: Selenium chain tripped only {selenium:?} (expected >= 3 rules)");
        }
        if naive.len() < 3 {
            gate_ok = false;
            eprintln!("gate: naive chain tripped only {naive:?} (expected >= 3 rules)");
        }
        if !hlisa.is_clean() {
            gate_ok = false;
            eprintln!(
                "gate: HLISA chain must lint clean but was flagged:\n{}",
                hlisa.render_human()
            );
            report.merge(hlisa);
        }
        if gate_ok && !args.json {
            eprintln!(
                "gate: ok (selenium trips {}, naive trips {}, hlisa clean)",
                selenium.len(),
                naive.len()
            );
        }
    }

    emit(&report, args.json);
    if report.is_clean() && gate_ok && ledger_ok {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(1)
    }
}
