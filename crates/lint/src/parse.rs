//! Lexer, token trees, and the recursive-descent parser behind the
//! AST-grade analyzer ([`crate::provenance`]).
//!
//! Three stages, all hand-rolled (the vendored dependency set has no
//! `syn`):
//!
//! 1. [`lex`] — a full-fidelity token stream: identifiers, lifetimes,
//!    numbers (with their spelling), string/char literals, and
//!    multi-character punctuation (`::`, `->`, `..=`, `>>=`, ...), each
//!    with a 1-based line. Comments and literals are understood well
//!    enough that banned names inside text can never leak into tokens.
//!    Line comments are also scanned for `lint: allow(...)` directives —
//!    **doc comments** (`///`, `//!`) are prose, not directives, and are
//!    skipped.
//! 2. [`build_trees`] — balanced `()`/`[]`/`{}` token trees, so the
//!    parser can treat any delimited region as one unit and opaque
//!    regions can be flattened back to tokens without re-lexing.
//! 3. [`Parser`] — recursive descent over the trees into
//!    [`crate::ast::File`]: items, blocks, statements, and a Pratt
//!    expression grammar covering the Rust subset this workspace uses.
//!    Anything unrecognised degrades to an opaque token run and records
//!    a [`ParseIssue`]; the workspace gate requires zero issues, so the
//!    fallback exists for fixtures and future syntax, not for production
//!    sources.

use crate::ast::{
    Arm, Attr, Block, Expr, ExprClosure, ExprIf, ExprLoop, ExprMatch, ExprPath, FieldInit, File,
    Item, ItemAdt, ItemConst, ItemFn, ItemImpl, ItemMod, ItemTrait, Lit, LitKind, MacroCall,
    PathSeg, Stmt, StmtExpr, StmtLet, TokenRun,
};

/// One lexed token kind.
#[derive(Debug, Clone, PartialEq)]
pub enum Tok {
    /// An identifier or keyword (`fn`, `HashMap`, `r#async`).
    Ident(String),
    /// A lifetime or loop label (`'a` — without the quote).
    Lifetime(String),
    /// A numeric literal, with its source spelling (`1_200.0`, `0xff`).
    Num(String),
    /// A string literal (plain, raw, or byte), with its inner text
    /// (escape sequences unprocessed).
    Str(String),
    /// A char or byte-char literal.
    Char,
    /// Punctuation, multi-character sequences combined (`::`, `..=`).
    Punct(String),
}

/// One token with its 1-based source line.
#[derive(Debug, Clone, PartialEq)]
pub struct Token {
    /// The token.
    pub tok: Tok,
    /// 1-based line the token starts on.
    pub line: usize,
}

impl Token {
    /// The identifier text, when this is an identifier.
    pub fn ident(&self) -> Option<&str> {
        match &self.tok {
            Tok::Ident(s) => Some(s),
            _ => None,
        }
    }

    /// The punctuation text, when this is punctuation.
    pub fn punct(&self) -> Option<&str> {
        match &self.tok {
            Tok::Punct(s) => Some(s),
            _ => None,
        }
    }

    /// True when this token is the punctuation `p`.
    pub fn is_punct(&self, p: &str) -> bool {
        self.punct() == Some(p)
    }

    /// True when this token is the identifier `w`.
    pub fn is_ident(&self, w: &str) -> bool {
        self.ident() == Some(w)
    }

    /// The inner text, when this is a string literal.
    pub fn str_text(&self) -> Option<&str> {
        match &self.tok {
            Tok::Str(s) => Some(s),
            _ => None,
        }
    }

    fn punct_tok(text: &str, line: usize) -> Token {
        Token {
            tok: Tok::Punct(text.to_string()),
            line,
        }
    }
}

/// One `lint: allow(<rule>)` directive found in a (non-doc) line comment.
#[derive(Debug, Clone, PartialEq)]
pub struct AllowDirective {
    /// The rule id as written (not yet validated against the catalog).
    pub rule: String,
    /// Line the comment sits on.
    pub line: usize,
}

/// Lexer output.
#[derive(Debug, Default)]
pub struct Lexed {
    /// The token stream.
    pub tokens: Vec<Token>,
    /// Allow directives, in source order.
    pub allows: Vec<AllowDirective>,
}

fn is_ident_start(c: char) -> bool {
    c.is_alphabetic() || c == '_'
}

fn is_ident_continue(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

/// True when a `//` comment is a doc comment (`///` or `//!` — but
/// `////...` is an ordinary comment again, per the reference).
fn is_doc_line_comment(text: &str) -> bool {
    (text.starts_with("///") && !text.starts_with("////")) || text.starts_with("//!")
}

/// Records `lint: allow(a, b)` directives from an ordinary line comment.
fn scan_allow(comment: &str, line: usize, allows: &mut Vec<AllowDirective>) {
    if is_doc_line_comment(comment) {
        return;
    }
    let mut rest = comment;
    while let Some(pos) = rest.find("lint: allow(") {
        let tail = &rest[pos + "lint: allow(".len()..];
        let Some(close) = tail.find(')') else { break };
        for rule in tail[..close].split(',') {
            let rule = rule.trim();
            if !rule.is_empty() {
                allows.push(AllowDirective {
                    rule: rule.to_string(),
                    line,
                });
            }
        }
        rest = &tail[close..];
    }
}

/// The longest punctuation sequence starting at `chars[i]`.
fn punct_len(chars: &[char], i: usize) -> usize {
    let c0 = chars[i];
    let c1 = chars.get(i + 1).copied().unwrap_or('\0');
    let c2 = chars.get(i + 2).copied().unwrap_or('\0');
    match (c0, c1, c2) {
        ('<', '<', '=') | ('>', '>', '=') | ('.', '.', '=') | ('.', '.', '.') => 3,
        _ => match (c0, c1) {
            (':', ':')
            | ('-', '>')
            | ('=', '>')
            | ('=', '=')
            | ('!', '=')
            | ('<', '=')
            | ('>', '=')
            | ('&', '&')
            | ('|', '|')
            | ('<', '<')
            | ('>', '>')
            | ('.', '.')
            | ('+', '=')
            | ('-', '=')
            | ('*', '=')
            | ('/', '=')
            | ('%', '=')
            | ('^', '=')
            | ('&', '=')
            | ('|', '=') => 2,
            _ => 1,
        },
    }
}

/// Lexes one source file into tokens + allow directives.
pub fn lex(src: &str) -> Lexed {
    let mut out = Lexed::default();
    let chars: Vec<char> = src.chars().collect();
    let n = chars.len();
    let mut i = 0;
    let mut line = 1;

    // Consumes a `"`-delimited body with escapes, returning (end, text).
    let scan_quoted = |mut j: usize, line: &mut usize| -> (usize, String) {
        let mut text = String::new();
        while j < n {
            match chars[j] {
                '\\' => {
                    text.push(chars[j]);
                    if j + 1 < n {
                        text.push(chars[j + 1]);
                    }
                    j += 2;
                }
                '"' => {
                    j += 1;
                    break;
                }
                '\n' => {
                    *line += 1;
                    text.push('\n');
                    j += 1;
                }
                c => {
                    text.push(c);
                    j += 1;
                }
            }
        }
        (j, text)
    };

    while i < n {
        let c = chars[i];
        match c {
            '\n' => {
                line += 1;
                i += 1;
            }
            _ if c.is_whitespace() => i += 1,
            '/' if i + 1 < n && chars[i + 1] == '/' => {
                let start = i;
                while i < n && chars[i] != '\n' {
                    i += 1;
                }
                let comment: String = chars[start..i].iter().collect();
                scan_allow(&comment, line, &mut out.allows);
            }
            '/' if i + 1 < n && chars[i + 1] == '*' => {
                let mut depth = 1;
                i += 2;
                while i < n && depth > 0 {
                    if chars[i] == '\n' {
                        line += 1;
                        i += 1;
                    } else if chars[i] == '/' && i + 1 < n && chars[i + 1] == '*' {
                        depth += 1;
                        i += 2;
                    } else if chars[i] == '*' && i + 1 < n && chars[i + 1] == '/' {
                        depth -= 1;
                        i += 2;
                    } else {
                        i += 1;
                    }
                }
            }
            '"' => {
                let start_line = line;
                let (j, text) = scan_quoted(i + 1, &mut line);
                i = j;
                out.tokens.push(Token {
                    tok: Tok::Str(text),
                    line: start_line,
                });
            }
            '\'' => {
                // Lifetime (`'a`) vs char literal (`'a'`, `'\n'`).
                if i + 1 < n && is_ident_start(chars[i + 1]) && chars[i + 1] != '\\' {
                    let mut j = i + 2;
                    while j < n && is_ident_continue(chars[j]) {
                        j += 1;
                    }
                    if j < n && chars[j] == '\'' {
                        out.tokens.push(Token {
                            tok: Tok::Char,
                            line,
                        });
                        i = j + 1;
                    } else {
                        let name: String = chars[i + 1..j].iter().collect();
                        out.tokens.push(Token {
                            tok: Tok::Lifetime(name),
                            line,
                        });
                        i = j;
                    }
                } else {
                    let start_line = line;
                    i += 1;
                    while i < n {
                        match chars[i] {
                            '\\' => i += 2,
                            '\'' => {
                                i += 1;
                                break;
                            }
                            '\n' => {
                                line += 1;
                                i += 1;
                            }
                            _ => i += 1,
                        }
                    }
                    out.tokens.push(Token {
                        tok: Tok::Char,
                        line: start_line,
                    });
                }
            }
            _ if c.is_ascii_digit() => {
                let start = i;
                if c == '0' && i + 1 < n && matches!(chars[i + 1], 'x' | 'o' | 'b') {
                    i += 2;
                    while i < n && (chars[i].is_ascii_hexdigit() || chars[i] == '_') {
                        i += 1;
                    }
                } else {
                    while i < n && (chars[i].is_ascii_digit() || chars[i] == '_') {
                        i += 1;
                    }
                    // Fractional part — but never into `..` or `.method()`.
                    if i + 1 < n && chars[i] == '.' && chars[i + 1].is_ascii_digit() {
                        i += 1;
                        while i < n && (chars[i].is_ascii_digit() || chars[i] == '_') {
                            i += 1;
                        }
                    }
                    // Exponent (`1e-9`, `2.5E+3`).
                    if i < n
                        && matches!(chars[i], 'e' | 'E')
                        && (i + 1 < n && chars[i + 1].is_ascii_digit()
                            || i + 2 < n
                                && matches!(chars[i + 1], '+' | '-')
                                && chars[i + 2].is_ascii_digit())
                    {
                        i += 1;
                        if matches!(chars[i], '+' | '-') {
                            i += 1;
                        }
                        while i < n && (chars[i].is_ascii_digit() || chars[i] == '_') {
                            i += 1;
                        }
                    }
                }
                // Type suffix (`u8`, `f64`, `usize`).
                while i < n && is_ident_continue(chars[i]) {
                    i += 1;
                }
                out.tokens.push(Token {
                    tok: Tok::Num(chars[start..i].iter().collect()),
                    line,
                });
            }
            _ if is_ident_start(c) => {
                let start = i;
                while i < n && is_ident_continue(chars[i]) {
                    i += 1;
                }
                let word: String = chars[start..i].iter().collect();
                // Raw identifier: `r#async`.
                if word == "r"
                    && i + 1 < n
                    && chars[i] == '#'
                    && is_ident_start(chars[i + 1])
                    && chars[i + 1] != '"'
                {
                    let mut j = i + 1;
                    while j < n && is_ident_continue(chars[j]) {
                        j += 1;
                    }
                    // `r#"` never reaches here (`"` is not ident-start).
                    out.tokens.push(Token {
                        tok: Tok::Ident(chars[i + 1..j].iter().collect()),
                        line,
                    });
                    i = j;
                    continue;
                }
                // Byte char: `b'x'`.
                if word == "b" && i < n && chars[i] == '\'' {
                    let start_line = line;
                    i += 1;
                    while i < n {
                        match chars[i] {
                            '\\' => i += 2,
                            '\'' => {
                                i += 1;
                                break;
                            }
                            '\n' => {
                                line += 1;
                                i += 1;
                            }
                            _ => i += 1,
                        }
                    }
                    out.tokens.push(Token {
                        tok: Tok::Char,
                        line: start_line,
                    });
                    continue;
                }
                // Raw / byte string prefixes: `r"…"`, `r#"…"#`, `b"…"`,
                // `br##"…"##`.
                if (word == "r" || word == "b" || word == "br" || word == "rb")
                    && i < n
                    && (chars[i] == '"' || chars[i] == '#')
                {
                    let mut hashes = 0;
                    let mut j = i;
                    while j < n && chars[j] == '#' {
                        hashes += 1;
                        j += 1;
                    }
                    if j < n && chars[j] == '"' {
                        let start_line = line;
                        if word.contains('r') {
                            j += 1;
                            let text_start = j;
                            let mut text_end = j;
                            'raw: while j < n {
                                if chars[j] == '\n' {
                                    line += 1;
                                } else if chars[j] == '"' {
                                    let mut k = 0;
                                    while k < hashes && j + 1 + k < n && chars[j + 1 + k] == '#' {
                                        k += 1;
                                    }
                                    if k == hashes {
                                        text_end = j;
                                        j += 1 + hashes;
                                        break 'raw;
                                    }
                                }
                                j += 1;
                            }
                            out.tokens.push(Token {
                                tok: Tok::Str(chars[text_start..text_end].iter().collect()),
                                line: start_line,
                            });
                            i = j;
                            continue;
                        } else if hashes == 0 {
                            let (end, text) = scan_quoted(j + 1, &mut line);
                            out.tokens.push(Token {
                                tok: Tok::Str(text),
                                line: start_line,
                            });
                            i = end;
                            continue;
                        }
                    }
                }
                out.tokens.push(Token {
                    tok: Tok::Ident(word),
                    line,
                });
            }
            _ => {
                let len = punct_len(&chars, i);
                out.tokens.push(Token {
                    tok: Tok::Punct(chars[i..i + len].iter().collect()),
                    line,
                });
                i += len;
            }
        }
    }
    out
}

/// One node of a token tree: a leaf token or a delimited group.
#[derive(Debug, Clone, PartialEq)]
pub enum Tree {
    /// A single non-delimiter token.
    Leaf(Token),
    /// A balanced `()` / `[]` / `{}` group.
    Group(Group),
}

/// A delimited token-tree group.
#[derive(Debug, Clone, PartialEq)]
pub struct Group {
    /// `(`, `[`, or `{`.
    pub delim: char,
    /// Line of the opening delimiter.
    pub open_line: usize,
    /// Line of the closing delimiter.
    pub close_line: usize,
    /// Children, in source order.
    pub trees: Vec<Tree>,
}

/// A construct the parser could not fully structure.
#[derive(Debug, Clone, PartialEq)]
pub struct ParseIssue {
    /// 1-based source line.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

fn close_of(open: char) -> char {
    match open {
        '(' => ')',
        '[' => ']',
        _ => '}',
    }
}

/// Builds balanced token trees; unbalanced delimiters become issues.
pub fn build_trees(tokens: &[Token]) -> (Vec<Tree>, Vec<ParseIssue>) {
    // The root's children live outside the stack: an empty stack means
    // "at top level", so no frame access can fail.
    let mut issues = Vec::new();
    let mut root: Vec<Tree> = Vec::new();
    let mut stack: Vec<(char, usize, Vec<Tree>)> = Vec::new();
    fn dest<'a>(
        root: &'a mut Vec<Tree>,
        stack: &'a mut [(char, usize, Vec<Tree>)],
    ) -> &'a mut Vec<Tree> {
        match stack.last_mut() {
            Some(top) => &mut top.2,
            None => root,
        }
    }
    for t in tokens {
        match t.punct() {
            Some(p @ ("(" | "[" | "{")) => {
                let delim = match p {
                    "(" => '(',
                    "[" => '[',
                    _ => '{',
                };
                stack.push((delim, t.line, Vec::new()));
            }
            Some(p @ (")" | "]" | "}")) => {
                let close = match p {
                    ")" => ')',
                    "]" => ']',
                    _ => '}',
                };
                if stack.last().is_some_and(|top| close_of(top.0) == close) {
                    if let Some((delim, open_line, trees)) = stack.pop() {
                        dest(&mut root, &mut stack).push(Tree::Group(Group {
                            delim,
                            open_line,
                            close_line: t.line,
                            trees,
                        }));
                    }
                } else {
                    issues.push(ParseIssue {
                        line: t.line,
                        message: format!("unbalanced closing delimiter `{p}`"),
                    });
                    dest(&mut root, &mut stack).push(Tree::Leaf(t.clone()));
                }
            }
            _ => dest(&mut root, &mut stack).push(Tree::Leaf(t.clone())),
        }
    }
    while let Some((delim, open_line, trees)) = stack.pop() {
        issues.push(ParseIssue {
            line: open_line,
            message: format!("unclosed delimiter `{delim}`"),
        });
        dest(&mut root, &mut stack).push(Tree::Group(Group {
            delim,
            open_line,
            close_line: open_line,
            trees,
        }));
    }
    (root, issues)
}

/// Flattens one tree back into tokens; group delimiters become puncts.
pub fn flatten_tree(tree: &Tree, out: &mut Vec<Token>) {
    match tree {
        Tree::Leaf(t) => out.push(t.clone()),
        Tree::Group(g) => {
            out.push(Token::punct_tok(&g.delim.to_string(), g.open_line));
            for t in &g.trees {
                flatten_tree(t, out);
            }
            out.push(Token::punct_tok(
                &close_of(g.delim).to_string(),
                g.close_line,
            ));
        }
    }
}

/// Flattens a slice of trees into a [`TokenRun`].
pub fn flatten_run(trees: &[Tree]) -> TokenRun {
    let mut tokens = Vec::new();
    for t in trees {
        flatten_tree(t, &mut tokens);
    }
    TokenRun { tokens }
}

/// A fully parsed file: the flat token stream, allow directives, the
/// AST, and any parse issues.
#[derive(Debug)]
pub struct ParsedFile {
    /// The full lexed token stream (pre-tree).
    pub tokens: Vec<Token>,
    /// `lint: allow(...)` directives, in source order.
    pub allows: Vec<AllowDirective>,
    /// The parsed AST.
    pub ast: File,
    /// Everything the parser had to give up on (empty on the workspace).
    pub issues: Vec<ParseIssue>,
}

/// Lexes and parses one file.
pub fn parse_file(src: &str) -> ParsedFile {
    let lexed = lex(src);
    let (trees, mut issues) = build_trees(&lexed.tokens);
    let mut parser = Parser { issues: Vec::new() };
    let mut cur = Cur {
        trees: &trees,
        pos: 0,
    };
    let ast = parser.parse_top(&mut cur);
    issues.append(&mut parser.issues);
    ParsedFile {
        tokens: lexed.tokens,
        allows: lexed.allows,
        ast,
        issues,
    }
}

/// A cursor over a tree slice.
struct Cur<'a> {
    trees: &'a [Tree],
    pos: usize,
}

impl<'a> Cur<'a> {
    fn peek(&self) -> Option<&'a Tree> {
        self.trees.get(self.pos)
    }

    fn peek_at(&self, n: usize) -> Option<&'a Tree> {
        self.trees.get(self.pos + n)
    }

    fn leaf(&self) -> Option<&'a Token> {
        match self.peek() {
            Some(Tree::Leaf(t)) => Some(t),
            _ => None,
        }
    }

    fn leaf_at(&self, n: usize) -> Option<&'a Token> {
        match self.peek_at(n) {
            Some(Tree::Leaf(t)) => Some(t),
            _ => None,
        }
    }

    fn at_punct(&self, p: &str) -> bool {
        self.leaf().is_some_and(|t| t.is_punct(p))
    }

    fn at_ident(&self, w: &str) -> bool {
        self.leaf().is_some_and(|t| t.is_ident(w))
    }

    fn at_group(&self, delim: char) -> bool {
        matches!(self.peek(), Some(Tree::Group(g)) if g.delim == delim)
    }

    fn bump(&mut self) -> Option<&'a Tree> {
        let t = self.trees.get(self.pos);
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn eat_punct(&mut self, p: &str) -> bool {
        if self.at_punct(p) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn eat_ident(&mut self, w: &str) -> bool {
        if self.at_ident(w) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    /// The line of the next token (or the last seen line at the end).
    fn line(&self) -> usize {
        match self.peek() {
            Some(Tree::Leaf(t)) => t.line,
            Some(Tree::Group(g)) => g.open_line,
            None => match self.trees.last() {
                Some(Tree::Leaf(t)) => t.line,
                Some(Tree::Group(g)) => g.close_line,
                None => 0,
            },
        }
    }

    fn done(&self) -> bool {
        self.pos >= self.trees.len()
    }

    /// Consumes one tree, flattening it into `run`.
    fn bump_into(&mut self, run: &mut TokenRun) {
        if let Some(t) = self.bump() {
            flatten_tree(t, &mut run.tokens);
        }
    }

    /// The group at the cursor, consumed, if it has delimiter `delim`.
    fn eat_group(&mut self, delim: char) -> Option<&'a Group> {
        match self.peek() {
            Some(Tree::Group(g)) if g.delim == delim => {
                self.pos += 1;
                Some(g)
            }
            _ => None,
        }
    }
}

/// How a balanced-angle capture ended.
enum AngleEnd {
    /// Closed normally.
    Closed,
    /// Closed via a `>=` / `>>=` token whose trailing `=` belongs to the
    /// surrounding context (e.g. `let x: Vec<u8>= v`).
    ClosedThenEq,
    /// Ran out of input.
    Eof,
}

/// The recursive-descent parser. Methods record [`ParseIssue`]s instead
/// of failing: every path makes progress and returns *something*.
struct Parser {
    issues: Vec<ParseIssue>,
}

impl Parser {
    fn issue(&mut self, line: usize, message: impl Into<String>) {
        self.issues.push(ParseIssue {
            line,
            message: message.into(),
        });
    }

    fn parse_top(&mut self, c: &mut Cur) -> File {
        let mut file = File::default();
        // Inner attributes: `#![...]`.
        while c.at_punct("#")
            && c.leaf_at(1).is_some_and(|t| t.is_punct("!"))
            && matches!(c.peek_at(2), Some(Tree::Group(g)) if g.delim == '[')
        {
            let line = c.line();
            c.bump();
            c.bump();
            let Some(g) = c.eat_group('[') else { break };
            file.attrs.push(Attr {
                tokens: flatten_run(&g.trees),
                line,
            });
        }
        file.items = self.parse_items(c);
        file
    }

    fn parse_items(&mut self, c: &mut Cur) -> Vec<Item> {
        let mut items = Vec::new();
        while !c.done() {
            items.push(self.parse_item(c));
        }
        items
    }

    /// Outer attributes: `#[...]`*.
    fn parse_attrs(&mut self, c: &mut Cur) -> Vec<Attr> {
        let mut attrs = Vec::new();
        while c.at_punct("#") && matches!(c.peek_at(1), Some(Tree::Group(g)) if g.delim == '[') {
            let line = c.line();
            c.bump();
            let Some(g) = c.eat_group('[') else { break };
            attrs.push(Attr {
                tokens: flatten_run(&g.trees),
                line,
            });
        }
        attrs
    }

    fn parse_item(&mut self, c: &mut Cur) -> Item {
        let attrs = self.parse_attrs(c);
        let line = c.line();
        // Visibility: `pub`, `pub(crate)`, `pub(in ...)`.
        let mut vis = TokenRun::default();
        if c.at_ident("pub") {
            c.bump_into(&mut vis);
            if c.at_group('(') {
                c.bump_into(&mut vis);
            }
        }
        // Qualifiers before `fn` — only treated as such when an `fn`
        // actually follows (`const` alone starts a const item).
        let mut quals = TokenRun::default();
        if self.fn_follows_quals(c) {
            while !c.at_ident("fn") {
                c.bump_into(&mut quals);
            }
        }
        let kind = if c.eat_ident("fn") {
            crate::ast::ItemKind::Fn(self.parse_fn(c, quals))
        } else {
            // `unsafe impl`, `unsafe trait` — any quals fold into the
            // header run.
            self.parse_keyword_item(c, quals, line)
        };
        Item {
            attrs,
            vis,
            kind,
            line,
        }
    }

    /// True when the tokens at the cursor are fn qualifiers followed by
    /// `fn` (`const unsafe extern "C" fn`).
    fn fn_follows_quals(&self, c: &Cur) -> bool {
        let mut n = 0;
        loop {
            match c.leaf_at(n) {
                Some(t) if t.is_ident("fn") => return true,
                Some(t)
                    if t.ident()
                        .is_some_and(|w| matches!(w, "const" | "unsafe" | "async" | "extern")) =>
                {
                    n += 1;
                }
                Some(t) if t.str_text().is_some() => n += 1,
                _ => return false,
            }
            if n > 4 {
                return false;
            }
        }
    }

    /// Items dispatched on their leading keyword (everything but `fn`,
    /// whose qualifiers are handled by the caller).
    fn parse_keyword_item(
        &mut self,
        c: &mut Cur,
        lead: TokenRun,
        line: usize,
    ) -> crate::ast::ItemKind {
        use crate::ast::ItemKind;
        if c.at_ident("mod") {
            c.bump();
            let name = self.expect_name(c);
            if c.eat_punct(";") {
                return ItemKind::Mod(ItemMod { name, items: None });
            }
            if let Some(g) = c.eat_group('{') {
                let mut inner = Cur {
                    trees: &g.trees,
                    pos: 0,
                };
                return ItemKind::Mod(ItemMod {
                    name,
                    items: Some(self.parse_items(&mut inner)),
                });
            }
            self.issue(line, "mod without body or semicolon");
            return ItemKind::Mod(ItemMod { name, items: None });
        }
        if c.at_ident("impl") || c.at_ident("trait") {
            let is_impl = c.at_ident("impl");
            c.bump();
            let mut header = lead;
            while !c.done() && !c.at_group('{') {
                c.bump_into(&mut header);
            }
            let items = match c.eat_group('{') {
                Some(g) => {
                    let mut inner = Cur {
                        trees: &g.trees,
                        pos: 0,
                    };
                    self.parse_items(&mut inner)
                }
                None => {
                    self.issue(line, "impl/trait without body");
                    Vec::new()
                }
            };
            return if is_impl {
                ItemKind::Impl(ItemImpl { header, items })
            } else {
                ItemKind::Trait(ItemTrait { header, items })
            };
        }
        if c.at_ident("struct")
            || c.at_ident("enum")
            || (c.at_ident("union") && c.leaf_at(1).is_some_and(|t| t.ident().is_some()))
        {
            // The `at_ident` checks above guarantee the leaf; the
            // fallback is dead but keeps the parser panic-free.
            let keyword = c
                .leaf()
                .and_then(Token::ident)
                .unwrap_or_default()
                .to_string();
            c.bump();
            let name = self.expect_name(c);
            let mut header = TokenRun::default();
            let mut body = TokenRun::default();
            let mut braced = false;
            loop {
                if c.done() {
                    break;
                }
                if c.eat_punct(";") {
                    break; // unit struct
                }
                if c.at_group('{') {
                    c.bump_into(&mut body);
                    braced = true;
                    break;
                }
                if c.at_group('(') {
                    // Tuple struct: fields, then an optional where
                    // clause, then `;`.
                    c.bump_into(&mut body);
                    while !c.done() && !c.at_punct(";") {
                        c.bump_into(&mut body);
                    }
                    c.eat_punct(";");
                    break;
                }
                c.bump_into(&mut header);
            }
            return ItemKind::Adt(ItemAdt {
                keyword,
                name,
                header,
                body,
                braced,
            });
        }
        if c.at_ident("use") {
            let mut run = TokenRun::default();
            while !c.done() && !c.at_punct(";") {
                c.bump_into(&mut run);
            }
            c.eat_punct(";");
            return ItemKind::Use(run);
        }
        if c.at_ident("const") || c.at_ident("static") {
            let mut keyword = TokenRun::default();
            c.bump_into(&mut keyword);
            if c.at_ident("mut") {
                c.bump_into(&mut keyword);
            }
            let name = self.expect_name(c);
            let mut ty = TokenRun::default();
            let value = if c.eat_punct(":") {
                if self.capture_type_until_eq(c, &mut ty) {
                    let value = self.parse_expr(c, false);
                    if !c.eat_punct(";") {
                        self.issue(line, "const item missing `;`");
                    }
                    Some(value)
                } else {
                    c.eat_punct(";");
                    None
                }
            } else {
                self.issue(line, "const item missing `:`");
                None
            };
            return ItemKind::Const(ItemConst {
                keyword,
                name,
                ty,
                value,
            });
        }
        if c.at_ident("type") {
            let mut run = TokenRun::default();
            while !c.done() && !c.at_punct(";") {
                c.bump_into(&mut run);
            }
            c.eat_punct(";");
            return ItemKind::TypeAlias(run);
        }
        if c.at_ident("extern") {
            // `extern crate ...;` or `extern "C" { ... }` — opaque.
            let mut run = lead;
            while !c.done() && !c.at_punct(";") {
                let was_brace = c.at_group('{');
                c.bump_into(&mut run);
                if was_brace {
                    return ItemKind::Verbatim(run);
                }
            }
            c.eat_punct(";");
            return ItemKind::Verbatim(run);
        }
        // Item-position macro: `path::to::mac! { ... }` (incl.
        // `macro_rules! name { ... }`).
        if c.leaf().is_some_and(|t| t.ident().is_some()) {
            let mut n = 1;
            while c.leaf_at(n).is_some_and(|t| t.is_punct("::"))
                && c.leaf_at(n + 1).is_some_and(|t| t.ident().is_some())
            {
                n += 2;
            }
            if c.leaf_at(n).is_some_and(|t| t.is_punct("!")) {
                let mut path = Vec::new();
                while !c.at_punct("!") {
                    if let Some(t) = c.leaf() {
                        if let Some(w) = t.ident() {
                            path.push(w.to_string());
                        }
                    }
                    c.bump();
                }
                c.bump(); // `!`
                let mut body = TokenRun::default();
                // `macro_rules! name` carries a name before the body.
                if c.leaf().is_some_and(|t| t.ident().is_some()) {
                    c.bump_into(&mut body);
                }
                if c.peek().is_some() {
                    c.bump_into(&mut body);
                }
                c.eat_punct(";");
                return ItemKind::Macro(MacroCall { path, body, line });
            }
        }
        // Fallback: consume to the next `;` or brace group, opaquely.
        let mut run = lead;
        self.issue(line, "unrecognised item; kept as opaque tokens");
        while !c.done() {
            if c.eat_punct(";") {
                break;
            }
            let was_brace = c.at_group('{');
            c.bump_into(&mut run);
            if was_brace {
                break;
            }
        }
        crate::ast::ItemKind::Verbatim(run)
    }

    fn expect_name(&mut self, c: &mut Cur) -> String {
        if let Some(t) = c.leaf() {
            if let Some(w) = t.ident() {
                let name = w.to_string();
                c.bump();
                return name;
            }
        }
        self.issue(c.line(), "expected a name");
        String::new()
    }

    fn parse_fn(&mut self, c: &mut Cur, quals: TokenRun) -> ItemFn {
        let name = self.expect_name(c);
        let mut generics = TokenRun::default();
        if c.leaf()
            .is_some_and(|t| t.punct().is_some_and(|p| p.starts_with('<')))
        {
            self.capture_angles(c, &mut generics);
        }
        let mut params = TokenRun::default();
        if c.at_group('(') {
            c.bump_into(&mut params);
        } else {
            self.issue(c.line(), "fn without parameter list");
        }
        let mut ret = TokenRun::default();
        if c.at_punct("->") {
            c.bump_into(&mut ret);
            while !c.done() && !c.at_group('{') && !c.at_ident("where") && !c.at_punct(";") {
                if c.leaf()
                    .is_some_and(|t| t.punct().is_some_and(|p| p.starts_with('<')))
                {
                    self.capture_angles(c, &mut ret);
                } else {
                    c.bump_into(&mut ret);
                }
            }
        }
        let mut where_clause = TokenRun::default();
        if c.at_ident("where") {
            while !c.done() && !c.at_group('{') && !c.at_punct(";") {
                c.bump_into(&mut where_clause);
            }
        }
        let body = match c.eat_group('{') {
            Some(g) => Some(self.parse_block(g)),
            None => {
                c.eat_punct(";");
                None
            }
        };
        ItemFn {
            quals,
            name,
            generics,
            params,
            ret,
            where_clause,
            body,
        }
    }

    /// Captures a balanced `<...>` run (generics, turbofish) into `run`,
    /// splitting `>>`, `>=`, `>>=` as needed.
    fn capture_angles(&mut self, c: &mut Cur, run: &mut TokenRun) -> AngleEnd {
        let mut depth = 0i32;
        loop {
            let Some(tree) = c.peek() else {
                return AngleEnd::Eof;
            };
            match tree {
                Tree::Leaf(t) => {
                    let (delta, then_eq) = match t.punct() {
                        Some("<") => (1, false),
                        Some("<<") => (2, false),
                        Some(">") => (-1, false),
                        Some(">>") => (-2, false),
                        Some(">=") => (-1, true),
                        Some(">>=") => (-2, true),
                        _ => (0, false),
                    };
                    if then_eq {
                        // Emit the closing `>`s; hand the `=` back.
                        let count = (-delta) as usize;
                        for _ in 0..count {
                            run.tokens.push(Token::punct_tok(">", t.line));
                        }
                        c.bump();
                        depth += delta;
                        if depth <= 0 {
                            return AngleEnd::ClosedThenEq;
                        }
                        // `=` deep inside generics (const default) —
                        // keep it in the run.
                        run.tokens.push(Token::punct_tok("=", t.line));
                        continue;
                    }
                    depth += delta;
                    c.bump_into(run);
                    if delta < 0 && depth <= 0 {
                        return AngleEnd::Closed;
                    }
                }
                Tree::Group(_) => c.bump_into(run),
            }
        }
    }

    /// Captures a type after `const NAME:` until `=` (returns `true`) or
    /// `;` / end (returns `false`). `Vec<u8>=` splits correctly.
    fn capture_type_until_eq(&mut self, c: &mut Cur, ty: &mut TokenRun) -> bool {
        loop {
            let Some(tree) = c.peek() else { return false };
            match tree {
                Tree::Leaf(t) => match t.punct() {
                    Some("=") => {
                        c.bump();
                        return true;
                    }
                    Some(";") => return false,
                    Some("<") | Some("<<") => {
                        if matches!(self.capture_angles(c, ty), AngleEnd::ClosedThenEq) {
                            return true;
                        }
                    }
                    _ => c.bump_into(ty),
                },
                Tree::Group(_) => c.bump_into(ty),
            }
        }
    }

    fn parse_block(&mut self, g: &Group) -> Block {
        let mut c = Cur {
            trees: &g.trees,
            pos: 0,
        };
        let mut stmts = Vec::new();
        while !c.done() {
            let attrs = self.parse_attrs(&mut c);
            if c.eat_punct(";") {
                continue;
            }
            if c.done() {
                break;
            }
            if c.at_ident("let") {
                stmts.push(Stmt::Let(self.parse_let(&mut c, attrs)));
                continue;
            }
            if self.at_item_start(&c) {
                let mut item = self.parse_item(&mut c);
                let mut item_attrs = attrs;
                item_attrs.append(&mut item.attrs);
                item.attrs = item_attrs;
                stmts.push(Stmt::Item(item));
                continue;
            }
            let expr = self.parse_expr(&mut c, false);
            let semi = c.eat_punct(";");
            stmts.push(Stmt::Expr(StmtExpr { attrs, expr, semi }));
        }
        Block {
            stmts,
            line: g.open_line,
        }
    }

    /// True when the cursor starts a (block-level) item, not an expr.
    fn at_item_start(&self, c: &Cur) -> bool {
        let Some(t) = c.leaf() else { return false };
        let Some(w) = t.ident() else { return false };
        match w {
            "fn" | "struct" | "enum" | "trait" | "impl" | "mod" | "use" | "static" => true,
            "pub" => true,
            "type" => c.leaf_at(1).is_some_and(|t| t.ident().is_some()),
            "const" => {
                // `const fn` / `const NAME:` are items; `const` is not
                // an expression starter otherwise.
                !c.leaf_at(1).is_some_and(|t| t.is_punct("{"))
            }
            "unsafe" | "async" | "extern" => self.fn_follows_quals(c),
            "union" => {
                c.leaf_at(1).is_some_and(|t| t.ident().is_some())
                    && matches!(c.peek_at(2), Some(Tree::Group(g)) if g.delim == '{')
            }
            _ => false,
        }
    }

    fn parse_let(&mut self, c: &mut Cur, attrs: Vec<Attr>) -> StmtLet {
        let line = c.line();
        c.bump(); // `let`
        let mut pat = TokenRun::default();
        while !c.done() && !c.at_punct(":") && !c.at_punct("=") && !c.at_punct(";") {
            c.bump_into(&mut pat);
        }
        let mut ty = TokenRun::default();
        let at_init = if c.eat_punct(":") {
            self.capture_type_until_eq(c, &mut ty)
        } else {
            c.eat_punct("=")
        };
        let init = if at_init {
            Some(self.parse_expr(c, false))
        } else {
            None
        };
        let else_block = if c.at_ident("else") {
            c.bump();
            match c.eat_group('{') {
                Some(g) => Some(self.parse_block(g)),
                None => {
                    self.issue(line, "let-else without block");
                    None
                }
            }
        } else {
            None
        };
        if !c.eat_punct(";") && !c.done() {
            self.issue(line, "let statement missing `;`");
        }
        StmtLet {
            attrs,
            pat,
            ty,
            init,
            else_block,
            line,
        }
    }

    /// Binding powers for infix operators: `(left, right)`.
    fn infix_bp(op: &str) -> Option<(u8, u8)> {
        Some(match op {
            "=" | "+=" | "-=" | "*=" | "/=" | "%=" | "^=" | "&=" | "|=" | "<<=" | ">>=" => (2, 1),
            ".." | "..=" => (5, 6),
            "||" => (7, 8),
            "&&" => (9, 10),
            "==" | "!=" | "<" | ">" | "<=" | ">=" => (11, 12),
            "|" => (13, 14),
            "^" => (15, 16),
            "&" => (17, 18),
            "<<" | ">>" => (19, 20),
            "+" | "-" => (21, 22),
            "*" | "/" | "%" => (23, 24),
            _ => return None,
        })
    }

    /// True when the cursor could start an expression (used for optional
    /// trailing operands: `return`, `break`, open ranges).
    fn can_start_expr(&self, c: &Cur, no_struct: bool) -> bool {
        match c.peek() {
            None => false,
            Some(Tree::Group(g)) => !(no_struct && g.delim == '{'),
            Some(Tree::Leaf(t)) => match &t.tok {
                Tok::Ident(w) => w != "else" && w != "in" && w != "where",
                Tok::Num(_) | Tok::Str(_) | Tok::Char | Tok::Lifetime(_) => true,
                Tok::Punct(p) => matches!(
                    p.as_str(),
                    "-" | "!" | "*" | "&" | "&&" | "|" | "||" | ".." | "..=" | "<" | "#"
                ),
            },
        }
    }

    fn parse_expr(&mut self, c: &mut Cur, no_struct: bool) -> Expr {
        self.parse_bin(c, 0, no_struct)
    }

    fn parse_bin(&mut self, c: &mut Cur, min_bp: u8, no_struct: bool) -> Expr {
        // Prefix ranges: `..n`, `..=n`, bare `..`.
        let mut lhs = if c.at_punct("..") || c.at_punct("..=") {
            let line = c.line();
            // `at_punct` above guarantees the leaf; the fallback is dead
            // but keeps the parser panic-free.
            let op = c.leaf().and_then(Token::punct).unwrap_or("..").to_string();
            c.bump();
            let rhs = if self.can_start_expr(c, no_struct) {
                Some(Box::new(self.parse_bin(c, 6, no_struct)))
            } else {
                None
            };
            Expr::Binary {
                op,
                lhs: None,
                rhs,
                line,
            }
        } else {
            self.parse_unary(c, no_struct)
        };
        while let Some(t) = c.leaf() {
            let Some(op) = t.punct() else { break };
            let Some((lbp, rbp)) = Self::infix_bp(op) else {
                break;
            };
            if lbp < min_bp {
                break;
            }
            let line = t.line;
            let op = op.to_string();
            c.bump();
            let rhs = if op == ".." || op == "..=" {
                if self.can_start_expr(c, no_struct) {
                    Some(Box::new(self.parse_bin(c, rbp, no_struct)))
                } else {
                    None
                }
            } else {
                Some(Box::new(self.parse_bin(c, rbp, no_struct)))
            };
            lhs = Expr::Binary {
                op,
                lhs: Some(Box::new(lhs)),
                rhs,
                line,
            };
        }
        lhs
    }

    fn parse_unary(&mut self, c: &mut Cur, no_struct: bool) -> Expr {
        if let Some(t) = c.leaf() {
            let line = t.line;
            match t.punct() {
                Some(op @ ("-" | "!" | "*")) => {
                    let op = op.to_string();
                    c.bump();
                    return Expr::Unary {
                        op,
                        expr: Box::new(self.parse_unary(c, no_struct)),
                        line,
                    };
                }
                Some("&") => {
                    c.bump();
                    let op = if c.at_ident("mut") {
                        c.bump();
                        "&mut".to_string()
                    } else {
                        "&".to_string()
                    };
                    return Expr::Unary {
                        op,
                        expr: Box::new(self.parse_unary(c, no_struct)),
                        line,
                    };
                }
                Some("&&") => {
                    c.bump();
                    let inner = if c.eat_ident("mut") {
                        Expr::Unary {
                            op: "&mut".into(),
                            expr: Box::new(self.parse_unary(c, no_struct)),
                            line,
                        }
                    } else {
                        Expr::Unary {
                            op: "&".into(),
                            expr: Box::new(self.parse_unary(c, no_struct)),
                            line,
                        }
                    };
                    return Expr::Unary {
                        op: "&".into(),
                        expr: Box::new(inner),
                        line,
                    };
                }
                _ => {}
            }
        }
        let primary = self.parse_primary(c, no_struct);
        self.parse_postfix(c, primary, no_struct)
    }

    fn parse_postfix(&mut self, c: &mut Cur, mut expr: Expr, _no_struct: bool) -> Expr {
        loop {
            if c.at_punct(".") {
                let line = c.leaf().map(|t| t.line).unwrap_or(0);
                c.bump();
                match c.leaf().map(|t| (t.tok.clone(), t.line)) {
                    Some((Tok::Ident(name), nline)) => {
                        c.bump();
                        let mut turbofish = TokenRun::default();
                        if c.at_punct("::") {
                            c.bump();
                            self.capture_angles(c, &mut turbofish);
                        }
                        if let Some(g) = c.eat_group('(') {
                            expr = Expr::MethodCall {
                                recv: Box::new(expr),
                                name,
                                turbofish,
                                args: self.parse_comma_exprs(g),
                                line: nline,
                            };
                        } else {
                            expr = Expr::Field {
                                base: Box::new(expr),
                                name,
                                line: nline,
                            };
                        }
                    }
                    Some((Tok::Num(text), nline)) => {
                        c.bump();
                        expr = Expr::Field {
                            base: Box::new(expr),
                            name: text,
                            line: nline,
                        };
                    }
                    _ => {
                        self.issue(line, "dangling `.`");
                        return expr;
                    }
                }
                continue;
            }
            if let Some(g) = c.eat_group('(') {
                expr = Expr::Call {
                    callee: Box::new(expr),
                    args: self.parse_comma_exprs(g),
                    line: g.open_line,
                };
                continue;
            }
            if let Some(g) = c.eat_group('[') {
                let mut inner = Cur {
                    trees: &g.trees,
                    pos: 0,
                };
                let idx = self.parse_expr(&mut inner, false);
                expr = Expr::Index {
                    base: Box::new(expr),
                    idx: Box::new(idx),
                    line: g.open_line,
                };
                continue;
            }
            if c.at_punct("?") {
                c.bump();
                expr = Expr::Try(Box::new(expr));
                continue;
            }
            if c.at_ident("as") {
                let line = c.line();
                c.bump();
                let mut ty = TokenRun::default();
                self.capture_cast_type(c, &mut ty);
                if ty.is_empty() {
                    self.issue(line, "cast without a type");
                }
                expr = Expr::Cast {
                    expr: Box::new(expr),
                    ty,
                    line,
                };
                continue;
            }
            break;
        }
        expr
    }

    /// Captures the type after `as`: pointers/references, then a path
    /// with generic arguments.
    fn capture_cast_type(&mut self, c: &mut Cur, ty: &mut TokenRun) {
        loop {
            if c.at_punct("*")
                || c.at_punct("&")
                || c.at_ident("const")
                || c.at_ident("mut")
                || c.at_ident("dyn")
            {
                c.bump_into(ty);
                continue;
            }
            break;
        }
        // Path: ident (:: ident | <...>)*.
        if c.leaf().is_some_and(|t| t.ident().is_some()) {
            c.bump_into(ty);
            loop {
                if c.at_punct("::") && c.leaf_at(1).is_some_and(|t| t.ident().is_some()) {
                    c.bump_into(ty);
                    c.bump_into(ty);
                    continue;
                }
                if c.leaf()
                    .is_some_and(|t| t.punct().is_some_and(|p| p.starts_with('<')))
                {
                    self.capture_angles(c, ty);
                    continue;
                }
                break;
            }
        }
    }

    fn parse_comma_exprs(&mut self, g: &Group) -> Vec<Expr> {
        let mut c = Cur {
            trees: &g.trees,
            pos: 0,
        };
        let mut out = Vec::new();
        while !c.done() {
            out.push(self.parse_expr(&mut c, false));
            if !c.eat_punct(",") && !c.done() {
                self.issue(c.line(), "expected `,` between expressions");
                // Make progress.
                c.bump();
            }
        }
        out
    }

    fn parse_primary(&mut self, c: &mut Cur, no_struct: bool) -> Expr {
        let line = c.line();
        // Literals.
        if let Some(t) = c.leaf() {
            match &t.tok {
                Tok::Num(text) => {
                    let lit = Lit {
                        kind: LitKind::Num,
                        text: text.clone(),
                        line: t.line,
                    };
                    c.bump();
                    return Expr::Lit(lit);
                }
                Tok::Str(text) => {
                    let lit = Lit {
                        kind: LitKind::Str,
                        text: text.clone(),
                        line: t.line,
                    };
                    c.bump();
                    return Expr::Lit(lit);
                }
                Tok::Char => {
                    let lit = Lit {
                        kind: LitKind::Char,
                        text: String::new(),
                        line: t.line,
                    };
                    c.bump();
                    return Expr::Lit(lit);
                }
                Tok::Lifetime(_) => {
                    // Loop label: `'outer: while ...`.
                    if c.leaf_at(1).is_some_and(|t| t.is_punct(":"))
                        && c.leaf_at(2).is_some_and(|t| {
                            t.ident()
                                .is_some_and(|w| matches!(w, "loop" | "while" | "for"))
                        })
                    {
                        let mut label = TokenRun::default();
                        c.bump_into(&mut label);
                        c.bump_into(&mut label);
                        return self.parse_loop(c, label, no_struct);
                    }
                    let mut run = TokenRun::default();
                    c.bump_into(&mut run);
                    self.issue(line, "lifetime in expression position");
                    return Expr::Opaque(run);
                }
                _ => {}
            }
        }
        // Groups.
        if let Some(g) = c.eat_group('(') {
            let mut inner = Cur {
                trees: &g.trees,
                pos: 0,
            };
            let mut elems = Vec::new();
            let mut trailing_comma = false;
            while !inner.done() {
                elems.push(self.parse_expr(&mut inner, false));
                trailing_comma = inner.eat_punct(",");
                if !trailing_comma && !inner.done() {
                    self.issue(inner.line(), "expected `,` in parenthesised list");
                    inner.bump();
                }
            }
            let is_tuple = elems.len() != 1 || trailing_comma;
            return Expr::Tuple {
                elems,
                is_tuple,
                line: g.open_line,
            };
        }
        if let Some(g) = c.eat_group('[') {
            let mut inner = Cur {
                trees: &g.trees,
                pos: 0,
            };
            let mut elems = Vec::new();
            let mut repeat = false;
            while !inner.done() {
                elems.push(self.parse_expr(&mut inner, false));
                if inner.eat_punct(";") {
                    repeat = true;
                    continue;
                }
                if !inner.eat_punct(",") && !inner.done() {
                    self.issue(inner.line(), "expected `,` in array literal");
                    inner.bump();
                }
            }
            return Expr::Array {
                elems,
                repeat,
                line: g.open_line,
            };
        }
        if let Some(g) = c.eat_group('{') {
            return Expr::Block {
                quals: TokenRun::default(),
                block: self.parse_block(g),
            };
        }
        // Keyword expressions.
        if let Some(t) = c.leaf() {
            if let Some(w) = t.ident() {
                match w {
                    "true" | "false" => {
                        let lit = Lit {
                            kind: LitKind::Bool,
                            text: w.to_string(),
                            line: t.line,
                        };
                        c.bump();
                        return Expr::Lit(lit);
                    }
                    "if" => return self.parse_if(c),
                    "match" => return self.parse_match(c),
                    "while" | "for" | "loop" => {
                        return self.parse_loop(c, TokenRun::default(), no_struct)
                    }
                    "unsafe" => {
                        let mut quals = TokenRun::default();
                        c.bump_into(&mut quals);
                        if let Some(g) = c.eat_group('{') {
                            return Expr::Block {
                                quals,
                                block: self.parse_block(g),
                            };
                        }
                        self.issue(line, "unsafe without block");
                        return Expr::Opaque(quals);
                    }
                    "return" => {
                        c.bump();
                        let value = if self.can_start_expr(c, no_struct) {
                            Some(Box::new(self.parse_expr(c, no_struct)))
                        } else {
                            None
                        };
                        return Expr::Return(value, line);
                    }
                    "break" => {
                        c.bump();
                        let mut label = TokenRun::default();
                        if matches!(c.leaf().map(|t| &t.tok), Some(Tok::Lifetime(_))) {
                            c.bump_into(&mut label);
                        }
                        let value = if self.can_start_expr(c, true) {
                            Some(Box::new(self.parse_expr(c, no_struct)))
                        } else {
                            None
                        };
                        return Expr::Break(label, value, line);
                    }
                    "continue" => {
                        c.bump();
                        let mut label = TokenRun::default();
                        if matches!(c.leaf().map(|t| &t.tok), Some(Tok::Lifetime(_))) {
                            c.bump_into(&mut label);
                        }
                        return Expr::Continue(label, line);
                    }
                    "move" => {
                        let mut quals = TokenRun::default();
                        c.bump_into(&mut quals);
                        return self.parse_closure(c, quals, no_struct);
                    }
                    _ => return self.parse_path_expr(c, no_struct),
                }
            }
        }
        // Closures without `move`.
        if c.at_punct("|") || c.at_punct("||") {
            return self.parse_closure(c, TokenRun::default(), no_struct);
        }
        // Qualified path: `<T as Trait>::f`.
        if c.leaf()
            .is_some_and(|t| t.punct().is_some_and(|p| p.starts_with('<')))
        {
            let mut turbofish = TokenRun::default();
            self.capture_angles(c, &mut turbofish);
            let mut segments = Vec::new();
            while c.at_punct("::") {
                c.bump();
                if let Some(t) = c.leaf() {
                    if let Some(w) = t.ident() {
                        segments.push(PathSeg {
                            name: w.to_string(),
                            line: t.line,
                        });
                        c.bump();
                        continue;
                    }
                    if t.punct().is_some_and(|p| p.starts_with('<')) {
                        self.capture_angles(c, &mut turbofish);
                        continue;
                    }
                }
                break;
            }
            return Expr::Path(ExprPath {
                segments,
                turbofish,
                line,
            });
        }
        // Stray attribute in expression position — keep its tokens.
        if c.at_punct("#") {
            let mut run = TokenRun::default();
            c.bump_into(&mut run);
            if c.at_group('[') {
                c.bump_into(&mut run);
            }
            self.issue(line, "attribute in expression position");
            return Expr::Opaque(run);
        }
        // Anything else: consume one tree opaquely so we make progress.
        let mut run = TokenRun::default();
        c.bump_into(&mut run);
        self.issue(line, "unexpected token in expression");
        Expr::Opaque(run)
    }

    fn parse_closure(&mut self, c: &mut Cur, quals: TokenRun, no_struct: bool) -> Expr {
        let line = c.line();
        let mut params = TokenRun::default();
        if c.eat_punct("||") {
            // Empty parameter list.
        } else if c.eat_punct("|") {
            while !c.done() && !c.at_punct("|") {
                c.bump_into(&mut params);
            }
            if !c.eat_punct("|") {
                self.issue(line, "unterminated closure parameter list");
            }
        }
        let mut ret = TokenRun::default();
        if c.at_punct("->") {
            c.bump_into(&mut ret);
            while !c.done() && !c.at_group('{') {
                c.bump_into(&mut ret);
            }
        }
        let body = self.parse_expr(c, no_struct);
        Expr::Closure(ExprClosure {
            quals,
            params,
            ret,
            body: Box::new(body),
            line,
        })
    }

    fn parse_if(&mut self, c: &mut Cur) -> Expr {
        let line = c.line();
        c.bump(); // `if`
        let mut let_pat = TokenRun::default();
        if c.eat_ident("let") {
            while !c.done() && !c.at_punct("=") {
                c.bump_into(&mut let_pat);
            }
            c.eat_punct("=");
        }
        let cond = self.parse_expr(c, true);
        let then_block = match c.eat_group('{') {
            Some(g) => self.parse_block(g),
            None => {
                self.issue(line, "if without then-block");
                Block {
                    stmts: Vec::new(),
                    line,
                }
            }
        };
        let else_branch = if c.eat_ident("else") {
            if c.at_ident("if") {
                Some(Box::new(self.parse_if(c)))
            } else {
                match c.eat_group('{') {
                    Some(g) => Some(Box::new(Expr::Block {
                        quals: TokenRun::default(),
                        block: self.parse_block(g),
                    })),
                    None => {
                        self.issue(line, "else without block");
                        None
                    }
                }
            }
        } else {
            None
        };
        Expr::If(ExprIf {
            let_pat,
            cond: Box::new(cond),
            then_block,
            else_branch,
            line,
        })
    }

    fn parse_match(&mut self, c: &mut Cur) -> Expr {
        let line = c.line();
        c.bump(); // `match`
        let scrutinee = self.parse_expr(c, true);
        let mut arms = Vec::new();
        match c.eat_group('{') {
            Some(g) => {
                let mut inner = Cur {
                    trees: &g.trees,
                    pos: 0,
                };
                while !inner.done() {
                    let attrs = self.parse_attrs(&mut inner);
                    let arm_line = inner.line();
                    let mut pat = TokenRun::default();
                    while !inner.done() && !inner.at_punct("=>") && !inner.at_ident("if") {
                        inner.bump_into(&mut pat);
                    }
                    let guard = if inner.eat_ident("if") {
                        Some(self.parse_expr(&mut inner, false))
                    } else {
                        None
                    };
                    if !inner.eat_punct("=>") {
                        self.issue(arm_line, "match arm without `=>`");
                        break;
                    }
                    let body = self.parse_expr(&mut inner, false);
                    inner.eat_punct(",");
                    arms.push(Arm {
                        attrs,
                        pat,
                        guard,
                        body,
                        line: arm_line,
                    });
                }
            }
            None => self.issue(line, "match without arm block"),
        }
        Expr::Match(ExprMatch {
            scrutinee: Box::new(scrutinee),
            arms,
            line,
        })
    }

    fn parse_loop(&mut self, c: &mut Cur, label: TokenRun, _no_struct: bool) -> Expr {
        let line = c.line();
        let keyword = c
            .leaf()
            .and_then(|t| t.ident())
            .unwrap_or("loop")
            .to_string();
        c.bump();
        let mut pat = TokenRun::default();
        let mut head = None;
        match keyword.as_str() {
            "for" => {
                while !c.done() && !c.at_ident("in") {
                    c.bump_into(&mut pat);
                }
                c.eat_ident("in");
                head = Some(Box::new(self.parse_expr(c, true)));
            }
            "while" => {
                if c.eat_ident("let") {
                    while !c.done() && !c.at_punct("=") {
                        c.bump_into(&mut pat);
                    }
                    c.eat_punct("=");
                }
                head = Some(Box::new(self.parse_expr(c, true)));
            }
            _ => {}
        }
        let body = match c.eat_group('{') {
            Some(g) => self.parse_block(g),
            None => {
                self.issue(line, "loop without body");
                Block {
                    stmts: Vec::new(),
                    line,
                }
            }
        };
        Expr::Loop(ExprLoop {
            keyword,
            label,
            pat,
            head,
            body,
            line,
        })
    }

    fn parse_path_expr(&mut self, c: &mut Cur, no_struct: bool) -> Expr {
        let line = c.line();
        let mut segments = Vec::new();
        let mut turbofish = TokenRun::default();
        if let Some(t) = c.leaf() {
            if let Some(w) = t.ident() {
                segments.push(PathSeg {
                    name: w.to_string(),
                    line: t.line,
                });
                c.bump();
            }
        }
        loop {
            if c.at_punct("::") {
                if let Some(next) = c.leaf_at(1) {
                    if let Some(w) = next.ident() {
                        let nline = next.line;
                        c.bump();
                        segments.push(PathSeg {
                            name: w.to_string(),
                            line: nline,
                        });
                        c.bump();
                        continue;
                    }
                    if next.punct().is_some_and(|p| p.starts_with('<')) {
                        c.bump();
                        self.capture_angles(c, &mut turbofish);
                        continue;
                    }
                }
            }
            break;
        }
        // Macro invocation.
        if c.at_punct("!") && matches!(c.peek_at(1), Some(Tree::Group(_))) {
            c.bump(); // `!`
            let mut body = TokenRun::default();
            c.bump_into(&mut body);
            return Expr::Macro(MacroCall {
                path: segments.into_iter().map(|s| s.name).collect(),
                body,
                line,
            });
        }
        // Struct literal. `eat_group` only consumes a matching `{` group,
        // so the `if let` doubles as the peek.
        let struct_body = if no_struct { None } else { c.eat_group('{') };
        if let Some(g) = struct_body {
            let mut inner = Cur {
                trees: &g.trees,
                pos: 0,
            };
            let mut fields = Vec::new();
            let mut rest = None;
            while !inner.done() {
                if inner.at_punct("..") {
                    // `..base` is functional update; a bare `..` (a rest
                    // pattern, when this position is a match pattern)
                    // carries no expression.
                    inner.bump();
                    if !inner.done() {
                        rest = Some(Box::new(self.parse_expr(&mut inner, false)));
                    }
                    break;
                }
                let fline = inner.line();
                let name = match inner.leaf().map(|t| t.tok.clone()) {
                    Some(Tok::Ident(w)) => {
                        inner.bump();
                        w
                    }
                    Some(Tok::Num(t)) => {
                        inner.bump();
                        t
                    }
                    _ => {
                        self.issue(fline, "expected field name in struct literal");
                        inner.bump();
                        continue;
                    }
                };
                let value = if inner.eat_punct(":") {
                    Some(self.parse_expr(&mut inner, false))
                } else {
                    None
                };
                inner.eat_punct(",");
                fields.push(FieldInit {
                    name,
                    value,
                    line: fline,
                });
            }
            return Expr::Struct {
                path: ExprPath {
                    segments,
                    turbofish,
                    line,
                },
                fields,
                rest,
                line: g.open_line,
            };
        }
        Expr::Path(ExprPath {
            segments,
            turbofish,
            line,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::{Expr, ItemKind, Stmt};

    fn parsed(src: &str) -> ParsedFile {
        parse_file(src)
    }

    fn clean(src: &str) -> ParsedFile {
        let p = parse_file(src);
        assert!(p.issues.is_empty(), "parse issues: {:?}", p.issues);
        p
    }

    #[test]
    fn lexer_combines_multichar_puncts() {
        let l = lex("a::b -> c >>= d ..= e != f");
        let puncts: Vec<&str> = l.tokens.iter().filter_map(|t| t.punct()).collect();
        assert_eq!(puncts, ["::", "->", ">>=", "..=", "!="]);
    }

    #[test]
    fn lexer_keeps_number_spellings_and_lines() {
        let l = lex("1_200.0\n0xff 1e-9 2usize");
        let nums: Vec<(&str, usize)> = l
            .tokens
            .iter()
            .filter_map(|t| match &t.tok {
                Tok::Num(s) => Some((s.as_str(), t.line)),
                _ => None,
            })
            .collect();
        assert_eq!(
            nums,
            [("1_200.0", 1), ("0xff", 2), ("1e-9", 2), ("2usize", 2)]
        );
    }

    #[test]
    fn lexer_strings_and_chars_do_not_leak_tokens() {
        let l = lex(
            r##"let s = "thread_rng()"; let r = r#"HashMap "x""#; let c = 'a'; let b = b'"';"##,
        );
        assert!(!l.tokens.iter().any(|t| t.is_ident("thread_rng")));
        assert!(!l.tokens.iter().any(|t| t.is_ident("HashMap")));
        let strs = l.tokens.iter().filter(|t| t.str_text().is_some()).count();
        let chars = l.tokens.iter().filter(|t| t.tok == Tok::Char).count();
        assert_eq!((strs, chars), (2, 2));
    }

    #[test]
    fn lexer_lifetimes_are_not_chars() {
        let l = lex("fn f<'a>(x: &'a str) { let c = 'x'; 'outer: loop { break 'outer; } }");
        let lifetimes: Vec<&str> = l
            .tokens
            .iter()
            .filter_map(|t| match &t.tok {
                Tok::Lifetime(s) => Some(s.as_str()),
                _ => None,
            })
            .collect();
        assert_eq!(lifetimes, ["a", "a", "outer", "outer"]);
    }

    #[test]
    fn doc_comments_do_not_carry_allow_directives() {
        let src = "\
/// lint: allow(no-panic)
//! lint: allow(no-panic)
// lint: allow(no-wall-clock)
//// lint: allow(no-thread-rng)
fn f() {}
";
        let l = lex(src);
        let rules: Vec<(&str, usize)> =
            l.allows.iter().map(|a| (a.rule.as_str(), a.line)).collect();
        assert_eq!(rules, [("no-wall-clock", 3), ("no-thread-rng", 4)]);
    }

    #[test]
    fn trees_balance_and_flatten_back() {
        let l = lex("f(a, [b; 2], {c})");
        let (trees, issues) = build_trees(&l.tokens);
        assert!(issues.is_empty());
        let run = flatten_run(&trees);
        assert_eq!(run.tokens.len(), l.tokens.len());
        let texts: Vec<String> = run
            .tokens
            .iter()
            .map(|t| match &t.tok {
                Tok::Ident(s) => s.clone(),
                Tok::Punct(p) => p.clone(),
                Tok::Num(s) => s.clone(),
                _ => String::new(),
            })
            .collect();
        assert_eq!(
            texts,
            ["f", "(", "a", ",", "[", "b", ";", "2", "]", ",", "{", "c", "}", ")"]
        );
    }

    #[test]
    fn items_parse_structurally() {
        let p = clean(
            "
            use std::fmt;
            pub struct Point { x: f64, y: f64 }
            struct Wrapper(u64);
            pub enum E { A, B(u8) }
            const LIMIT: usize = 16;
            static NAME: &str = \"x\";
            type Alias = Vec<u8>;
            mod inner { pub fn g() {} }
            impl Point { fn len(&self) -> f64 { self.x } }
            trait T { fn req(&self) -> u8; fn def(&self) -> u8 { 1 } }
            macro_rules! m { () => {} }
            pub fn main2() {}
            ",
        );
        let kinds: Vec<&str> = p
            .ast
            .items
            .iter()
            .map(|i| match &i.kind {
                ItemKind::Use(_) => "use",
                ItemKind::Adt(a) => {
                    if a.braced {
                        "adt-braced"
                    } else {
                        "adt-tuple"
                    }
                }
                ItemKind::Const(_) => "const",
                ItemKind::TypeAlias(_) => "type",
                ItemKind::Mod(_) => "mod",
                ItemKind::Impl(_) => "impl",
                ItemKind::Trait(_) => "trait",
                ItemKind::Macro(_) => "macro",
                ItemKind::Fn(_) => "fn",
                ItemKind::Verbatim(_) => "verbatim",
            })
            .collect();
        assert_eq!(
            kinds,
            [
                "use",
                "adt-braced",
                "adt-tuple",
                "adt-braced",
                "const",
                "const",
                "type",
                "mod",
                "impl",
                "trait",
                "macro",
                "fn"
            ]
        );
    }

    #[test]
    fn expressions_parse_structurally() {
        let p = clean(
            "
            fn f(x: Option<u8>) -> u64 {
                let mut ctx = SimContext::new(7);
                let rng = ctx.stream(\"motion\");
                let v: Vec<u64> = (0..4).map(|i| i * 2).collect::<Vec<_>>();
                if let Some(y) = x {
                    return y as u64;
                }
                match v.len() {
                    0 => 0,
                    n if n > 2 => n as u64,
                    _ => 1,
                }
            }
            ",
        );
        let ItemKind::Fn(f) = &p.ast.items[0].kind else {
            panic!("expected fn");
        };
        let body = f.body.as_ref().unwrap();
        assert_eq!(body.stmts.len(), 5);
        // `ctx.stream("motion")` is a method call with a string literal.
        let Stmt::Let(l) = &body.stmts[1] else {
            panic!("expected let");
        };
        let Some(Expr::MethodCall { name, args, .. }) = l.init.as_ref() else {
            panic!("expected method call, got {:?}", l.init);
        };
        assert_eq!(name, "stream");
        assert!(matches!(&args[0], Expr::Lit(lit) if lit.text == "motion"));
        // The match has three arms, one guarded.
        let Stmt::Expr(se) = body.stmts.last().unwrap() else {
            panic!("expected expr stmt");
        };
        let Expr::Match(m) = &se.expr else {
            panic!("expected match");
        };
        assert_eq!(m.arms.len(), 3);
        assert!(m.arms[1].guard.is_some());
    }

    #[test]
    fn loops_labels_and_struct_literals_parse() {
        let p = clean(
            "
            fn f(n: usize) -> P {
                'outer: while n > 0 {
                    for (i, w) in [1, 2].iter().enumerate() {
                        if *w == i {
                            break 'outer;
                        }
                    }
                    loop {
                        break;
                    }
                }
                while let Some(q) = next() {
                    drop(q);
                }
                P { x: 1.0, y: 2.0, ..P::default() }
            }
            ",
        );
        let ItemKind::Fn(f) = &p.ast.items[0].kind else {
            panic!("expected fn");
        };
        let body = f.body.as_ref().unwrap();
        let Stmt::Expr(first) = &body.stmts[0] else {
            panic!("expected labeled loop stmt");
        };
        let Expr::Loop(l) = &first.expr else {
            panic!("expected loop, got {:?}", first.expr);
        };
        assert_eq!(l.keyword, "while");
        assert!(!l.label.is_empty());
        let Stmt::Expr(last) = body.stmts.last().unwrap() else {
            panic!("expected struct literal");
        };
        let Expr::Struct { fields, rest, .. } = &last.expr else {
            panic!("expected struct literal, got {:?}", last.expr);
        };
        assert_eq!(fields.len(), 2);
        assert!(rest.is_some());
    }

    #[test]
    fn test_gate_attrs_are_recognised() {
        let p = clean(
            "
            #[test]
            fn t() {}
            #[cfg(test)]
            mod tests {}
            #[cfg(not(test))]
            fn prod() {}
            #[derive(Debug)]
            struct S {}
            ",
        );
        let gates: Vec<bool> = p
            .ast
            .items
            .iter()
            .map(|i| i.attrs.iter().any(|a| a.is_test_gate()))
            .collect();
        assert_eq!(gates, [true, true, false, false]);
    }

    #[test]
    fn the_parser_survives_garbage_with_issues_not_panics() {
        let p = parsed("fn f( {] } ; @@ let = ..");
        assert!(!p.issues.is_empty());
    }

    #[test]
    fn this_source_file_parses_with_zero_issues() {
        let src = include_str!("parse.rs");
        let p = parse_file(src);
        assert!(
            p.issues.is_empty(),
            "issues: {:?}",
            &p.issues[..p.issues.len().min(5)]
        );
    }
}
