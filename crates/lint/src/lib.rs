//! Static analysis for the HLISA workspace, on both axes the paper cares
//! about.
//!
//! **Reliability** (the measurement-tool half): PR 1 centralised
//! randomness, time, and observation in `hlisa-sim`; the
//! [`source`] analyzer is the fence that keeps them there. It is a
//! hand-rolled token-level scanner over `crates/*/src` that denies
//! wall-clock reads, ad-hoc RNG construction, and iteration-order-
//! dependent containers outside the sim layer — the exact hazards
//! *Analysing and strengthening OpenWPM's reliability* shows corrupt
//! web measurements.
//!
//! **Detectability** (the interaction half): Table 1's lesson is that an
//! interaction program's tells — straight uniform moves, zero-dwell
//! clicks, 13,333 cpm typing, script scrolls — are *statically knowable*
//! before the program runs. The [`chain`] linter replays an action
//! program symbolically and flags every Table 1 tell, judging against
//! the same [`hlisa_detect::thresholds`] constants the runtime detector
//! uses, so linter and detector cannot drift.
//!
//! Both analyzers share one diagnostics core ([`diag`]) with stable rule
//! ids ([`rules`]), machine-readable JSON, and `// lint: allow(<rule>)`
//! suppression for auditable exceptions. The `hlisa-lint` binary wires
//! them into `scripts/verify.sh` and CI; [`gate`] proves the planner
//! split (naive chains trip rules, HLISA chains lint clean).

pub mod chain;
pub mod diag;
pub mod gate;
pub mod rules;
pub mod source;
pub mod workspace;

pub use chain::{lint_actions, ChainLinter};
pub use diag::{Diagnostic, Location, Report, Severity};
pub use rules::{rule_info, AnalyzerKind, RuleInfo, CATALOG};
pub use source::{analyze_source, Exemptions};
pub use workspace::{find_workspace_root, lint_workspace};
