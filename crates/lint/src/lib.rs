//! Static analysis for the HLISA workspace, on both axes the paper cares
//! about.
//!
//! **Reliability** (the measurement-tool half): PR 1 centralised
//! randomness, time, and observation in `hlisa-sim`; the
//! [`source`] analyzer is the fence that keeps them there. It is a
//! hand-rolled token-level scanner over `crates/*/src` that denies
//! wall-clock reads, ad-hoc RNG construction, and iteration-order-
//! dependent containers outside the sim layer — the exact hazards
//! *Analysing and strengthening OpenWPM's reliability* shows corrupt
//! web measurements.
//!
//! **Detectability** (the interaction half): Table 1's lesson is that an
//! interaction program's tells — straight uniform moves, zero-dwell
//! clicks, 13,333 cpm typing, script scrolls — are *statically knowable*
//! before the program runs. The [`chain`] linter replays an action
//! program symbolically and flags every Table 1 tell, judging against
//! the same [`hlisa_detect::thresholds`] constants the runtime detector
//! uses, so linter and detector cannot drift.
//!
//! Both analyzers share one diagnostics core ([`diag`]) with stable rule
//! ids ([`rules`]), machine-readable JSON, and `// lint: allow(<rule>)`
//! suppression for auditable exceptions. The `hlisa-lint` binary wires
//! them into `scripts/verify.sh` and CI; [`gate`] proves the planner
//! split (naive chains trip rules, HLISA chains lint clean).
//!
//! Since the AST upgrade, source analysis runs on a real parse: [`parse`]
//! lexes and parses each file into the [`ast`] model, [`provenance`]
//! re-implements every token rule on that structure and adds the
//! stream-provenance rules (`stream-name-registry`, `conditional-draw`,
//! `loop-variant-fork`, `stale-allow`), and [`ledger`] derives the
//! committed `LINT_LEDGER.json` mapping every draw/fork site to its
//! `(crate, fn, stream)`. The token scanner ([`source`]) is retained as
//! a differential reference: `tests/ast_differential.rs` holds both
//! analyzers to identical findings across the workspace.

pub mod ast;
pub mod chain;
pub mod diag;
pub mod gate;
pub mod ledger;
pub mod parse;
pub mod provenance;
pub mod rules;
pub mod source;
pub mod workspace;

pub use chain::{lint_actions, ChainLinter};
pub use diag::{Diagnostic, Location, Report, Severity};
pub use ledger::{build_ledger, check_ledger, render_ledger, Ledger, LedgerEntry, LEDGER_FILE};
pub use parse::{lex, parse_file, ParsedFile};
pub use provenance::{
    analyze_ast, analyze_file, collect_stream_sites, AstAnalysis, RulePasses, SiteKind, StreamSite,
};
pub use rules::{rule_info, AnalyzerKind, RuleInfo, CATALOG};
pub use source::{analyze_source, Exemptions};
pub use workspace::{exemptions_for, find_workspace_root, lint_workspace, workspace_files};
