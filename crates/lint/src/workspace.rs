//! Walks the workspace and runs the AST-grade analysis over every `.rs`
//! file, in a deterministic (sorted) order.
//!
//! Scope per region:
//!
//! * regular crates (`crates/*/src`) — every pass: the six source rules,
//!   the stream-provenance rules, the registry check, and the
//!   suppression audit;
//! * `crates/sim/src` — the sanctioned home of real randomness and time,
//!   so the source and stream rules have a gate there; the registry
//!   check and suppression audit still apply (sim's own tests name
//!   streams too, and a stale allow is stale anywhere);
//! * the shared `tests/` tree — integration/property tests; registry
//!   check and suppression audit only.

use crate::diag::Report;
use crate::provenance::{analyze_file, AstAnalysis, RulePasses};
use crate::source::Exemptions;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// Crates whose sources are exempt from the source and stream rules:
/// `hlisa-sim` is the sanctioned home of real randomness and time.
const EXEMPT_CRATES: &[&str] = &["sim"];

/// The one file allowed to spell out pointer-move duration floors
/// numerically: the profile definitions themselves.
const MIN_MOVE_DEFINITION_SITE: &str = "crates/webdriver/src/actions.rs";

/// Files whose hash containers are sanctioned interiors: point-queried
/// only, never iterated, so their per-process ordering cannot reach any
/// observable output. Today that is the jsom atom interner, whose
/// name→id map backs O(1) property-key interning while the
/// insertion-ordered `Vec` side of the table remains the canonical
/// view, and the browser document index, whose id/tag/anchor maps are
/// point-queried with precomputed document-ordered values.
const UNORDERED_INTERIOR_SITES: &[&str] =
    &["crates/jsom/src/atom.rs", "crates/browser/src/index.rs"];

/// Path prefixes sanctioned to fail fast (`no-panic` exempt): the
/// offline bench report builders, where aborting on a malformed local
/// artifact is the intended behaviour — nothing there runs inside a
/// crawl worker.
const PANIC_SANCTIONED_PREFIXES: &[&str] = &["crates/bench/src/"];

/// Path prefixes sanctioned to read the wall clock (`no-wall-clock`
/// exempt): the offline bench harnesses, whose entire job is measuring
/// real elapsed time. Their readings are reporting artifacts
/// (`BENCH_*.json` timings), never simulation inputs, so they cannot
/// perturb a measurement.
const WALL_CLOCK_SANCTIONED_PREFIXES: &[&str] = &["crates/bench/src/"];

/// The one file allowed to name `rng_from_seed` (`no-rng-from-seed`
/// exempt): its definition site. Callers elsewhere still need a
/// justified `// lint: allow(...)` each.
const RNG_DEFINITION_SITE: &str = "crates/stats/src/rngutil.rs";

/// The exemptions the walker grants a workspace-relative path. Public so
/// the AST/token differential test can replay the walker's exact
/// per-file configuration.
pub fn exemptions_for(rel: &str) -> Exemptions {
    Exemptions {
        min_move: rel == MIN_MOVE_DEFINITION_SITE,
        unordered: UNORDERED_INTERIOR_SITES.contains(&rel),
        panics: PANIC_SANCTIONED_PREFIXES.iter().any(|p| rel.starts_with(p)),
        wall_clock: WALL_CLOCK_SANCTIONED_PREFIXES
            .iter()
            .any(|p| rel.starts_with(p)),
        rng_def: rel == RNG_DEFINITION_SITE,
    }
}

/// Walks upward from `start` to the directory that holds both a
/// `Cargo.toml` and a `crates/` directory.
pub fn find_workspace_root(start: &Path) -> Option<PathBuf> {
    let mut dir = Some(start.to_path_buf());
    while let Some(d) = dir {
        if d.join("Cargo.toml").is_file() && d.join("crates").is_dir() {
            return Some(d);
        }
        dir = d.parent().map(Path::to_path_buf);
    }
    None
}

fn rust_files_under(dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    let mut entries: Vec<PathBuf> = fs::read_dir(dir)?
        .collect::<io::Result<Vec<_>>>()?
        .into_iter()
        .map(|e| e.path())
        .collect();
    entries.sort();
    for path in entries {
        if path.is_dir() {
            rust_files_under(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Every `.rs` file the walker covers, as (workspace-relative path,
/// absolute path, passes) — crate sources plus the shared `tests/` tree.
/// Shared with [`crate::ledger`] and the `bench_lint` harness so both
/// cover exactly the linted file set.
pub fn workspace_files(root: &Path) -> io::Result<Vec<(String, PathBuf, RulePasses)>> {
    let audit_only = RulePasses {
        source_rules: false,
        stream_rules: false,
        registry: true,
        stale: true,
    };
    let mut out = Vec::new();
    let crates_dir = root.join("crates");
    let mut crates: Vec<PathBuf> = fs::read_dir(&crates_dir)?
        .collect::<io::Result<Vec<_>>>()?
        .into_iter()
        .map(|e| e.path())
        .filter(|p| p.is_dir())
        .collect();
    crates.sort();
    for krate in crates {
        let name = krate.file_name().and_then(|n| n.to_str()).unwrap_or("");
        let passes = if EXEMPT_CRATES.contains(&name) {
            audit_only
        } else {
            RulePasses::all()
        };
        let src = krate.join("src");
        if !src.is_dir() {
            continue;
        }
        let mut files = Vec::new();
        rust_files_under(&src, &mut files)?;
        for file in files {
            out.push((rel_path(root, &file), file, passes));
        }
    }
    let tests_dir = root.join("tests");
    if tests_dir.is_dir() {
        let mut files = Vec::new();
        rust_files_under(&tests_dir, &mut files)?;
        for file in files {
            out.push((rel_path(root, &file), file, audit_only));
        }
    }
    Ok(out)
}

fn rel_path(root: &Path, file: &Path) -> String {
    file.strip_prefix(root)
        .unwrap_or(file)
        .to_string_lossy()
        .replace('\\', "/")
}

/// Lints the workspace (crate sources and the shared `tests/` tree),
/// returning one merged report with workspace-relative file paths.
pub fn lint_workspace(root: &Path) -> io::Result<Report> {
    let mut report = Report::new();
    for (rel, file, passes) in workspace_files(root)? {
        let text = fs::read_to_string(&file)?;
        let analysis = AstAnalysis::of(&text);
        // A file the parser cannot fully structure would silently shrink
        // the AST rules' view; surface it as a finding, not a skip.
        for issue in &analysis.parsed.issues {
            report.push(crate::diag::Diagnostic {
                rule: "stream-name-registry",
                severity: crate::diag::Severity::Deny,
                location: crate::diag::Location::in_file(&rel, issue.line),
                message: format!("file does not fully parse ({}); fix the construct so the AST passes see all of it", issue.message),
            });
        }
        report.extend(analyze_file(&rel, &analysis, exemptions_for(&rel), passes));
    }
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn the_root_is_found_from_inside_a_crate() {
        let here = Path::new(env!("CARGO_MANIFEST_DIR"));
        let root = find_workspace_root(here).expect("workspace root");
        assert!(root.join("crates/lint").is_dir());
    }

    #[test]
    fn exemptions_are_per_site() {
        assert!(exemptions_for("crates/webdriver/src/actions.rs").min_move);
        assert!(exemptions_for("crates/jsom/src/atom.rs").unordered);
        assert!(exemptions_for("crates/bench/src/web_bench.rs").panics);
        assert!(exemptions_for("crates/bench/src/web_bench.rs").wall_clock);
        assert!(exemptions_for("crates/stats/src/rngutil.rs").rng_def);
        let plain = exemptions_for("crates/core/src/motion.rs");
        assert!(!plain.min_move && !plain.unordered && !plain.panics);
        assert!(!plain.wall_clock && !plain.rng_def);
    }

    #[test]
    fn the_walker_covers_sim_and_the_tests_tree() {
        let here = Path::new(env!("CARGO_MANIFEST_DIR"));
        let root = find_workspace_root(here).expect("workspace root");
        let files = workspace_files(&root).expect("walk");
        let rels: Vec<&str> = files.iter().map(|(r, _, _)| r.as_str()).collect();
        assert!(rels.iter().any(|r| r.starts_with("crates/sim/src/")));
        assert!(rels.iter().any(|r| r.starts_with("tests/")));
        let sim = files
            .iter()
            .find(|(r, _, _)| r.starts_with("crates/sim/src/"))
            .expect("sim file");
        assert!(!sim.2.source_rules && sim.2.registry && sim.2.stale);
        let core = files
            .iter()
            .find(|(r, _, _)| r.starts_with("crates/core/src/"))
            .expect("core file");
        assert!(core.2.source_rules && core.2.stream_rules);
    }

    #[test]
    fn the_workspace_lints_clean() {
        // A hard gate: every determinism hazard in the workspace is
        // either fixed or carries a justified allow directive, the
        // stream registry covers every stream name, and no allow is
        // stale. Running it as a test keeps `cargo test` (tier 1)
        // failing on regressions even where CI scripts are bypassed.
        let here = Path::new(env!("CARGO_MANIFEST_DIR"));
        let root = find_workspace_root(here).expect("workspace root");
        let report = lint_workspace(&root).expect("walk");
        assert!(
            report.is_clean(),
            "workspace determinism violations:\n{}",
            report.render_human()
        );
    }
}
