//! Walks the workspace's crates and runs the source analyzer over every
//! non-exempt `.rs` file, in a deterministic (sorted) order.

use crate::diag::Report;
use crate::source::{analyze_source, Exemptions};
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// Crates whose sources are exempt: `hlisa-sim` is the sanctioned home
/// of real randomness and time, so the fence has a gate there.
const EXEMPT_CRATES: &[&str] = &["sim"];

/// The one file allowed to spell out pointer-move duration floors
/// numerically: the profile definitions themselves.
const MIN_MOVE_DEFINITION_SITE: &str = "crates/webdriver/src/actions.rs";

/// Files whose hash containers are sanctioned interiors: point-queried
/// only, never iterated, so their per-process ordering cannot reach any
/// observable output. Today that is the jsom atom interner, whose
/// name→id map backs O(1) property-key interning while the
/// insertion-ordered `Vec` side of the table remains the canonical
/// view, and the browser document index, whose id/tag/anchor maps are
/// point-queried with precomputed document-ordered values.
const UNORDERED_INTERIOR_SITES: &[&str] =
    &["crates/jsom/src/atom.rs", "crates/browser/src/index.rs"];

/// Path prefixes sanctioned to fail fast (`no-panic` exempt): the
/// offline bench report builders, where aborting on a malformed local
/// artifact is the intended behaviour — nothing there runs inside a
/// crawl worker.
const PANIC_SANCTIONED_PREFIXES: &[&str] = &["crates/bench/src/"];

/// Walks upward from `start` to the directory that holds both a
/// `Cargo.toml` and a `crates/` directory.
pub fn find_workspace_root(start: &Path) -> Option<PathBuf> {
    let mut dir = Some(start.to_path_buf());
    while let Some(d) = dir {
        if d.join("Cargo.toml").is_file() && d.join("crates").is_dir() {
            return Some(d);
        }
        dir = d.parent().map(Path::to_path_buf);
    }
    None
}

fn rust_files_under(dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    let mut entries: Vec<PathBuf> = fs::read_dir(dir)?
        .collect::<io::Result<Vec<_>>>()?
        .into_iter()
        .map(|e| e.path())
        .collect();
    entries.sort();
    for path in entries {
        if path.is_dir() {
            rust_files_under(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Lints every crate's `src/` tree under `root/crates`, returning one
/// merged report with workspace-relative file paths.
pub fn lint_workspace(root: &Path) -> io::Result<Report> {
    let mut report = Report::new();
    let crates_dir = root.join("crates");
    let mut crates: Vec<PathBuf> = fs::read_dir(&crates_dir)?
        .collect::<io::Result<Vec<_>>>()?
        .into_iter()
        .map(|e| e.path())
        .filter(|p| p.is_dir())
        .collect();
    crates.sort();
    for krate in crates {
        let name = krate.file_name().and_then(|n| n.to_str()).unwrap_or("");
        if EXEMPT_CRATES.contains(&name) {
            continue;
        }
        let src = krate.join("src");
        if !src.is_dir() {
            continue;
        }
        let mut files = Vec::new();
        rust_files_under(&src, &mut files)?;
        for file in files {
            let rel = file
                .strip_prefix(root)
                .unwrap_or(&file)
                .to_string_lossy()
                .replace('\\', "/");
            let text = fs::read_to_string(&file)?;
            let exempt = Exemptions {
                min_move: rel == MIN_MOVE_DEFINITION_SITE,
                unordered: UNORDERED_INTERIOR_SITES.contains(&rel.as_str()),
                panics: PANIC_SANCTIONED_PREFIXES.iter().any(|p| rel.starts_with(p)),
            };
            report.extend(analyze_source(&rel, &text, exempt));
        }
    }
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn the_root_is_found_from_inside_a_crate() {
        let here = Path::new(env!("CARGO_MANIFEST_DIR"));
        let root = find_workspace_root(here).expect("workspace root");
        assert!(root.join("crates/lint").is_dir());
    }

    #[test]
    fn the_workspace_lints_clean() {
        // Satellite 2 is a hard gate: every determinism hazard in the
        // workspace is either fixed or carries a justified
        // `// lint: allow(...)`. Running it as a test keeps `cargo test`
        // (tier 1) failing on regressions even where CI scripts are
        // bypassed.
        let here = Path::new(env!("CARGO_MANIFEST_DIR"));
        let root = find_workspace_root(here).expect("workspace root");
        let report = lint_workspace(&root).expect("walk");
        assert!(
            report.is_clean(),
            "workspace determinism violations:\n{}",
            report.render_human()
        );
    }
}
