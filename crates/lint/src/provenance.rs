//! The AST-grade analysis passes: every token-scanner rule re-implemented
//! on the parsed [`crate::ast`] model, plus the stream-provenance rules
//! that need real structure (conditions, loops, bindings) to exist at all.
//!
//! ## Passes
//!
//! * **Source rules** ([`analyze_ast_source_rules`]) — the six token
//!   rules (`no-thread-rng`, `no-rng-from-seed`, `no-wall-clock`,
//!   `no-unordered-containers`, `no-panic`, `no-hardcoded-min-move`)
//!   re-expressed structurally: `.unwrap()` is a method call with empty
//!   turbofish and no arguments, `panic!` is a macro path, `Instant::now`
//!   is two adjacent path segments, a hard-coded `min_duration_ms` is a
//!   field initialiser whose value leads with a numeric literal. Opaque
//!   [`TokenRun`]s (generics, patterns, types, macro bodies) are scanned
//!   with a port of the token scanner's loop — including its in-run
//!   `#[test]` region marking, so `#[test]` functions inside `proptest!`
//!   bodies stay exempt. `tests/ast_differential.rs` holds this pass to
//!   byte-equal findings with the scanner across the whole workspace.
//! * **Registry** — `stream-name-registry`: every `stream("...")` call
//!   site must name a stream in [`hlisa_sim::STREAM_REGISTRY`], and the
//!   name must be a string literal (a computed name defeats the
//!   closed-set audit). Runs in test code too: a typo'd stream in a test
//!   mints an unreviewed derivation path just as silently.
//! * **Stream rules** — `conditional-draw` (a draw from stream X inside a
//!   branch whose condition consumed a *different* stream Y: Y's draw
//!   count now gates X's sequence, re-entangling what PR 1 decoupled) and
//!   `loop-variant-fork` (`fork`/`fork_visit` with all-literal arguments
//!   inside a loop body: every iteration derives the same child seed).
//! * **Suppression audit** — `stale-allow`: a `// lint: allow(r)`
//!   directive that names an unknown rule, or that no finding (fired *or*
//!   suppressed) on its line or the next would consume, is dead weight
//!   that silently licenses future regressions.
//!
//! Known, deliberate divergences from the token scanner (none occur in
//! the workspace; the differential test would surface them if they
//! appeared): a `#[cfg(test)]`-gated `const` whose initialiser contains
//! braces is treated as not test-exempt here (the scanner exempts up to
//! the closing brace), and string/char literal tokens are visible to
//! in-run neighbour checks here where the scanner dropped them.

use crate::ast::{
    Attr, Block, Expr, ExprPath, File, Item, ItemKind, Lit, LitKind, MacroCall, Stmt, StmtLet,
    TokenRun,
};
use crate::diag::{Diagnostic, Location, Severity};
use crate::parse::{parse_file, AllowDirective, ParsedFile, Tok, Token};
use crate::source::Exemptions;
use std::collections::{BTreeMap, BTreeSet};

/// A parsed file plus the indexes the passes share. Parse once, run any
/// number of passes.
pub struct AstAnalysis {
    /// The parse (tokens, AST, allows, issues).
    pub parsed: ParsedFile,
    /// Line → rule ids allowed there.
    allows: BTreeMap<usize, Vec<String>>,
}

impl AstAnalysis {
    /// Parses `src` and builds the shared indexes.
    pub fn of(src: &str) -> AstAnalysis {
        let parsed = parse_file(src);
        let mut allows: BTreeMap<usize, Vec<String>> = BTreeMap::new();
        for a in &parsed.allows {
            allows.entry(a.line).or_default().push(a.rule.clone());
        }
        AstAnalysis { parsed, allows }
    }
}

/// Which rule families a run of the analyzer applies.
#[derive(Debug, Clone, Copy)]
pub struct RulePasses {
    /// The six re-implemented token rules.
    pub source_rules: bool,
    /// `conditional-draw` and `loop-variant-fork`.
    pub stream_rules: bool,
    /// `stream-name-registry`.
    pub registry: bool,
    /// `stale-allow` (runs last; audits directives against everything
    /// the enabled passes fired or suppressed).
    pub stale: bool,
}

impl RulePasses {
    /// Every pass on — what the workspace walker runs on regular crates.
    pub fn all() -> RulePasses {
        RulePasses {
            source_rules: true,
            stream_rules: true,
            registry: true,
            stale: true,
        }
    }
}

/// What kind of derivation call a ledger site is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum SiteKind {
    /// `ctx.stream("name")`.
    Stream,
    /// `ctx.fork(label, index)`.
    Fork,
    /// `ctx.fork_visit(domain, visit)`.
    ForkVisit,
}

impl SiteKind {
    /// Stable label used in the ledger JSON.
    pub fn label(&self) -> &'static str {
        match self {
            SiteKind::Stream => "stream",
            SiteKind::Fork => "fork",
            SiteKind::ForkVisit => "fork_visit",
        }
    }
}

/// One draw/fork call site, as collected for the determinism ledger.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StreamSite {
    /// Innermost enclosing item path (`mod::fn`), or `<file>` at file
    /// scope.
    pub function: String,
    /// What the call derives.
    pub kind: SiteKind,
    /// The stream name / fork label, or `<dynamic>` when not a literal.
    pub stream: String,
    /// True when the site is inside a `#[test]`-gated region.
    pub in_test: bool,
    /// Source line (not written to the ledger, which is line-shift
    /// stable; kept for diagnostics and tests).
    pub line: usize,
}

/// Runs the enabled passes over one analyzed file.
pub fn analyze_file(
    file: &str,
    analysis: &AstAnalysis,
    exempt: Exemptions,
    passes: RulePasses,
) -> Vec<Diagnostic> {
    let mut a = Analyzer::new(file, exempt, passes, &analysis.allows);
    a.walk_file(&analysis.parsed.ast);
    if passes.stale {
        a.stale_allow_pass(&analysis.parsed.allows);
    }
    a.out
}

/// The six token rules only — the surface the differential test compares
/// against [`crate::analyze_source`].
pub fn analyze_ast_source_rules(
    file: &str,
    analysis: &AstAnalysis,
    exempt: Exemptions,
) -> Vec<Diagnostic> {
    analyze_file(
        file,
        analysis,
        exempt,
        RulePasses {
            source_rules: true,
            stream_rules: false,
            registry: false,
            stale: false,
        },
    )
}

/// Convenience: parse `src` and run every pass.
pub fn analyze_ast(file: &str, src: &str, exempt: Exemptions) -> Vec<Diagnostic> {
    let analysis = AstAnalysis::of(src);
    analyze_file(file, &analysis, exempt, RulePasses::all())
}

/// Collects every `stream`/`fork`/`fork_visit` call site for the ledger
/// (no diagnostics).
pub fn collect_stream_sites(analysis: &AstAnalysis) -> Vec<StreamSite> {
    let passes = RulePasses {
        source_rules: false,
        stream_rules: false,
        registry: false,
        stale: false,
    };
    let mut a = Analyzer::new("", Exemptions::default(), passes, &analysis.allows);
    a.walk_file(&analysis.parsed.ast);
    a.sites
}

const ALWAYS_FIRE: &[(&str, &str, &str)] = &[
    (
        "thread_rng",
        "no-thread-rng",
        "thread_rng() is OS-seeded; draw from a SimContext stream",
    ),
    (
        "rng_from_seed",
        "no-rng-from-seed",
        "ad-hoc seeding bypasses SimContext's derivation tree",
    ),
    (
        "SystemTime",
        "no-wall-clock",
        "SystemTime reads the wall clock; use the SimContext virtual clock",
    ),
];

struct Analyzer<'a> {
    file: &'a str,
    exempt: Exemptions,
    passes: RulePasses,
    allows: &'a BTreeMap<usize, Vec<String>>,
    /// Every finding before suppression — the stale-allow ground truth.
    fired: Vec<(&'static str, usize)>,
    out: Vec<Diagnostic>,
    /// Scope stack: variable name → stream name it holds a handle to.
    env: Vec<BTreeMap<String, String>>,
    /// Stack of governing conditions: the streams each enclosing
    /// condition / scrutinee / guard consumed.
    governors: Vec<BTreeSet<String>>,
    loop_depth: usize,
    fn_stack: Vec<String>,
    sites: Vec<StreamSite>,
}

impl<'a> Analyzer<'a> {
    fn new(
        file: &'a str,
        exempt: Exemptions,
        passes: RulePasses,
        allows: &'a BTreeMap<usize, Vec<String>>,
    ) -> Analyzer<'a> {
        Analyzer {
            file,
            exempt,
            passes,
            allows,
            fired: Vec::new(),
            out: Vec::new(),
            env: Vec::new(),
            governors: Vec::new(),
            loop_depth: 0,
            fn_stack: Vec::new(),
            sites: Vec::new(),
        }
    }

    fn allowed(&self, line: usize, rule: &str) -> bool {
        let hit = |l: usize| {
            self.allows
                .get(&l)
                .is_some_and(|v| v.iter().any(|r| r == rule))
        };
        hit(line) || (line > 1 && hit(line - 1))
    }

    fn fire(&mut self, rule: &'static str, line: usize, message: String) {
        self.fired.push((rule, line));
        if !self.allowed(line, rule) {
            self.out.push(Diagnostic {
                rule,
                severity: Severity::Deny,
                location: Location::in_file(self.file, line),
                message,
            });
        }
    }

    fn function_label(&self) -> String {
        if self.fn_stack.is_empty() {
            "<file>".to_string()
        } else {
            self.fn_stack.join("::")
        }
    }

    // ---- the six source rules, structural side ------------------------

    /// Rules that fire on a bare identifier anywhere outside tests.
    fn ident_rule(&mut self, name: &str, line: usize, in_test: bool) {
        if !self.passes.source_rules || in_test {
            return;
        }
        for &(word, rule, msg) in ALWAYS_FIRE {
            if name == word {
                if (rule == "no-rng-from-seed" && self.exempt.rng_def)
                    || (rule == "no-wall-clock" && self.exempt.wall_clock)
                {
                    continue;
                }
                self.fire(rule, line, msg.to_string());
            }
        }
        if (name == "HashMap" || name == "HashSet") && !self.exempt.unordered {
            self.fire(
                "no-unordered-containers",
                line,
                format!("{name} iteration order is per-process random; use a BTree container"),
            );
        }
    }

    /// Path-expression rules: per-segment idents plus `Instant::now`
    /// adjacency. `env_check` gates the conditional-draw use check (off
    /// for struct-literal paths, which name types, not bindings).
    fn path_rules(&mut self, p: &ExprPath, in_test: bool, env_check: bool) {
        self.scan_run(&p.turbofish, in_test);
        for seg in &p.segments {
            self.ident_rule(&seg.name, seg.line, in_test);
        }
        if self.passes.source_rules && !in_test && !self.exempt.wall_clock {
            for w in p.segments.windows(2) {
                if w[0].name == "Instant" && w[1].name == "now" {
                    self.fire(
                        "no-wall-clock",
                        w[0].line,
                        "Instant::now() reads the wall clock; use the SimContext virtual clock"
                            .to_string(),
                    );
                }
            }
        }
        if env_check && p.segments.len() == 1 {
            if let Some(stream) = self.lookup(&p.segments[0].name) {
                self.check_governed(&stream, p.segments[0].line, in_test);
            }
        }
    }

    // ---- provenance machinery ----------------------------------------

    fn lookup(&self, var: &str) -> Option<String> {
        for scope in self.env.iter().rev() {
            if let Some(s) = scope.get(var) {
                return Some(s.clone());
            }
        }
        None
    }

    /// Fires `conditional-draw` when a use of `stream` sits under a
    /// condition that consumed a different stream.
    fn check_governed(&mut self, stream: &str, line: usize, in_test: bool) {
        if !self.passes.stream_rules || in_test {
            return;
        }
        let offender = self
            .governors
            .iter()
            .rev()
            .find(|g| !g.is_empty() && !g.contains(stream))
            .map(|g| g.iter().cloned().collect::<Vec<_>>().join("\", \""));
        if let Some(names) = offender {
            self.fire(
                "conditional-draw",
                line,
                format!(
                    "draw from stream \"{stream}\" is control-dependent on stream(s) \
                     \"{names}\": a draw-count change there reorders this stream's \
                     sequence; hoist the draw or condition on the same stream"
                ),
            );
        }
    }

    /// The streams an expression consumes: bound handles referenced and
    /// direct `stream("...")` calls. Pure (no diagnostics).
    fn streams_used(&self, e: &Expr) -> BTreeSet<String> {
        let mut out = BTreeSet::new();
        self.streams_used_into(e, &mut out);
        out
    }

    fn streams_used_into(&self, e: &Expr, out: &mut BTreeSet<String>) {
        match e {
            Expr::Path(p) if p.segments.len() == 1 => {
                if let Some(s) = self.lookup(&p.segments[0].name) {
                    out.insert(s);
                }
            }
            Expr::MethodCall {
                recv, name, args, ..
            } => {
                if name == "stream" && args.len() == 1 {
                    if let Expr::Lit(Lit {
                        kind: LitKind::Str,
                        text,
                        ..
                    }) = &args[0]
                    {
                        out.insert(text.clone());
                    }
                }
                self.streams_used_into(recv, out);
                for a in args {
                    self.streams_used_into(a, out);
                }
            }
            Expr::Unary { expr, .. } | Expr::Cast { expr, .. } | Expr::Try(expr) => {
                self.streams_used_into(expr, out);
            }
            Expr::Binary { lhs, rhs, .. } => {
                if let Some(l) = lhs {
                    self.streams_used_into(l, out);
                }
                if let Some(r) = rhs {
                    self.streams_used_into(r, out);
                }
            }
            Expr::Call { callee, args, .. } => {
                self.streams_used_into(callee, out);
                for a in args {
                    self.streams_used_into(a, out);
                }
            }
            Expr::Field { base, .. } => self.streams_used_into(base, out),
            Expr::Index { base, idx, .. } => {
                self.streams_used_into(base, out);
                self.streams_used_into(idx, out);
            }
            Expr::Tuple { elems, .. } | Expr::Array { elems, .. } => {
                for el in elems {
                    self.streams_used_into(el, out);
                }
            }
            Expr::Block { block, .. } => self.streams_used_block(block, out),
            Expr::If(i) => {
                self.streams_used_into(&i.cond, out);
                self.streams_used_block(&i.then_block, out);
                if let Some(eb) = &i.else_branch {
                    self.streams_used_into(eb, out);
                }
            }
            Expr::Match(m) => {
                self.streams_used_into(&m.scrutinee, out);
                for arm in &m.arms {
                    if let Some(g) = &arm.guard {
                        self.streams_used_into(g, out);
                    }
                    self.streams_used_into(&arm.body, out);
                }
            }
            Expr::Loop(l) => {
                if let Some(h) = &l.head {
                    self.streams_used_into(h, out);
                }
                self.streams_used_block(&l.body, out);
            }
            Expr::Closure(c) => self.streams_used_into(&c.body, out),
            Expr::Return(Some(e), _) | Expr::Break(_, Some(e), _) => {
                self.streams_used_into(e, out);
            }
            Expr::Struct { fields, rest, .. } => {
                for f in fields {
                    if let Some(v) = &f.value {
                        self.streams_used_into(v, out);
                    }
                }
                if let Some(r) = rest {
                    self.streams_used_into(r, out);
                }
            }
            _ => {}
        }
    }

    fn streams_used_block(&self, b: &Block, out: &mut BTreeSet<String>) {
        for s in &b.stmts {
            match s {
                Stmt::Let(l) => {
                    if let Some(init) = &l.init {
                        self.streams_used_into(init, out);
                    }
                }
                Stmt::Expr(se) => self.streams_used_into(&se.expr, out),
                Stmt::Item(_) => {}
            }
        }
    }

    /// Resolves an initialiser to the stream handle it produces, through
    /// reference/deref/paren wrappers and simple aliasing.
    fn stream_handle_of(&self, e: &Expr) -> Option<String> {
        match e {
            Expr::MethodCall { name, args, .. } if name == "stream" && args.len() == 1 => {
                match &args[0] {
                    Expr::Lit(Lit {
                        kind: LitKind::Str,
                        text,
                        ..
                    }) => Some(text.clone()),
                    _ => None,
                }
            }
            Expr::Unary { expr, .. } => self.stream_handle_of(expr),
            Expr::Tuple {
                elems,
                is_tuple: false,
                ..
            } if elems.len() == 1 => self.stream_handle_of(&elems[0]),
            Expr::Path(p) if p.segments.len() == 1 => self.lookup(&p.segments[0].name),
            _ => None,
        }
    }

    // ---- walking ------------------------------------------------------

    fn walk_file(&mut self, file: &File) {
        for a in &file.attrs {
            self.scan_run(&a.tokens, false);
        }
        for item in &file.items {
            self.walk_item(item, false);
        }
    }

    fn walk_item(&mut self, item: &Item, in_test: bool) {
        // An item's body runs in its own control/scope universe: a
        // nested fn inside a loop is not executed per iteration.
        let saved_env = std::mem::take(&mut self.env);
        let saved_gov = std::mem::take(&mut self.governors);
        let saved_loop = std::mem::replace(&mut self.loop_depth, 0);
        self.walk_item_inner(item, in_test);
        self.env = saved_env;
        self.governors = saved_gov;
        self.loop_depth = saved_loop;
    }

    fn walk_item_inner(&mut self, item: &Item, in_test: bool) {
        let gated = item.attrs.iter().any(Attr::is_test_gate);
        let in_test = in_test || (gated && item_braced(&item.kind));
        for a in &item.attrs {
            self.scan_run(&a.tokens, in_test);
        }
        self.scan_run(&item.vis, in_test);
        match &item.kind {
            ItemKind::Fn(f) => {
                self.scan_run(&f.quals, in_test);
                self.ident_rule(&f.name, item.line, in_test);
                self.scan_run(&f.generics, in_test);
                self.scan_run(&f.params, in_test);
                self.scan_run(&f.ret, in_test);
                self.scan_run(&f.where_clause, in_test);
                if let Some(b) = &f.body {
                    self.fn_stack.push(f.name.clone());
                    self.walk_block(b, in_test);
                    self.fn_stack.pop();
                }
            }
            ItemKind::Mod(m) => {
                self.ident_rule(&m.name, item.line, in_test);
                if let Some(items) = &m.items {
                    self.fn_stack.push(m.name.clone());
                    for it in items {
                        self.walk_item(it, in_test);
                    }
                    self.fn_stack.pop();
                }
            }
            ItemKind::Impl(i) => {
                self.scan_run(&i.header, in_test);
                let label = i
                    .header
                    .tokens
                    .iter()
                    .find_map(|t| t.ident())
                    .unwrap_or("impl")
                    .to_string();
                self.fn_stack.push(label);
                for it in &i.items {
                    self.walk_item(it, in_test);
                }
                self.fn_stack.pop();
            }
            ItemKind::Trait(t) => {
                self.scan_run(&t.header, in_test);
                let label = t
                    .header
                    .tokens
                    .iter()
                    .find_map(|tok| tok.ident())
                    .unwrap_or("trait")
                    .to_string();
                self.fn_stack.push(label);
                for it in &t.items {
                    self.walk_item(it, in_test);
                }
                self.fn_stack.pop();
            }
            ItemKind::Adt(a) => {
                self.ident_rule(&a.name, item.line, in_test);
                self.scan_run(&a.header, in_test);
                self.scan_run(&a.body, in_test);
            }
            ItemKind::Use(run) | ItemKind::TypeAlias(run) | ItemKind::Verbatim(run) => {
                self.scan_run(run, in_test);
            }
            ItemKind::Const(c) => {
                self.scan_run(&c.keyword, in_test);
                self.ident_rule(&c.name, item.line, in_test);
                self.scan_run(&c.ty, in_test);
                if let Some(v) = &c.value {
                    self.walk_expr(v, in_test);
                }
            }
            ItemKind::Macro(m) => {
                self.macro_call(m, in_test);
            }
        }
    }

    /// Shared handling for item- and expression-position macro calls.
    fn macro_call(&mut self, m: &MacroCall, in_test: bool) {
        for seg in &m.path {
            self.ident_rule(seg, m.line, in_test);
        }
        if self.passes.source_rules
            && !in_test
            && !self.exempt.panics
            && m.path.last().is_some_and(|s| s == "panic")
        {
            self.fire(
                "no-panic",
                m.line,
                "panic! aborts the crawl worker; fail through the typed error path".to_string(),
            );
        }
        let label = m.path.last().cloned().unwrap_or_default() + "!";
        self.fn_stack.push(label);
        self.scan_run(&m.body, in_test);
        self.fn_stack.pop();
    }

    fn walk_block(&mut self, b: &Block, in_test: bool) {
        self.env.push(BTreeMap::new());
        for s in &b.stmts {
            match s {
                Stmt::Let(l) => self.walk_let(l, in_test),
                Stmt::Item(it) => self.walk_item(it, in_test),
                Stmt::Expr(se) => {
                    for a in &se.attrs {
                        self.scan_run(&a.tokens, in_test);
                    }
                    self.walk_expr(&se.expr, in_test);
                }
            }
        }
        self.env.pop();
    }

    fn walk_let(&mut self, l: &StmtLet, in_test: bool) {
        for a in &l.attrs {
            self.scan_run(&a.tokens, in_test);
        }
        self.scan_run(&l.pat, in_test);
        self.scan_run(&l.ty, in_test);
        if let Some(init) = &l.init {
            self.walk_expr(init, in_test);
        }
        if let Some(eb) = &l.else_block {
            self.walk_block(eb, in_test);
        }
        if let Some(init) = &l.init {
            if let Some(stream) = self.stream_handle_of(init) {
                if let Some(var) = single_binding(&l.pat) {
                    if let Some(scope) = self.env.last_mut() {
                        scope.insert(var, stream);
                    }
                }
            }
        }
    }

    fn walk_expr(&mut self, e: &Expr, in_test: bool) {
        match e {
            Expr::Lit(_) => {}
            Expr::Path(p) => self.path_rules(p, in_test, true),
            Expr::Unary { expr, .. } => self.walk_expr(expr, in_test),
            Expr::Binary { lhs, rhs, .. } => {
                if let Some(l) = lhs {
                    self.walk_expr(l, in_test);
                }
                if let Some(r) = rhs {
                    self.walk_expr(r, in_test);
                }
            }
            Expr::Call { callee, args, .. } => {
                if let Expr::Path(p) = callee.as_ref() {
                    self.call_rules(p, args, in_test);
                }
                self.walk_expr(callee, in_test);
                for a in args {
                    self.walk_expr(a, in_test);
                }
            }
            Expr::MethodCall {
                recv,
                name,
                turbofish,
                args,
                line,
            } => {
                self.scan_run(turbofish, in_test);
                self.method_rules(name, turbofish, args, *line, in_test);
                self.walk_expr(recv, in_test);
                for a in args {
                    self.walk_expr(a, in_test);
                }
            }
            Expr::Field { base, name, line } => {
                self.ident_rule(name, *line, in_test);
                self.walk_expr(base, in_test);
            }
            Expr::Index { base, idx, .. } => {
                self.walk_expr(base, in_test);
                self.walk_expr(idx, in_test);
            }
            Expr::Cast { expr, ty, .. } => {
                self.walk_expr(expr, in_test);
                self.scan_run(ty, in_test);
            }
            Expr::Try(inner) => self.walk_expr(inner, in_test),
            Expr::Tuple { elems, .. } | Expr::Array { elems, .. } => {
                for el in elems {
                    self.walk_expr(el, in_test);
                }
            }
            Expr::Block { quals, block } => {
                self.scan_run(quals, in_test);
                self.walk_block(block, in_test);
            }
            Expr::If(i) => {
                self.scan_run(&i.let_pat, in_test);
                self.walk_expr(&i.cond, in_test);
                self.governors.push(self.streams_used(&i.cond));
                self.walk_block(&i.then_block, in_test);
                if let Some(eb) = &i.else_branch {
                    self.walk_expr(eb, in_test);
                }
                self.governors.pop();
            }
            Expr::Match(m) => {
                self.walk_expr(&m.scrutinee, in_test);
                self.governors.push(self.streams_used(&m.scrutinee));
                for arm in &m.arms {
                    for a in &arm.attrs {
                        self.scan_run(&a.tokens, in_test);
                    }
                    self.scan_run(&arm.pat, in_test);
                    if let Some(g) = &arm.guard {
                        self.walk_expr(g, in_test);
                        self.governors.push(self.streams_used(g));
                        self.walk_expr(&arm.body, in_test);
                        self.governors.pop();
                    } else {
                        self.walk_expr(&arm.body, in_test);
                    }
                }
                self.governors.pop();
            }
            Expr::Loop(l) => {
                self.scan_run(&l.label, in_test);
                self.scan_run(&l.pat, in_test);
                let governed = if let Some(h) = &l.head {
                    self.walk_expr(h, in_test);
                    // `loop` has no head; `while`/`for` heads gate the
                    // number of body executions.
                    self.governors.push(self.streams_used(h));
                    true
                } else {
                    false
                };
                self.loop_depth += 1;
                self.walk_block(&l.body, in_test);
                self.loop_depth -= 1;
                if governed {
                    self.governors.pop();
                }
            }
            Expr::Closure(c) => {
                self.scan_run(&c.quals, in_test);
                self.scan_run(&c.params, in_test);
                self.scan_run(&c.ret, in_test);
                self.walk_expr(&c.body, in_test);
            }
            Expr::Return(v, _) => {
                if let Some(v) = v {
                    self.walk_expr(v, in_test);
                }
            }
            Expr::Break(label, v, _) => {
                self.scan_run(label, in_test);
                if let Some(v) = v {
                    self.walk_expr(v, in_test);
                }
            }
            Expr::Continue(label, _) => self.scan_run(label, in_test),
            Expr::Macro(m) => self.macro_call(m, in_test),
            Expr::Struct {
                path, fields, rest, ..
            } => {
                self.path_rules(path, in_test, false);
                for f in fields {
                    self.ident_rule(&f.name, f.line, in_test);
                    if self.passes.source_rules
                        && !in_test
                        && !self.exempt.min_move
                        && f.name == "min_duration_ms"
                        && f.value.as_ref().is_some_and(leading_num)
                    {
                        self.fire(
                            "no-hardcoded-min-move",
                            f.line,
                            "hard-coded move-duration floor; derive from HLISA_MIN_MOVE_MS"
                                .to_string(),
                        );
                    }
                    if let Some(v) = &f.value {
                        self.walk_expr(v, in_test);
                    }
                }
                if let Some(r) = rest {
                    self.walk_expr(r, in_test);
                }
            }
            Expr::Opaque(run) => self.scan_run(run, in_test),
        }
    }

    /// Rules keyed on a method call: `.unwrap()`, the min-move override,
    /// the stream registry, fork sites.
    fn method_rules(
        &mut self,
        name: &str,
        turbofish: &TokenRun,
        args: &[Expr],
        line: usize,
        in_test: bool,
    ) {
        self.ident_rule(name, line, in_test);
        if self.passes.source_rules && !in_test {
            if name == "unwrap" && !self.exempt.panics && turbofish.is_empty() && args.is_empty() {
                self.fire(
                    "no-panic",
                    line,
                    "unwrap() panics the worker; propagate a typed error or carry a \
                     justified allow"
                        .to_string(),
                );
            }
            if name == "expect" && !self.exempt.panics && turbofish.is_empty() {
                self.fire(
                    "no-panic",
                    line,
                    "expect() panics the worker like unwrap(); propagate a typed error \
                     or carry a justified allow"
                        .to_string(),
                );
            }
            if name == "override_pointer_move_min_duration"
                && !self.exempt.min_move
                && args.first().is_some_and(leading_num)
            {
                self.fire(
                    "no-hardcoded-min-move",
                    line,
                    "literal duration bypasses HLISA_MIN_MOVE_MS".to_string(),
                );
            }
        }
        if name == "stream" && args.len() == 1 {
            match &args[0] {
                Expr::Lit(Lit {
                    kind: LitKind::Str,
                    text,
                    ..
                }) => {
                    self.sites.push(StreamSite {
                        function: self.function_label(),
                        kind: SiteKind::Stream,
                        stream: text.clone(),
                        in_test,
                        line,
                    });
                    if self.passes.registry && !hlisa_sim::is_registered(text) {
                        self.fire(
                            "stream-name-registry",
                            line,
                            format!(
                                "stream name \"{text}\" is not in hlisa-sim's STREAM_REGISTRY; \
                                 register it (crates/sim/src/streams.rs) or fix the typo"
                            ),
                        );
                    }
                    self.check_governed(text, line, in_test);
                }
                _ => {
                    if self.passes.registry {
                        self.fire(
                            "stream-name-registry",
                            line,
                            "stream name must be a string literal from STREAM_REGISTRY; \
                             a computed name defeats the closed-set audit"
                                .to_string(),
                        );
                    }
                }
            }
        }
        if name == "fork" || name == "fork_visit" {
            let kind = if name == "fork" {
                SiteKind::Fork
            } else {
                SiteKind::ForkVisit
            };
            let label = args
                .iter()
                .find_map(|a| match a {
                    Expr::Lit(Lit {
                        kind: LitKind::Str,
                        text,
                        ..
                    }) => Some(text.clone()),
                    _ => None,
                })
                .unwrap_or_else(|| "<dynamic>".to_string());
            self.sites.push(StreamSite {
                function: self.function_label(),
                kind,
                stream: label,
                in_test,
                line,
            });
            if self.passes.stream_rules
                && !in_test
                && self.loop_depth > 0
                && !args.is_empty()
                && args.iter().all(|a| matches!(a, Expr::Lit(_)))
            {
                self.fire(
                    "loop-variant-fork",
                    line,
                    format!(
                        "{name}() with all-literal arguments inside a loop derives the same \
                         child seed every iteration; thread the loop counter into an argument"
                    ),
                );
            }
        }
    }

    /// The min-move override in free/path call position — the same token
    /// pattern the scanner matches when the call is not a method call.
    fn call_rules(&mut self, callee: &ExprPath, args: &[Expr], in_test: bool) {
        if !self.passes.source_rules || in_test || self.exempt.min_move {
            return;
        }
        if let Some(last) = callee.segments.last() {
            if last.name == "override_pointer_move_min_duration"
                && args.first().is_some_and(leading_num)
            {
                self.fire(
                    "no-hardcoded-min-move",
                    last.line,
                    "literal duration bypasses HLISA_MIN_MOVE_MS".to_string(),
                );
            }
        }
    }

    // ---- opaque-run scanning (the token scanner's loop, ported) -------

    /// Runs the token-level rules over an opaque run. This is a faithful
    /// port of the scanner's loop — including `#[test]` region marking
    /// *within* the run, so test items inside macro bodies stay exempt —
    /// plus the registry check and ledger site collection, which apply in
    /// test code too.
    fn scan_run(&mut self, run: &TokenRun, in_test: bool) {
        if run.is_empty() {
            return;
        }
        let toks = &run.tokens;
        let marked = mark_test_regions(toks);
        for (i, tok) in toks.iter().enumerate() {
            let Some(name) = tok.ident() else { continue };
            let line = tok.line;
            let t_in_test = in_test || marked[i];
            let dotted_call = i > 0
                && toks[i - 1].is_punct(".")
                && toks.get(i + 1).is_some_and(|t| t.is_punct("("));

            // Registry + sites: live everywhere, including tests.
            if name == "stream" && dotted_call {
                if let Some(text) = toks.get(i + 2).and_then(|t| t.str_text()) {
                    self.sites.push(StreamSite {
                        function: self.function_label(),
                        kind: SiteKind::Stream,
                        stream: text.to_string(),
                        in_test: t_in_test,
                        line,
                    });
                    if self.passes.registry && !hlisa_sim::is_registered(text) {
                        self.fire(
                            "stream-name-registry",
                            line,
                            format!(
                                "stream name \"{text}\" is not in hlisa-sim's STREAM_REGISTRY; \
                                 register it (crates/sim/src/streams.rs) or fix the typo"
                            ),
                        );
                    }
                }
            }
            if (name == "fork" || name == "fork_visit") && dotted_call {
                let kind = if name == "fork" {
                    SiteKind::Fork
                } else {
                    SiteKind::ForkVisit
                };
                let label = toks
                    .get(i + 2)
                    .and_then(|t| t.str_text())
                    .unwrap_or("<dynamic>");
                self.sites.push(StreamSite {
                    function: self.function_label(),
                    kind,
                    stream: label.to_string(),
                    in_test: t_in_test,
                    line,
                });
            }

            if !self.passes.source_rules || t_in_test {
                continue;
            }
            self.ident_rule(name, line, false);
            match name {
                "Instant"
                    if !self.exempt.wall_clock
                        && toks.get(i + 1).is_some_and(|t| t.is_punct("::"))
                        && toks.get(i + 2).is_some_and(|t| t.is_ident("now")) =>
                {
                    self.fire(
                        "no-wall-clock",
                        line,
                        "Instant::now() reads the wall clock; use the SimContext virtual \
                         clock"
                            .to_string(),
                    );
                }
                "unwrap"
                    if !self.exempt.panics
                        && dotted_call
                        && toks.get(i + 2).is_some_and(|t| t.is_punct(")")) =>
                {
                    self.fire(
                        "no-panic",
                        line,
                        "unwrap() panics the worker; propagate a typed error or carry a \
                         justified allow"
                            .to_string(),
                    );
                }
                "expect" if !self.exempt.panics && dotted_call => {
                    self.fire(
                        "no-panic",
                        line,
                        "expect() panics the worker like unwrap(); propagate a typed error \
                         or carry a justified allow"
                            .to_string(),
                    );
                }
                "panic"
                    if !self.exempt.panics && toks.get(i + 1).is_some_and(|t| t.is_punct("!")) =>
                {
                    self.fire(
                        "no-panic",
                        line,
                        "panic! aborts the crawl worker; fail through the typed error path"
                            .to_string(),
                    );
                }
                "min_duration_ms"
                    if !self.exempt.min_move
                        && toks.get(i + 1).is_some_and(|t| t.is_punct(":"))
                        && toks
                            .get(i + 2)
                            .is_some_and(|t| matches!(t.tok, Tok::Num(_))) =>
                {
                    self.fire(
                        "no-hardcoded-min-move",
                        line,
                        "hard-coded move-duration floor; derive from HLISA_MIN_MOVE_MS".to_string(),
                    );
                }
                "override_pointer_move_min_duration"
                    if !self.exempt.min_move
                        && toks.get(i + 1).is_some_and(|t| t.is_punct("("))
                        && toks
                            .get(i + 2)
                            .is_some_and(|t| matches!(t.tok, Tok::Num(_))) =>
                {
                    self.fire(
                        "no-hardcoded-min-move",
                        line,
                        "literal duration bypasses HLISA_MIN_MOVE_MS".to_string(),
                    );
                }
                _ => {}
            }
        }
    }

    // ---- the suppression audit ----------------------------------------

    /// `stale-allow`: runs after every other pass, against the full
    /// pre-suppression finding list.
    fn stale_allow_pass(&mut self, allows: &[AllowDirective]) {
        let fired = self.fired.clone();
        for d in allows {
            if crate::rules::rule_info(&d.rule).is_none() {
                self.fire(
                    "stale-allow",
                    d.line,
                    format!(
                        "allow directive names unknown rule `{}`; \
                         see hlisa_lint::rules::CATALOG for valid ids",
                        d.rule
                    ),
                );
            } else if !fired
                .iter()
                .any(|(r, l)| *r == d.rule && (*l == d.line || *l == d.line + 1))
            {
                self.fire(
                    "stale-allow",
                    d.line,
                    format!(
                        "allow(`{}`) suppresses nothing on line {} or {}; \
                         delete the directive (dead allows license future regressions)",
                        d.rule,
                        d.line,
                        d.line + 1
                    ),
                );
            }
        }
    }
}

/// True when the item has the braced body the scanner requires before it
/// treats a `#[test]`/`#[cfg(test)]` gate as an exemptable region.
fn item_braced(kind: &ItemKind) -> bool {
    match kind {
        ItemKind::Fn(f) => f.body.is_some(),
        ItemKind::Mod(m) => m.items.is_some(),
        ItemKind::Impl(_) | ItemKind::Trait(_) => true,
        ItemKind::Adt(a) => a.braced,
        ItemKind::Use(_) | ItemKind::TypeAlias(_) | ItemKind::Const(_) => false,
        ItemKind::Macro(m) => m.body.tokens.iter().take(2).any(|t| t.is_punct("{")),
        ItemKind::Verbatim(run) => {
            for t in &run.tokens {
                if t.is_punct("{") {
                    return true;
                }
                if t.is_punct(";") {
                    return false;
                }
            }
            false
        }
    }
}

/// True when the expression's leftmost token is a numeric literal — the
/// structural equivalent of the scanner's "`(` or `:` followed by a
/// number" checks.
fn leading_num(e: &Expr) -> bool {
    match e {
        Expr::Lit(l) => l.kind == LitKind::Num,
        Expr::Binary { lhs: Some(l), .. } => leading_num(l),
        Expr::MethodCall { recv, .. } => leading_num(recv),
        Expr::Field { base, .. } | Expr::Index { base, .. } => leading_num(base),
        Expr::Cast { expr, .. } => leading_num(expr),
        Expr::Try(inner) => leading_num(inner),
        Expr::Call { callee, .. } => leading_num(callee),
        _ => false,
    }
}

/// The single identifier a `let` pattern binds, when it is that simple
/// (`x`, `mut x`, `ref mut x`); `None` for destructuring patterns.
fn single_binding(pat: &TokenRun) -> Option<String> {
    let mut name = None;
    for t in &pat.tokens {
        if let Some(w) = t.ident() {
            if w == "mut" || w == "ref" || w == "_" {
                continue;
            }
            if name.is_some() {
                return None;
            }
            name = Some(w.to_string());
        } else if t.punct().is_some() {
            return None;
        }
    }
    name
}

/// Port of the scanner's `#[test]` / `#[cfg(test)]` region marker, over
/// a run's tokens (used for macro bodies, which can hold whole test
/// functions the parser never sees structurally).
fn mark_test_regions(tokens: &[Token]) -> Vec<bool> {
    let n = tokens.len();
    let mut in_test = vec![false; n];
    let mut i = 0;
    while i < n {
        let is_attr = tokens[i].is_punct("#") && i + 1 < n && tokens[i + 1].is_punct("[");
        if !is_attr {
            i += 1;
            continue;
        }
        let mut depth = 0;
        let mut j = i + 1;
        let mut has_test = false;
        let mut has_not = false;
        while j < n {
            if tokens[j].is_punct("[") {
                depth += 1;
            } else if tokens[j].is_punct("]") {
                depth -= 1;
                if depth == 0 {
                    break;
                }
            } else if tokens[j].is_ident("test") {
                has_test = true;
            } else if tokens[j].is_ident("not") {
                has_not = true;
            }
            j += 1;
        }
        if j >= n || !has_test || has_not {
            i = j.min(n - 1) + 1;
            continue;
        }
        // Find the gated item's `{` (a `;` first means no body); skip
        // intervening attributes.
        let mut k = j + 1;
        let mut body = None;
        while k < n {
            if tokens[k].is_punct("{") {
                body = Some(k);
                break;
            }
            if tokens[k].is_punct(";") {
                break;
            }
            if tokens[k].is_punct("#") && k + 1 < n && tokens[k + 1].is_punct("[") {
                let mut d = 0;
                k += 1;
                while k < n {
                    if tokens[k].is_punct("[") {
                        d += 1;
                    } else if tokens[k].is_punct("]") {
                        d -= 1;
                        if d == 0 {
                            break;
                        }
                    }
                    k += 1;
                }
            }
            k += 1;
        }
        if let Some(start) = body {
            let mut d = 0;
            let mut m = start;
            while m < n {
                if tokens[m].is_punct("{") {
                    d += 1;
                } else if tokens[m].is_punct("}") {
                    d -= 1;
                    if d == 0 {
                        break;
                    }
                }
                m += 1;
            }
            for flag in in_test.iter_mut().take(m.min(n - 1) + 1).skip(i) {
                *flag = true;
            }
        }
        i = j + 1;
    }
    in_test
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rules_of(src: &str) -> Vec<(&'static str, usize)> {
        let analysis = AstAnalysis::of(src);
        let mut out: Vec<(&'static str, usize)> = analyze_file(
            "fixture.rs",
            &analysis,
            Exemptions::default(),
            RulePasses::all(),
        )
        .into_iter()
        .map(|d| (d.rule, d.location.line.unwrap_or(0)))
        .collect();
        out.sort();
        out
    }

    fn rule_ids(src: &str) -> Vec<&'static str> {
        let mut ids: Vec<&'static str> = rules_of(src).into_iter().map(|(r, _)| r).collect();
        ids.dedup();
        ids
    }

    #[test]
    fn registered_stream_names_pass_and_typos_fail() {
        assert!(rule_ids("fn f(ctx: &mut SimContext) { ctx.stream(\"motion\"); }").is_empty());
        assert_eq!(
            rule_ids("fn f(ctx: &mut SimContext) { ctx.stream(\"moton\"); }"),
            ["stream-name-registry"]
        );
    }

    #[test]
    fn computed_stream_names_are_rejected() {
        assert_eq!(
            rule_ids("fn f(ctx: &mut SimContext, n: &str) { ctx.stream(n); }"),
            ["stream-name-registry"]
        );
    }

    #[test]
    fn registry_applies_inside_test_code_and_macro_bodies() {
        let in_test =
            "#[cfg(test)]\nmod tests {\n fn t(c: &mut SimContext) { c.stream(\"nope\"); }\n}";
        assert_eq!(rule_ids(in_test), ["stream-name-registry"]);
        let in_macro = "proptest! {\n #[test]\n fn t(s in any::<u64>()) { \
                        let mut c = SimContext::new(s); c.stream(\"bogus\"); }\n}";
        assert_eq!(rule_ids(in_macro), ["stream-name-registry"]);
    }

    #[test]
    fn conditional_draw_fires_across_streams_only() {
        let cross = "fn f(ctx: &mut SimContext) {\n if ctx.stream(\"behavior\").gen_bool(0.5) \
                     {\n  ctx.stream(\"motion\").gen::<u64>();\n }\n}";
        assert_eq!(rules_of(cross), [("conditional-draw", 3)]);
        let same = "fn f(ctx: &mut SimContext) {\n if ctx.stream(\"motion\").gen_bool(0.5) \
                    {\n  ctx.stream(\"motion\").gen::<u64>();\n }\n}";
        assert!(rules_of(same).is_empty());
        let unconditioned = "fn f(ctx: &mut SimContext, hot: bool) {\n if hot \
                             {\n  ctx.stream(\"motion\").gen::<u64>();\n }\n}";
        assert!(rules_of(unconditioned).is_empty());
    }

    #[test]
    fn conditional_draw_tracks_bound_handles() {
        let src = "fn f(ctx: &mut SimContext) {\n let rng = ctx.stream(\"traverse\");\n \
                   let other = ctx.stream(\"motion\");\n while rng.gen_bool(0.5) \
                   {\n  other.gen::<u64>();\n }\n}";
        assert_eq!(rules_of(src), [("conditional-draw", 5)]);
        let same = "fn f(ctx: &mut SimContext) {\n let rng = &mut *ctx.stream(\"traverse\");\n \
                    while rng.gen_bool(0.5) {\n  rng.gen::<u64>();\n }\n}";
        assert!(rules_of(same).is_empty());
    }

    #[test]
    fn conditional_draw_covers_match_scrutinees() {
        let src = "fn f(ctx: &mut SimContext) {\n match ctx.stream(\"chain\").gen_range(0..3) \
                   {\n  0 => { ctx.stream(\"typing\").gen::<u64>(); }\n  _ => {}\n }\n}";
        assert_eq!(rules_of(src), [("conditional-draw", 3)]);
    }

    #[test]
    fn loop_variant_fork_fires_on_literal_forks_in_loops() {
        let bad = "fn f(ctx: &mut SimContext) {\n for _ in 0..3 \
                   {\n  let child = ctx.fork(\"page-graph\", 0);\n }\n}";
        assert_eq!(rules_of(bad), [("loop-variant-fork", 3)]);
        let good = "fn f(ctx: &mut SimContext) {\n for i in 0..3 \
                    {\n  let child = ctx.fork(\"page-graph\", i);\n }\n}";
        assert!(rules_of(good).is_empty());
        let outside = "fn f(ctx: &mut SimContext) {\n let child = ctx.fork(\"page-graph\", 0);\n}";
        assert!(rules_of(outside).is_empty());
    }

    #[test]
    fn stale_allow_flags_dead_and_unknown_directives() {
        let dead = "// lint: allow(no-panic)\nfn f() -> u8 { 1 }";
        assert_eq!(rules_of(dead), [("stale-allow", 1)]);
        let unknown = "fn f() -> u8 { 1 } // lint: allow(no-such-rule)";
        assert_eq!(rules_of(unknown), [("stale-allow", 1)]);
    }

    #[test]
    fn consumed_allows_are_not_stale_even_while_suppressing() {
        let live = "// lint: allow(no-panic)\nfn f(x: Option<u8>) -> u8 { x.unwrap() }";
        assert!(rules_of(live).is_empty());
    }

    #[test]
    fn stream_sites_are_collected_with_context() {
        let src = "mod walk {\n fn step(ctx: &mut SimContext) {\n  ctx.stream(\"traverse\");\n  \
                   let c = ctx.fork_visit(\"example.org\", 2);\n }\n}";
        let analysis = AstAnalysis::of(src);
        let sites = collect_stream_sites(&analysis);
        assert_eq!(sites.len(), 2);
        assert_eq!(sites[0].function, "walk::step");
        assert_eq!(sites[0].kind, SiteKind::Stream);
        assert_eq!(sites[0].stream, "traverse");
        assert!(!sites[0].in_test);
        assert_eq!(sites[1].kind, SiteKind::ForkVisit);
        assert_eq!(sites[1].stream, "example.org");
    }

    #[test]
    fn source_rules_fire_structurally() {
        assert_eq!(
            rule_ids("fn f() { let t = std::time::Instant::now(); }"),
            ["no-wall-clock"]
        );
        assert_eq!(
            rule_ids("fn f(x: Option<u8>) -> u8 { x.unwrap() }"),
            ["no-panic"]
        );
        assert_eq!(rule_ids("fn f() { panic!(\"boom\"); }"), ["no-panic"]);
        assert_eq!(
            rule_ids("fn f(x: Option<u8>) -> u8 { x.expect(\"invariant\") }"),
            ["no-panic"]
        );
        assert_eq!(
            rule_ids("fn p() -> P { P { min_duration_ms: 250.0, other: 1.0 } }"),
            ["no-hardcoded-min-move"]
        );
        assert!(rule_ids("fn f(x: Option<u8>) -> u8 { x.unwrap_or(0) }").is_empty());
        assert!(rule_ids("#[test]\nfn t() { Some(1).unwrap(); }").is_empty());
        assert!(rule_ids("#[test]\nfn t() { Some(1).expect(\"in tests\"); }").is_empty());
    }
}
