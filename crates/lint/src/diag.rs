//! The diagnostics core shared by both analyzers: rule id, severity,
//! location, and machine-readable (JSON) plus human rendering.

use hlisa_webdriver::AuditFinding;
use std::fmt::Write as _;

/// How seriously a diagnostic is meant (all shipped rules deny; the
/// severity travels in the output so downstream tooling can filter).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Severity {
    /// Fails the build.
    Deny,
    /// Reported but non-fatal.
    Warn,
}

impl Severity {
    /// Lowercase label used in both output formats.
    pub fn label(&self) -> &'static str {
        match self {
            Severity::Deny => "deny",
            Severity::Warn => "warn",
        }
    }
}

/// Where a diagnostic points: a source position, an action index in a
/// chain program, or nothing (session-level findings).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Location {
    /// Workspace-relative source file.
    pub file: Option<String>,
    /// 1-based line in `file`.
    pub line: Option<usize>,
    /// 0-based index into the linted action program.
    pub action_index: Option<usize>,
}

impl Location {
    /// A source-file position.
    pub fn in_file(file: impl Into<String>, line: usize) -> Self {
        Self {
            file: Some(file.into()),
            line: Some(line),
            action_index: None,
        }
    }

    /// An action-program position.
    pub fn at_action(index: usize) -> Self {
        Self {
            file: None,
            line: None,
            action_index: Some(index),
        }
    }

    fn render(&self) -> String {
        match (&self.file, self.line, self.action_index) {
            (Some(f), Some(l), _) => format!("{f}:{l}"),
            (Some(f), None, _) => f.clone(),
            (None, _, Some(i)) => format!("action #{i}"),
            _ => "session".to_string(),
        }
    }
}

/// One finding.
#[derive(Debug, Clone, PartialEq)]
pub struct Diagnostic {
    /// Stable rule id (see [`crate::rules::CATALOG`]).
    pub rule: &'static str,
    /// Severity.
    pub severity: Severity,
    /// Where.
    pub location: Location,
    /// Human-readable detail.
    pub message: String,
}

/// An ordered collection of findings with the two output formats.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Report {
    diags: Vec<Diagnostic>,
}

impl Report {
    /// An empty report.
    pub fn new() -> Self {
        Self::default()
    }

    /// Wraps already-collected diagnostics.
    pub fn from_diagnostics(diags: Vec<Diagnostic>) -> Self {
        Self { diags }
    }

    /// Rebuilds a report from a session auditor's findings (locations are
    /// session-level: the auditor works on live batches, not a stored
    /// program).
    pub fn from_findings(findings: &[AuditFinding]) -> Self {
        Self {
            diags: findings
                .iter()
                .map(|f| Diagnostic {
                    rule: f.rule,
                    severity: Severity::Deny,
                    location: Location::default(),
                    message: f.detail.clone(),
                })
                .collect(),
        }
    }

    /// Adds one diagnostic.
    pub fn push(&mut self, d: Diagnostic) {
        self.diags.push(d);
    }

    /// Adds many diagnostics.
    pub fn extend(&mut self, diags: impl IntoIterator<Item = Diagnostic>) {
        self.diags.extend(diags);
    }

    /// Appends another report.
    pub fn merge(&mut self, other: Report) {
        self.diags.extend(other.diags);
    }

    /// All findings, in discovery order.
    pub fn diagnostics(&self) -> &[Diagnostic] {
        &self.diags
    }

    /// Number of findings.
    pub fn len(&self) -> usize {
        self.diags.len()
    }

    /// True when nothing was flagged.
    pub fn is_empty(&self) -> bool {
        self.diags.is_empty()
    }

    /// True when nothing was flagged (alias in report vocabulary).
    pub fn is_clean(&self) -> bool {
        self.is_empty()
    }

    /// Distinct rule ids flagged, sorted.
    pub fn rule_ids(&self) -> Vec<&'static str> {
        let mut ids: Vec<&'static str> = self.diags.iter().map(|d| d.rule).collect();
        ids.sort_unstable();
        ids.dedup();
        ids
    }

    /// Machine-readable rendering. Hand-rolled: the vendored serde stub
    /// is not a serializer, and the format here is a stable contract for
    /// CI tooling.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\"clean\":");
        out.push_str(if self.is_clean() { "true" } else { "false" });
        out.push_str(",\"diagnostics\":[");
        for (i, d) in self.diags.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{{\"rule\":\"{}\",\"severity\":\"{}\"",
                json_escape(d.rule),
                d.severity.label()
            );
            if let Some(f) = &d.location.file {
                let _ = write!(out, ",\"file\":\"{}\"", json_escape(f));
            }
            if let Some(l) = d.location.line {
                let _ = write!(out, ",\"line\":{l}");
            }
            if let Some(a) = d.location.action_index {
                let _ = write!(out, ",\"action\":{a}");
            }
            let _ = write!(out, ",\"message\":\"{}\"}}", json_escape(&d.message));
        }
        out.push_str("]}");
        out
    }

    /// Terminal rendering, one line per finding.
    pub fn render_human(&self) -> String {
        if self.is_clean() {
            return "clean: no diagnostics\n".to_string();
        }
        let mut out = String::new();
        for d in &self.diags {
            let _ = writeln!(
                out,
                "{}[{}] {}: {}",
                d.severity.label(),
                d.rule,
                d.location.render(),
                d.message
            );
        }
        let _ = writeln!(
            out,
            "{} diagnostic(s), rules: {}",
            self.len(),
            self.rule_ids().join(", ")
        );
        out
    }
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Report {
        Report::from_diagnostics(vec![
            Diagnostic {
                rule: "no-wall-clock",
                severity: Severity::Deny,
                location: Location::in_file("crates/x/src/lib.rs", 3),
                message: "Instant::now() outside hlisa-sim".into(),
            },
            Diagnostic {
                rule: "sub-min-move",
                severity: Severity::Deny,
                location: Location::at_action(7),
                message: "0 ms \"move\"".into(),
            },
        ])
    }

    #[test]
    fn json_is_stable_and_escaped() {
        let j = sample().to_json();
        assert!(j.starts_with("{\"clean\":false"));
        assert!(j.contains("\"file\":\"crates/x/src/lib.rs\""));
        assert!(j.contains("\"line\":3"));
        assert!(j.contains("\"action\":7"));
        assert!(j.contains("0 ms \\\"move\\\""));
        assert_eq!(
            Report::new().to_json(),
            "{\"clean\":true,\"diagnostics\":[]}"
        );
    }

    #[test]
    fn human_output_names_every_rule_once() {
        let h = sample().render_human();
        assert!(h.contains("deny[no-wall-clock] crates/x/src/lib.rs:3:"));
        assert!(h.contains("deny[sub-min-move] action #7:"));
        assert!(h.contains("rules: no-wall-clock, sub-min-move"));
    }

    #[test]
    fn rule_ids_dedupe_and_sort() {
        let mut r = sample();
        r.merge(sample());
        assert_eq!(r.len(), 4);
        assert_eq!(r.rule_ids(), ["no-wall-clock", "sub-min-move"]);
        assert!(!r.is_clean());
        assert!(Report::new().is_clean());
    }
}
