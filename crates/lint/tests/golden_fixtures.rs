//! Golden-fixture tests for the `hlisa-lint` binary: every source rule
//! has a seeded violation fixture the tool must reject (exit 1, rule id
//! in the JSON), and the clean fixture must pass (exit 0).

use std::path::Path;
use std::process::Command;

fn run_check(fixture: &str, json: bool) -> (i32, String) {
    let path = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(fixture);
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_hlisa-lint"));
    if json {
        cmd.arg("--json");
    }
    let out = cmd
        .arg("--check-file")
        .arg(&path)
        .output()
        .expect("run hlisa-lint");
    (
        out.status.code().expect("exit code"),
        String::from_utf8_lossy(&out.stdout).into_owned(),
    )
}

#[test]
fn every_source_rule_has_a_failing_fixture() {
    let cases = [
        ("wall_clock.rs", "no-wall-clock"),
        ("thread_rng.rs", "no-thread-rng"),
        ("unordered_containers.rs", "no-unordered-containers"),
        ("rng_from_seed.rs", "no-rng-from-seed"),
        ("hardcoded_min_move.rs", "no-hardcoded-min-move"),
        ("no_panic.rs", "no-panic"),
    ];
    for (fixture, rule) in cases {
        let (code, json) = run_check(fixture, true);
        assert_eq!(code, 1, "{fixture} should fail the lint");
        assert!(
            json.contains(&format!("\"rule\":\"{rule}\"")),
            "{fixture} should flag {rule}, got: {json}"
        );
        assert!(json.contains("\"clean\":false"), "{json}");
    }
}

#[test]
fn every_provenance_rule_has_a_failing_fixture() {
    let cases = [
        ("stream_registry.rs", "stream-name-registry"),
        ("conditional_draw.rs", "conditional-draw"),
        ("loop_variant_fork.rs", "loop-variant-fork"),
        ("stale_allow.rs", "stale-allow"),
    ];
    for (fixture, rule) in cases {
        let (code, json) = run_check(fixture, true);
        assert_eq!(code, 1, "{fixture} should fail the lint");
        assert!(
            json.contains(&format!("\"rule\":\"{rule}\"")),
            "{fixture} should flag {rule}, got: {json}"
        );
        assert!(json.contains("\"clean\":false"), "{json}");
    }
}

#[test]
fn the_clean_fixture_passes() {
    let (code, json) = run_check("clean.rs", true);
    assert_eq!(code, 0, "clean fixture flagged: {json}");
    assert!(json.contains("\"clean\":true"), "{json}");
}

#[test]
fn human_output_names_the_rule_and_location() {
    let (code, human) = run_check("wall_clock.rs", false);
    assert_eq!(code, 1);
    assert!(human.contains("deny[no-wall-clock]"), "{human}");
    assert!(human.contains("wall_clock.rs:"), "{human}");
}

#[test]
fn missing_files_are_a_usage_error_not_a_finding() {
    let out = Command::new(env!("CARGO_BIN_EXE_hlisa-lint"))
        .arg("--check-file")
        .arg("does/not/exist.rs")
        .output()
        .expect("run hlisa-lint");
    assert_eq!(out.status.code(), Some(2));
}
