//! The AST/token differential: the contract that lets the AST pass
//! *replace* the token scanner as the primary source analyzer.
//!
//! Two halves:
//!
//! 1. **Total parse coverage** — every `.rs` file in every crate's
//!    `src/` tree (plus the shared `tests/` sources) parses with zero
//!    [`ParseIssue`]s. The parser's opaque fallback exists for garbage
//!    inputs, not for the workspace; any fallback would silently shrink
//!    the AST rules' view of the code.
//! 2. **Finding equivalence** — for every file, the AST re-implementation
//!    of the token rules produces *exactly* the token scanner's findings
//!    (same rule, same line), under the same exemptions the workspace
//!    walker grants. This holds the two analyzers to byte-equal verdicts
//!    over the entire codebase, so retiring the scanner from the gate
//!    loses nothing.

use hlisa_lint::provenance::{analyze_ast_source_rules, AstAnalysis};
use hlisa_lint::workspace::{exemptions_for, find_workspace_root};
use hlisa_lint::{analyze_source, parse_file};
use std::fs;
use std::path::{Path, PathBuf};

fn workspace_rust_files() -> Vec<(String, PathBuf)> {
    let here = Path::new(env!("CARGO_MANIFEST_DIR"));
    let root = find_workspace_root(here).expect("workspace root");
    let mut files = Vec::new();
    let mut stack = vec![root.join("crates"), root.join("tests")];
    while let Some(dir) = stack.pop() {
        if !dir.is_dir() {
            continue;
        }
        let mut entries: Vec<PathBuf> = fs::read_dir(&dir)
            .expect("read_dir")
            .map(|e| e.expect("dir entry").path())
            .collect();
        entries.sort();
        for path in entries {
            if path.is_dir() {
                stack.push(path);
            } else if path.extension().is_some_and(|e| e == "rs") {
                let rel = path
                    .strip_prefix(&root)
                    .unwrap_or(&path)
                    .to_string_lossy()
                    .replace('\\', "/");
                files.push((rel, path));
            }
        }
    }
    assert!(
        files.len() > 40,
        "workspace walk found {} files",
        files.len()
    );
    files
}

#[test]
fn every_workspace_file_parses_with_zero_issues() {
    let mut failures = Vec::new();
    for (rel, path) in workspace_rust_files() {
        let src = fs::read_to_string(&path).expect("read source");
        let parsed = parse_file(&src);
        for issue in &parsed.issues {
            failures.push(format!("{rel}:{}: {}", issue.line, issue.message));
        }
    }
    assert!(
        failures.is_empty(),
        "{} parse issue(s):\n{}",
        failures.len(),
        failures.join("\n")
    );
}

#[test]
fn ast_rules_reproduce_every_token_scanner_finding() {
    let mut mismatches = Vec::new();
    let mut token_findings = 0usize;
    for (rel, path) in workspace_rust_files() {
        let src = fs::read_to_string(&path).expect("read source");
        let exempt = exemptions_for(&rel);
        let mut scanner: Vec<(String, usize)> = analyze_source(&rel, &src, exempt)
            .into_iter()
            .map(|d| (d.rule.to_string(), d.location.line.unwrap_or(0)))
            .collect();
        let analysis = AstAnalysis::of(&src);
        let mut ast: Vec<(String, usize)> = analyze_ast_source_rules(&rel, &analysis, exempt)
            .into_iter()
            .map(|d| (d.rule.to_string(), d.location.line.unwrap_or(0)))
            .collect();
        scanner.sort();
        ast.sort();
        token_findings += scanner.len();
        if scanner != ast {
            let only_scanner: Vec<_> = scanner.iter().filter(|f| !ast.contains(f)).collect();
            let only_ast: Vec<_> = ast.iter().filter(|f| !scanner.contains(f)).collect();
            mismatches.push(format!(
                "{rel}: scanner-only {only_scanner:?}, ast-only {only_ast:?}"
            ));
        }
    }
    assert!(
        mismatches.is_empty(),
        "analyzers disagree on {} file(s):\n{}",
        mismatches.len(),
        mismatches.join("\n")
    );
    // Both analyzers apply the same allows and exemptions, so the
    // workspace-wide finding count can legitimately be zero; the corpus
    // still exercises every rule via the sim/tests files (walked here
    // but not by the workspace gate).
    let _ = token_findings;
}
