//! The planner split, property-tested: HLISA chains lint clean under
//! arbitrary seeds, while Selenium and the naive improver keep tripping
//! Table 1 rules — the Fig. 3 ladder as an invariant, not an anecdote.

use hlisa_lint::gate::{hlisa_report, naive_report, selenium_report};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(20))]

    #[test]
    fn hlisa_chains_lint_clean_under_any_seed(seed in 0u64..u64::MAX) {
        let report = hlisa_report(seed);
        prop_assert!(
            report.is_clean(),
            "seed {seed} flagged:\n{}",
            report.render_human()
        );
    }

    #[test]
    fn naive_chains_always_trip_the_distribution_rules(seed in 0u64..u64::MAX) {
        let ids = naive_report(seed).rule_ids();
        prop_assert!(ids.len() >= 3, "seed {seed}: only {ids:?}");
        prop_assert!(ids.contains(&"metronomic-typing"), "seed {seed}: {ids:?}");
        prop_assert!(ids.contains(&"no-finger-breaks"), "seed {seed}: {ids:?}");
    }
}

#[test]
fn selenium_is_deterministically_detectable() {
    let first = selenium_report();
    let second = selenium_report();
    assert_eq!(first.rule_ids(), second.rule_ids());
    assert!(first.rule_ids().len() >= 5, "{:?}", first.rule_ids());
}
