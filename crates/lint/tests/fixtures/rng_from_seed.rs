//! Fixture: resurrected ad-hoc seeding.
use hlisa_stats::rngutil::rng_from_seed;

pub fn sample(seed: u64) -> u64 {
    let mut _rng = rng_from_seed(seed);
    seed
}
