//! Fixture: panicking failure handling in non-test code.

pub fn first_rank(ranks: &[u32]) -> u32 {
    if ranks.is_empty() {
        panic!("no ranks");
    }
    *ranks.first().unwrap()
}

pub fn last_rank(ranks: &[u32]) -> u32 {
    *ranks.last().expect("checked non-empty by caller")
}
