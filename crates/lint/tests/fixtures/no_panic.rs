//! Fixture: panicking failure handling in non-test code.

pub fn first_rank(ranks: &[u32]) -> u32 {
    if ranks.is_empty() {
        panic!("no ranks");
    }
    *ranks.first().unwrap()
}
