//! Fixture: numeric move-duration floors bypassing HLISA_MIN_MOVE_MS.
pub fn configure(session: &mut Session) -> PointerMoveProfile {
    session.override_pointer_move_min_duration(35.0);
    PointerMoveProfile {
        min_duration_ms: 250.0,
        sample_interval_ms: 10.0,
    }
}
