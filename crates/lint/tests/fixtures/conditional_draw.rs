//! Fixture: a `click` draw sits under a branch decided by the
//! `detector` stream, coupling the two streams' consumption rates.
pub fn act(ctx: &SimContext) -> f64 {
    let mut gate = ctx.stream("detector");
    let mut click = ctx.stream("click");
    if gate.next_f64() < 0.5 {
        click.next_f64()
    } else {
        0.0
    }
}
