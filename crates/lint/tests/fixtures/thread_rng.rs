//! Fixture: OS-seeded RNG outside the sim layer.
use rand::Rng;

pub fn jitter() -> f64 {
    rand::thread_rng().gen_range(-1.0..1.0)
}
