//! Fixture: draws from a stream name that is not in
//! `hlisa_sim::STREAM_REGISTRY` (a typo of the registered `cursor`).
pub fn wander(ctx: &SimContext) -> f64 {
    let mut rng = ctx.stream("curser");
    rng.next_f64()
}
