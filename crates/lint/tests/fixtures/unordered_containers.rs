//! Fixture: iteration-order-randomised containers in non-test code.
use std::collections::{HashMap, HashSet};

pub fn tally(keys: &[String]) -> usize {
    let mut seen: HashSet<&str> = HashSet::new();
    let mut counts: HashMap<&str, usize> = HashMap::new();
    for k in keys {
        seen.insert(k);
        *counts.entry(k).or_default() += 1;
    }
    counts.len()
}
