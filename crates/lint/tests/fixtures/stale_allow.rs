//! Fixture: a suppression directive that no longer suppresses any
//! finding on its line or the next.
pub fn tidy() -> u32 {
    // lint: allow(no-wall-clock)
    2 + 2
}
