//! Fixture: determinism-clean code — BTree containers, injected time,
//! context-derived randomness, symbolic duration floors.
use std::collections::BTreeMap;

pub fn configure(session: &mut Session, now_ms: f64) -> BTreeMap<String, f64> {
    session.override_pointer_move_min_duration(HLISA_MIN_MOVE_MS);
    let mut out = BTreeMap::new();
    out.insert("now".to_string(), now_ms);
    out
}
