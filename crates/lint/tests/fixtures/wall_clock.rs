//! Fixture: reads the wall clock twice over (both banned forms).
use std::time::{Instant, SystemTime};

pub fn elapsed() -> f64 {
    let start = Instant::now();
    let _epoch = SystemTime::now();
    start.elapsed().as_secs_f64()
}
