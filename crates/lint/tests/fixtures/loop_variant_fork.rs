//! Fixture: `fork` inside a loop with all-literal arguments — every
//! iteration derives the same child seed and replays the others.
pub fn spawn_all(ctx: &SimContext) -> Vec<Child> {
    let mut out = Vec::new();
    for _ in 0..3 {
        out.push(ctx.fork("agent", 1));
    }
    out
}
