//! Human typing rhythm.
//!
//! Appendix E: dwell time (press→release of one key) and flight time
//! (release→next press) are derived from a 100-character typing recording;
//! the paper combines them with the contextual pause taxonomy of Alves et
//! al. (2007) — longer pauses after words, commas, and sentence ends. Fast
//! ten-finger typing (~600 cpm) also *interleaves* presses: "sometimes a
//! key is only released when a different key has already been pressed"
//! (§4.1). The planner reproduces all of it, including the Shift presses
//! capitals need on a real keyboard.

use crate::keyboard::{us_qwerty_key, KeyId};
use crate::params::HumanParams;
use hlisa_sim::SimContext;
use rand::Rng;

/// One planned key transition.
#[derive(Debug, Clone, PartialEq)]
pub struct PlannedKeyEvent {
    /// Offset from the start of typing (ms).
    pub at_ms: f64,
    /// True for keydown, false for keyup.
    pub down: bool,
    /// DOM key value.
    pub key: String,
}

/// One planned key transition in compact (`Copy`, allocation-free) form —
/// the arena representation for batch interaction plans.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PlannedKeyStroke {
    /// Offset from the start of typing (ms).
    pub at_ms: f64,
    /// True for keydown, false for keyup.
    pub down: bool,
    /// The key, as a compact id (see [`KeyId::dom_key`]).
    pub key: KeyId,
}

/// Where the cadence core deposits planned key transitions. One core, two
/// representations: the `String`-keyed events the browser driver consumes
/// and the compact `Copy` strokes the batch planner arenas — both fed by
/// the identical draw sequence.
trait KeySink {
    fn push_key(&mut self, at_ms: f64, down: bool, key: KeyId);
    fn sort_by_time(&mut self);
}

impl KeySink for Vec<PlannedKeyEvent> {
    fn push_key(&mut self, at_ms: f64, down: bool, key: KeyId) {
        self.push(PlannedKeyEvent {
            at_ms,
            down,
            key: key.dom_key(),
        });
    }
    fn sort_by_time(&mut self) {
        self.sort_by(|a, b| {
            a.at_ms
                .partial_cmp(&b.at_ms)
                .unwrap_or(std::cmp::Ordering::Equal)
        });
    }
}

impl KeySink for Vec<PlannedKeyStroke> {
    fn push_key(&mut self, at_ms: f64, down: bool, key: KeyId) {
        self.push(PlannedKeyStroke { at_ms, down, key });
    }
    fn sort_by_time(&mut self) {
        self.sort_by(|a, b| {
            a.at_ms
                .partial_cmp(&b.at_ms)
                .unwrap_or(std::cmp::Ordering::Equal)
        });
    }
}

/// Plans the key events for typing `text` like a human, drawing from the
/// context's `"typing"` stream. Characters the US-QWERTY layout cannot
/// produce are skipped (matching what a physical typist without an IME can
/// enter).
pub fn plan_typing(params: &HumanParams, ctx: &mut SimContext, text: &str) -> Vec<PlannedKeyEvent> {
    plan_typing_with(params, ctx.stream("typing"), text)
}

/// Like [`plan_typing`], drawing from an explicit RNG stream.
pub fn plan_typing_with<R: Rng + ?Sized>(
    params: &HumanParams,
    rng: &mut R,
    text: &str,
) -> Vec<PlannedKeyEvent> {
    let mut events = Vec::new();
    plan_typing_into(params, rng, text, &mut events);
    events
}

/// Like [`plan_typing_with`], filling a caller-supplied buffer instead of
/// allocating. The buffer is cleared first; its capacity is reused across
/// calls, which removes the per-action `Vec` (though not the per-key
/// `String`s) from the typing hot path. A plan cannot stream lazily — the
/// Shift release events it emits are retro-timed, so the plan is only
/// time-ordered after the final sort.
pub fn plan_typing_into<R: Rng + ?Sized>(
    params: &HumanParams,
    rng: &mut R,
    text: &str,
    events: &mut Vec<PlannedKeyEvent>,
) {
    events.clear();
    plan_typing_core(params, rng, text, events);
}

/// The compact counterpart of [`plan_typing_into`]: same cadence model,
/// same draws (both run the one shared core), but the events land as
/// `Copy` [`PlannedKeyStroke`]s — no per-key `String`, so a reused buffer
/// makes the typing plan allocation-free in steady state. This is the
/// representation the batch interaction planner arenas.
pub fn plan_typing_keys_into<R: Rng + ?Sized>(
    params: &HumanParams,
    rng: &mut R,
    text: &str,
    events: &mut Vec<PlannedKeyStroke>,
) {
    events.clear();
    plan_typing_core(params, rng, text, events);
}

/// The cadence model itself, generic over the event representation. Every
/// draw the planner makes happens in here, so the `String` and compact
/// paths cannot drift apart.
fn plan_typing_core<R: Rng + ?Sized, S: KeySink>(
    params: &HumanParams,
    rng: &mut R,
    text: &str,
    events: &mut S,
) {
    let mut t = 0.0f64; // next keydown time
    let mut prev_up_t = 0.0f64;
    let mut shift_down = false;
    let mut prev_char: Option<char> = None;

    // AR(1) tempo drift: successive dwell deviations are serially
    // correlated (the consistency signal of §4.2). Stationary variance is
    // kept equal to the configured dwell variance.
    let rho = params.dwell_autocorr.clamp(0.0, 0.95);
    let dwell_mean = params.key_dwell.mean();
    let dwell_sigma = params.key_dwell.std_dev();
    let innovation = hlisa_stats::Normal::new(0.0, dwell_sigma * (1.0 - rho * rho).sqrt());
    let mut dwell_dev = 0.0f64;

    let mut chars = text
        .chars()
        .filter_map(|c| us_qwerty_key(c).map(|(key, needs_shift)| (c, key, needs_shift)))
        .peekable();
    while let Some((ch, key, needs_shift)) = chars.next() {
        // Contextual pause from the character *before* this one.
        if let Some(prev) = prev_char {
            let extra = match prev {
                ' ' => Some(params.pause_word.sample(rng)),
                ',' | ';' => Some(params.pause_comma.sample(rng)),
                '.' | '!' | '?' => Some(params.pause_sentence.sample(rng)),
                _ => None,
            };
            if let Some(extra) = extra {
                t += extra;
            }
        }

        // Shift transitions around the run of shifted characters.
        if needs_shift && !shift_down {
            let lead = rng.gen_range(35.0..90.0);
            events.push_key((t - lead).max(0.0), true, KeyId::Shift);
            shift_down = true;
        } else if !needs_shift && shift_down {
            let lag = rng.gen_range(10.0..50.0);
            events.push_key(prev_up_t + lag, false, KeyId::Shift);
            shift_down = false;
            t = t.max(prev_up_t + lag + 5.0);
        }

        // The key itself. Dwell follows the drifting tempo.
        dwell_dev = rho * dwell_dev + innovation.sample(rng);
        let dwell = (dwell_mean + dwell_dev).clamp(params.key_dwell.lo(), params.key_dwell.hi());
        events.push_key(t, true, key);
        events.push_key(t + dwell, false, key);
        prev_up_t = t + dwell;

        // Flight to the next press; interleave sometimes.
        if chars.peek().is_some() {
            let mut flight = params.key_flight.sample(rng);
            if flight < 0.0 && !rng.gen_bool(params.interleave_prob) {
                flight = flight.abs();
            }
            // Next press measured from this key's *release* minus overlap.
            t = (prev_up_t + flight).max(t + 20.0);
        }
        prev_char = Some(ch);
    }
    if shift_down {
        events.push_key(prev_up_t + rng.gen_range(10.0..60.0), false, KeyId::Shift);
    }
    events.sort_by_time();
}

/// Overall characters-per-minute implied by a plan (counting non-modifier
/// presses).
pub fn plan_cpm(events: &[PlannedKeyEvent]) -> f64 {
    let presses: Vec<&PlannedKeyEvent> = events
        .iter()
        .filter(|e| e.down && e.key != "Shift")
        .collect();
    let [first, .., last] = presses.as_slice() else {
        return 0.0;
    };
    let span_ms = last.at_ms - first.at_ms;
    if span_ms <= 0.0 {
        return 0.0;
    }
    (presses.len() - 1) as f64 * 60_000.0 / span_ms
}

#[cfg(test)]
mod tests {
    use super::*;

    fn plan(text: &str, seed: u64) -> Vec<PlannedKeyEvent> {
        let p = HumanParams::paper_baseline();
        let mut ctx = SimContext::new(seed);
        plan_typing(&p, &mut ctx, text)
    }

    #[test]
    fn every_down_has_an_up() {
        let ev = plan("hello world", 1);
        let downs = ev.iter().filter(|e| e.down).count();
        let ups = ev.iter().filter(|e| !e.down).count();
        assert_eq!(downs, ups);
    }

    #[test]
    fn events_are_time_ordered() {
        let ev = plan("the quick brown fox. jumps, again", 2);
        for w in ev.windows(2) {
            assert!(w[1].at_ms >= w[0].at_ms);
        }
    }

    #[test]
    fn capitals_get_shift_around_them() {
        let ev = plan("aBc", 3);
        let shift_down = ev
            .iter()
            .position(|e| e.down && e.key == "Shift")
            .expect("shift pressed");
        let b_down = ev
            .iter()
            .position(|e| e.down && e.key == "B")
            .expect("B pressed");
        let shift_up = ev
            .iter()
            .position(|e| !e.down && e.key == "Shift")
            .expect("shift released");
        assert!(shift_down < b_down, "shift must precede the capital");
        assert!(shift_up > b_down, "shift released after the capital press");
    }

    #[test]
    fn consecutive_capitals_share_one_shift() {
        let ev = plan("ABC", 4);
        let shift_downs = ev.iter().filter(|e| e.down && e.key == "Shift").count();
        assert_eq!(shift_downs, 1);
    }

    #[test]
    fn speed_is_broadly_human() {
        // ~600 cpm target, single-subject variation allowed.
        let ev = plan(
            "the quick brown fox jumps over the lazy dog and keeps running",
            5,
        );
        let cpm = plan_cpm(&ev);
        assert!((250.0..900.0).contains(&cpm), "cpm = {cpm}");
    }

    #[test]
    fn sentence_pause_slows_the_rhythm() {
        let p = HumanParams::paper_baseline();
        let mut ctx = SimContext::new(6);
        let flat = plan_typing(&p, &mut ctx, "aaaa aaaa aaaa aaaa");
        let mut ctx2 = SimContext::new(6);
        let punct = plan_typing(&p, &mut ctx2, "aa. aa. aa. aa. aa.");
        let span = |ev: &[PlannedKeyEvent]| ev.last().unwrap().at_ms - ev[0].at_ms;
        assert!(span(&punct) > span(&flat));
    }

    #[test]
    fn interleaving_occurs_at_speed() {
        // Generate a long plan and check at least one key is pressed before
        // the previous is released.
        let ev = plan(
            "abcdefghijklmnopqrstuvwxyz abcdefghijklmnopqrstuvwxyz abcdefghijklmnopqrstuvwxyz",
            7,
        );
        let mut open: Vec<(String, f64)> = Vec::new();
        let mut interleaves = 0;
        for e in &ev {
            if e.key == "Shift" {
                continue;
            }
            if e.down {
                if !open.is_empty() {
                    interleaves += 1;
                }
                open.push((e.key.clone(), e.at_ms));
            } else if let Some(pos) = open.iter().position(|(k, _)| *k == e.key) {
                open.remove(pos);
            }
        }
        assert!(interleaves > 0, "no rollover typing in a long fast plan");
    }

    #[test]
    fn unmapped_chars_are_skipped() {
        let ev = plan("aéb", 8);
        let keys: Vec<&str> = ev
            .iter()
            .filter(|e| e.down)
            .map(|e| e.key.as_str())
            .collect();
        assert_eq!(keys, vec!["a", "b"]);
    }

    #[test]
    fn dwell_times_are_serially_correlated() {
        let p = HumanParams::paper_baseline();
        let mut ctx = SimContext::new(20);
        let long = "the quick brown fox jumps over the lazy dog ".repeat(8);
        let ev = plan_typing(&p, &mut ctx, &long);
        // Pair downs with ups per key occurrence, in order.
        let mut dwells: Vec<f64> = Vec::new();
        let mut open: Vec<(String, f64)> = Vec::new();
        for e in &ev {
            if e.key == "Shift" {
                continue;
            }
            if e.down {
                open.push((e.key.clone(), e.at_ms));
            } else if let Some(pos) = open.iter().position(|(k, _)| *k == e.key) {
                let (_, down_t) = open.remove(pos);
                dwells.push(e.at_ms - down_t);
            }
        }
        assert!(dwells.len() > 200);
        let lag0: Vec<f64> = dwells[..dwells.len() - 1].to_vec();
        let lag1: Vec<f64> = dwells[1..].to_vec();
        let r = hlisa_stats::descriptive::pearson(&lag0, &lag1);
        assert!(r > 0.3, "lag-1 autocorr too weak: {r}");
    }

    #[test]
    fn empty_text_gives_empty_plan() {
        assert!(plan("", 9).is_empty());
        assert_eq!(plan_cpm(&[]), 0.0);
    }

    /// The compact plan is the `String` plan with the keys projected: same
    /// timestamps, same transitions, same post-RNG state.
    #[test]
    fn compact_plan_matches_string_plan_bit_for_bit() {
        let p = HumanParams::paper_baseline();
        let mut compact = Vec::new();
        let texts = [
            "Hello, World. How are you?",
            "aB cD EF",
            "",
            "plain lowercase words here",
            "MIXED case. with, punctuation!",
        ];
        for seed in 0..50u64 {
            for text in texts {
                let mut ctx = SimContext::new(seed);
                plan_typing_keys_into(&p, ctx.stream("typing"), text, &mut compact);
                let mut ref_ctx = SimContext::new(seed);
                let full = plan_typing(&p, &mut ref_ctx, text);
                assert_eq!(compact.len(), full.len(), "seed {seed} text {text:?}");
                for (c, f) in compact.iter().zip(&full) {
                    assert_eq!(c.at_ms.to_bits(), f.at_ms.to_bits(), "seed {seed}");
                    assert_eq!(c.down, f.down, "seed {seed}");
                    assert_eq!(c.key.dom_key(), f.key, "seed {seed}");
                }
                assert_eq!(
                    ctx.stream("typing").gen::<u64>(),
                    ref_ctx.stream("typing").gen::<u64>(),
                    "rng state diverged for seed {seed} text {text:?}"
                );
            }
        }
    }

    /// A reused buffer yields the same plan as a fresh allocation — stale
    /// contents from the prior call must not leak through.
    #[test]
    fn reused_buffer_matches_fresh_plan() {
        let p = HumanParams::paper_baseline();
        let mut buf = Vec::new();
        for (seed, text) in [(1u64, "Hello, World."), (2, "aB cD"), (3, ""), (4, "xyz")] {
            let mut ctx = SimContext::new(seed);
            plan_typing_into(&p, ctx.stream("typing"), text, &mut buf);
            let mut fresh_ctx = SimContext::new(seed);
            let fresh = plan_typing(&p, &mut fresh_ctx, text);
            assert_eq!(buf, fresh, "seed {seed} text {text:?}");
            assert_eq!(
                ctx.stream("typing").gen::<u64>(),
                fresh_ctx.stream("typing").gen::<u64>(),
                "rng state diverged for seed {seed}"
            );
        }
    }
}
