//! Generative human interaction model.
//!
//! The paper parametrises HLISA with measurements of the authors' own
//! interaction (Appendix E: cursor recording, a 100-round moving-target
//! click task, wheel scrolling down a 30,000 px page, and typing a
//! 100-character text). No human is available in this reproduction, so this
//! crate plays that role twice over:
//!
//! 1. [`params::HumanParams`] holds the distribution parameters that the
//!    paper extracted from its recordings (published values where given:
//!    600 cpm ten-finger typing with interleaving key presses, the 57 px
//!    wheel tick, dwell/flight structure, Alves et al. pause categories).
//! 2. [`agent::HumanAgent`] *generates* full interaction traces from those
//!    parameters — curved, jittered, accelerating cursor paths
//!    (minimum-jerk velocity profile over a perturbed Bézier), normally
//!    distributed click placement, cadenced wheel scrolling, and rhythmic
//!    typing — serving as the "human" line in Figures 1–2 and as the
//!    reference sample for the level-2 deviation detectors.

pub mod agent;
pub mod click;
pub mod cursor;
pub mod keyboard;
pub mod params;
pub mod plan;
pub mod scroll;
pub mod typing;

pub use agent::HumanAgent;
pub use cursor::TrajectorySample;
pub use params::HumanParams;
pub use plan::{InteractionPlan, VisitPlanner};
