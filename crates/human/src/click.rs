//! Human click placement and button timing.
//!
//! Fig. 2 (top right): human clicks on an element are "much more
//! distributed but hardly ever in the centre". The model samples a 2-D
//! normal around a slightly biased centre, truncated to the element box —
//! matching HLISA's choice of "a normal distribution with parameters drawn
//! from our experiment" while keeping every click physically on the
//! element.

use crate::params::HumanParams;
use hlisa_browser::{Point, Rect};
use hlisa_sim::SimContext;
use hlisa_stats::Normal;
use rand::Rng;

/// Samples a click point inside `rect`, drawing from the context's
/// `"click"` stream.
pub fn sample_click_point(params: &HumanParams, ctx: &mut SimContext, rect: Rect) -> Point {
    sample_click_point_with(params, ctx.stream("click"), rect)
}

/// Like [`sample_click_point`], drawing from an explicit RNG stream.
pub fn sample_click_point_with<R: Rng + ?Sized>(
    params: &HumanParams,
    rng: &mut R,
    rect: Rect,
) -> Point {
    let cx = rect.x + rect.width * (0.5 + params.click_bias_x_frac);
    let cy = rect.y + rect.height * 0.5;
    let dx = Normal::new(0.0, params.click_sigma_x_frac * rect.width);
    let dy = Normal::new(0.0, params.click_sigma_y_frac * rect.height);
    // Rejection-sample into the box (margin keeps clicks off the exact
    // border, where humans rarely land either).
    let margin_x = (rect.width * 0.04).min(2.0);
    let margin_y = (rect.height * 0.04).min(2.0);
    for _ in 0..64 {
        let p = Point::new(cx + dx.sample(rng), cy + dy.sample(rng));
        if p.x >= rect.x + margin_x
            && p.x <= rect.x + rect.width - margin_x
            && p.y >= rect.y + margin_y
            && p.y <= rect.y + rect.height - margin_y
        {
            return p;
        }
    }
    Point::new(cx, cy)
}

/// Samples a button dwell time (ms) from the `"click"` stream.
pub fn sample_dwell_ms(params: &HumanParams, ctx: &mut SimContext) -> f64 {
    sample_dwell_ms_with(params, ctx.stream("click"))
}

/// Like [`sample_dwell_ms`], drawing from an explicit RNG stream.
pub fn sample_dwell_ms_with<R: Rng + ?Sized>(params: &HumanParams, rng: &mut R) -> f64 {
    params.click_dwell.sample(rng)
}

/// Samples the gap between the two clicks of a double click (ms) from the
/// `"click"` stream.
pub fn sample_double_click_gap_ms(params: &HumanParams, ctx: &mut SimContext) -> f64 {
    sample_double_click_gap_ms_with(params, ctx.stream("click"))
}

/// Like [`sample_double_click_gap_ms`], drawing from an explicit RNG
/// stream.
pub fn sample_double_click_gap_ms_with<R: Rng + ?Sized>(params: &HumanParams, rng: &mut R) -> f64 {
    params.double_click_gap.sample(rng)
}

#[cfg(test)]
mod tests {
    use super::*;
    use hlisa_stats::descriptive::Summary;

    const RECT: Rect = Rect::new(100.0, 200.0, 120.0, 40.0);

    #[test]
    fn clicks_stay_on_the_element() {
        let p = HumanParams::paper_baseline();
        let mut ctx = SimContext::new(1);
        for _ in 0..2_000 {
            let pt = sample_click_point(&p, &mut ctx, RECT);
            assert!(RECT.contains(pt), "off-element click {pt:?}");
        }
    }

    #[test]
    fn clicks_are_distributed_not_centred() {
        let p = HumanParams::paper_baseline();
        let mut ctx = SimContext::new(2);
        let center = RECT.center();
        let mut exact_center = 0usize;
        let mut dists = Vec::new();
        for _ in 0..2_000 {
            let pt = sample_click_point(&p, &mut ctx, RECT);
            if pt.distance_to(center) < 0.5 {
                exact_center += 1;
            }
            dists.push(pt.distance_to(center));
        }
        // "hardly ever in the centre"
        assert!(exact_center < 20, "{exact_center} dead-centre clicks");
        let s = Summary::of(&dists);
        assert!(s.mean > 3.0, "too concentrated: mean dist {}", s.mean);
        assert!(s.std_dev > 1.0);
    }

    #[test]
    fn dwell_times_are_plausibly_human() {
        let p = HumanParams::paper_baseline();
        let mut ctx = SimContext::new(3);
        let xs: Vec<f64> = (0..2_000).map(|_| sample_dwell_ms(&p, &mut ctx)).collect();
        let s = Summary::of(&xs);
        assert!(s.min >= 20.0, "subhuman dwell {}", s.min);
        assert!((60.0..120.0).contains(&s.mean), "mean {}", s.mean);
        assert!(s.std_dev > 5.0, "dwell not noisy enough");
    }

    #[test]
    fn double_click_gap_fits_os_window() {
        let p = HumanParams::paper_baseline();
        let mut ctx = SimContext::new(4);
        for _ in 0..1_000 {
            let gap = sample_double_click_gap_ms(&p, &mut ctx);
            assert!((60.0..=450.0).contains(&gap), "gap {gap}");
        }
    }

    #[test]
    fn tiny_elements_still_get_clicks() {
        let p = HumanParams::paper_baseline();
        let mut ctx = SimContext::new(5);
        let tiny = Rect::new(0.0, 0.0, 6.0, 6.0);
        for _ in 0..200 {
            let pt = sample_click_point(&p, &mut ctx, tiny);
            assert!(tiny.contains(pt));
        }
    }
}
