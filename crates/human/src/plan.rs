//! Batch interaction planner: a visit's whole action chain synthesised
//! into one reusable arena.
//!
//! "Beyond the Crawl" (PAPERS.md) shows behavioural detectors score *whole
//! interaction sessions*, not isolated strokes — so the simulate side must
//! be able to emit a full per-visit interaction plan (move + click + type +
//! scroll + dwell) at campaign pace. Planning each action into fresh `Vec`s
//! costs an allocation per stroke, per typing burst, and per scroll run;
//! [`VisitPlanner`] instead lays every sample of the chain into a single
//! [`InteractionPlan`] arena whose buffers are reused across visits. After
//! warm-up a visit plan performs **zero** allocations (asserted by tests
//! and the `batch_plan` bench section).
//!
//! Determinism: the planner draws from the registered `"click"`,
//! `"cursor"`, `"agent"`, `"typing"`, and `"scroll"` streams of the
//! `SimContext` it is handed (campaign code hands it a dedicated
//! `fork("plan", _)` child so the `"visit"` stream's draw sequence is
//! untouched). The arena layout changes *where* samples are stored, never
//! *when* draws happen: [`VisitPlanner::plan_visit`] is bit-identical —
//! plan contents and post-RNG state — to the retained per-action reference
//! [`plan_visit_unbatched`], pinned by a proptest for arbitrary seeds and
//! scripts.

use crate::click;
use crate::cursor::{self, StrokeScratch, TrajectorySample};
use crate::params::HumanParams;
use crate::scroll::{self, PlannedTick};
use crate::typing::{self, PlannedKeyStroke};
use hlisa_browser::viewport::WHEEL_TICK_PX;
use hlisa_browser::{Point, Rect};
use hlisa_sim::SimContext;
use rand::Rng;

/// Where a planned visit's cursor starts: the viewport centre.
const PLAN_ORIGIN: Point = Point::new(640.0, 360.0);

/// Text corpus planned `Type` steps draw from (ASCII, so byte slicing is
/// char-safe).
const VISIT_CORPUS: &str =
    "the quick brown fox jumps over the lazy dog 1234 Hello, World. sphinx of black quartz";

/// One step of a visit's interaction script.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ScriptStep {
    /// Move to a point sampled inside the element box, then click it.
    Click {
        /// Element box (page coordinates).
        x: f64,
        /// Element box top.
        y: f64,
        /// Element box width.
        w: f64,
        /// Element box height.
        h: f64,
    },
    /// Type the first `len` corpus characters into the focused field.
    Type {
        /// Number of corpus characters.
        len: usize,
    },
    /// Wheel-scroll by `dy` pixels (positive = down).
    Scroll {
        /// Scroll distance in pixels.
        dy: f64,
    },
    /// A reading/idle pause.
    Dwell,
}

/// One planned action: its script step, when it starts, and which arena
/// ranges hold its synthesised events.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PlannedAction {
    /// The script step this action realises.
    pub step: ScriptStep,
    /// Offset of the action's start from the start of the visit (ms).
    pub start_ms: f64,
    /// Range into [`InteractionPlan::samples`] (cursor samples).
    pub samples: (u32, u32),
    /// Range into [`InteractionPlan::keys`] (key transitions).
    pub keys: (u32, u32),
    /// Range into [`InteractionPlan::ticks`] (wheel ticks).
    pub ticks: (u32, u32),
}

/// A whole visit's synthesised interaction, stored structure-of-arrays:
/// one samples arena, one key arena, one tick arena, and the per-action
/// index into them. Event timestamps are relative to their action's start
/// ([`PlannedAction::start_ms`] places them on the visit clock).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct InteractionPlan {
    samples: Vec<TrajectorySample>,
    keys: Vec<PlannedKeyStroke>,
    ticks: Vec<PlannedTick>,
    actions: Vec<PlannedAction>,
    total_ms: f64,
}

impl InteractionPlan {
    /// All cursor samples of the visit, in action order.
    pub fn samples(&self) -> &[TrajectorySample] {
        &self.samples
    }

    /// All key transitions of the visit, in action order.
    pub fn keys(&self) -> &[PlannedKeyStroke] {
        &self.keys
    }

    /// All wheel ticks of the visit, in action order.
    pub fn ticks(&self) -> &[PlannedTick] {
        &self.ticks
    }

    /// The planned actions with their arena ranges.
    pub fn actions(&self) -> &[PlannedAction] {
        &self.actions
    }

    /// Total planned visit duration (ms).
    pub fn total_ms(&self) -> f64 {
        self.total_ms
    }

    /// Current arena capacities `[samples, keys, ticks, actions]`. A
    /// reused plan whose capacities stop changing performs no further
    /// allocations.
    pub fn arena_capacities(&self) -> [usize; 4] {
        [
            self.samples.capacity(),
            self.keys.capacity(),
            self.ticks.capacity(),
            self.actions.capacity(),
        ]
    }

    fn clear(&mut self) {
        self.samples.clear();
        self.keys.clear();
        self.ticks.clear();
        self.actions.clear();
        self.total_ms = 0.0;
    }
}

const fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Derives a visit's interaction script from its page content hash. Pure
/// and RNG-free: the same `(content_hash, steps)` always yields the same
/// script, so scripts need no stream draws and replay exactly. The first
/// step is always a click (every visit exercises the cursor kernel); the
/// rest mix clicks, typing bursts, scrolls, and dwells by hash bits.
pub fn visit_script_into(content_hash: u64, steps: usize, out: &mut Vec<ScriptStep>) {
    out.clear();
    out.reserve(steps);
    let mut h = content_hash;
    for i in 0..steps {
        h = splitmix64(h);
        let kind = if i == 0 { 0 } else { (h >> 61) % 4 };
        out.push(match kind {
            0 => ScriptStep::Click {
                x: 40.0 + (h % 1000) as f64,
                y: 60.0 + ((h >> 10) % 560) as f64,
                w: 24.0 + ((h >> 20) % 140) as f64,
                h: 16.0 + ((h >> 28) % 36) as f64,
            },
            1 => ScriptStep::Type {
                len: 8 + ((h >> 8) % 48) as usize,
            },
            2 => {
                let dist = 200.0 + ((h >> 16) % 1200) as f64;
                ScriptStep::Scroll {
                    dy: if h & 1 == 0 { dist } else { -dist },
                }
            }
            _ => ScriptStep::Dwell,
        });
    }
}

/// The retained per-action reference planner: fresh `Vec`s per action and
/// the seed-era eager cursor generator, assembled into a fresh plan.
///
/// This is what planning a visit costs without the arena and the
/// fixed-capacity kernels — the baseline of the `batch_plan` bench row —
/// and the differential anchor [`VisitPlanner::plan_visit`] must match bit
/// for bit (contents and post-RNG state).
pub fn plan_visit_unbatched(
    params: &HumanParams,
    ctx: &mut SimContext,
    script: &[ScriptStep],
) -> InteractionPlan {
    let mut plan = InteractionPlan::default();
    let mut pos = PLAN_ORIGIN;
    let mut t = 0.0f64;
    for &step in script {
        let start_ms = t;
        let s0 = plan.samples.len() as u32;
        let k0 = plan.keys.len() as u32;
        let w0 = plan.ticks.len() as u32;
        match step {
            ScriptStep::Click { x, y, w, h } => {
                let rect = Rect::new(x, y, w, h);
                let target = click::sample_click_point(params, ctx, rect);
                let movement = cursor::reference::generate_with(
                    params,
                    ctx.stream("cursor"),
                    pos,
                    target,
                    w.min(h).max(4.0),
                );
                let move_end = movement.last().map(|s| s.t_ms).unwrap_or(0.0);
                plan.samples.extend_from_slice(&movement);
                let fixation = ctx.stream("agent").gen_range(40.0..160.0);
                let dwell = click::sample_dwell_ms(params, ctx);
                t += move_end + fixation + dwell;
                pos = target;
            }
            ScriptStep::Type { len } => {
                let text = &VISIT_CORPUS[..len.min(VISIT_CORPUS.len())];
                let mut keys = Vec::new();
                typing::plan_typing_keys_into(params, ctx.stream("typing"), text, &mut keys);
                t += keys.last().map(|k| k.at_ms).unwrap_or(0.0);
                plan.keys.extend_from_slice(&keys);
            }
            ScriptStep::Scroll { dy } => {
                let ticks =
                    scroll::plan_scroll_with(params, ctx.stream("scroll"), dy, WHEEL_TICK_PX);
                t += ticks.last().map(|k| k.at_ms).unwrap_or(0.0);
                plan.ticks.extend_from_slice(&ticks);
            }
            ScriptStep::Dwell => {
                t += ctx.stream("agent").gen_range(350.0..1600.0);
            }
        }
        plan.actions.push(PlannedAction {
            step,
            start_ms,
            samples: (s0, plan.samples.len() as u32),
            keys: (k0, plan.keys.len() as u32),
            ticks: (w0, plan.ticks.len() as u32),
        });
    }
    plan.total_ms = t;
    plan
}

/// The batch interaction planner: owns one [`InteractionPlan`] arena plus
/// all kernel scratch, reused across visits.
///
/// One instance per worker; [`VisitPlanner::plan_visit`] clears the arena
/// (retaining capacity) and lays the whole action chain into it. Once the
/// buffers have grown to the workload's high-water mark, planning a visit
/// allocates nothing.
#[derive(Default)]
pub struct VisitPlanner {
    plan: InteractionPlan,
    stroke_scratch: StrokeScratch,
    key_scratch: Vec<PlannedKeyStroke>,
    tick_scratch: Vec<PlannedTick>,
    script: Vec<ScriptStep>,
}

impl VisitPlanner {
    /// A fresh planner with empty arenas.
    pub fn new() -> Self {
        Self::default()
    }

    /// The most recently planned visit.
    pub fn plan(&self) -> &InteractionPlan {
        &self.plan
    }

    /// Arena + scratch capacities, for steady-state allocation assertions:
    /// `[samples, keys, ticks, actions, key scratch, tick scratch, script,
    /// tremor spill, basis spill]`.
    pub fn capacities(&self) -> [usize; 9] {
        let [s, k, w, a] = self.plan.arena_capacities();
        let (tremor, basis) = self.stroke_scratch.spill_capacities();
        [
            s,
            k,
            w,
            a,
            self.key_scratch.capacity(),
            self.tick_scratch.capacity(),
            self.script.capacity(),
            tremor,
            basis,
        ]
    }

    /// Plans a whole visit action chain into the reusable arena.
    ///
    /// Bit-identical to [`plan_visit_unbatched`] — same draws from the
    /// same streams in the same order, same plan contents — with all
    /// intermediate storage reused.
    pub fn plan_visit(
        &mut self,
        params: &HumanParams,
        ctx: &mut SimContext,
        script: &[ScriptStep],
    ) -> &InteractionPlan {
        self.plan.clear();
        let plan = &mut self.plan;
        let mut pos = PLAN_ORIGIN;
        let mut t = 0.0f64;
        for &step in script {
            let start_ms = t;
            let s0 = plan.samples.len() as u32;
            let k0 = plan.keys.len() as u32;
            let w0 = plan.ticks.len() as u32;
            match step {
                ScriptStep::Click { x, y, w, h } => {
                    let rect = Rect::new(x, y, w, h);
                    let target = click::sample_click_point(params, ctx, rect);
                    cursor::synthesize_into(
                        params,
                        ctx.stream("cursor"),
                        pos,
                        target,
                        w.min(h).max(4.0),
                        &mut self.stroke_scratch,
                        &mut plan.samples,
                    );
                    let move_end = plan.samples[s0 as usize..]
                        .last()
                        .map(|s| s.t_ms)
                        .unwrap_or(0.0);
                    let fixation = ctx.stream("agent").gen_range(40.0..160.0);
                    let dwell = click::sample_dwell_ms(params, ctx);
                    t += move_end + fixation + dwell;
                    pos = target;
                }
                ScriptStep::Type { len } => {
                    let text = &VISIT_CORPUS[..len.min(VISIT_CORPUS.len())];
                    typing::plan_typing_keys_into(
                        params,
                        ctx.stream("typing"),
                        text,
                        &mut self.key_scratch,
                    );
                    t += self.key_scratch.last().map(|k| k.at_ms).unwrap_or(0.0);
                    plan.keys.extend_from_slice(&self.key_scratch);
                }
                ScriptStep::Scroll { dy } => {
                    scroll::plan_scroll_into(
                        params,
                        ctx.stream("scroll"),
                        dy,
                        WHEEL_TICK_PX,
                        &mut self.tick_scratch,
                    );
                    t += self.tick_scratch.last().map(|k| k.at_ms).unwrap_or(0.0);
                    plan.ticks.extend_from_slice(&self.tick_scratch);
                }
                ScriptStep::Dwell => {
                    t += ctx.stream("agent").gen_range(350.0..1600.0);
                }
            }
            plan.actions.push(PlannedAction {
                step,
                start_ms,
                samples: (s0, plan.samples.len() as u32),
                keys: (k0, plan.keys.len() as u32),
                ticks: (w0, plan.ticks.len() as u32),
            });
        }
        plan.total_ms = t;
        &self.plan
    }

    /// Derives the script for a site visit from its content hash and plans
    /// it: the campaign-engine entry point.
    pub fn plan_site_visit(
        &mut self,
        params: &HumanParams,
        ctx: &mut SimContext,
        content_hash: u64,
        steps: usize,
    ) -> &InteractionPlan {
        let mut script = std::mem::take(&mut self.script);
        visit_script_into(content_hash, steps, &mut script);
        self.plan_visit(params, ctx, &script);
        self.script = script;
        &self.plan
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn demo_script() -> Vec<ScriptStep> {
        let mut s = Vec::new();
        visit_script_into(0xfeed_beef_cafe_0001, 7, &mut s);
        s
    }

    #[test]
    fn scripts_are_deterministic_and_start_with_a_click() {
        let mut a = Vec::new();
        let mut b = Vec::new();
        for hash in [1u64, 0xdead_beef, u64::MAX] {
            for steps in [1usize, 4, 9] {
                visit_script_into(hash, steps, &mut a);
                visit_script_into(hash, steps, &mut b);
                assert_eq!(a, b);
                assert_eq!(a.len(), steps);
                assert!(matches!(a[0], ScriptStep::Click { .. }));
            }
        }
        visit_script_into(3, 0, &mut a);
        assert!(a.is_empty());
    }

    #[test]
    fn batched_plan_matches_unbatched_reference() {
        let p = HumanParams::paper_baseline();
        let mut planner = VisitPlanner::new();
        for seed in 0..40u64 {
            let mut script = Vec::new();
            visit_script_into(splitmix64(seed), 2 + (seed % 7) as usize, &mut script);
            let mut ctx = SimContext::new(seed);
            let batched = planner.plan_visit(&p, &mut ctx, &script).clone();
            let mut ref_ctx = SimContext::new(seed);
            let unbatched = plan_visit_unbatched(&p, &mut ref_ctx, &script);
            assert_eq!(batched, unbatched, "seed {seed}");
            for name in ["cursor", "click", "agent", "typing", "scroll"] {
                assert_eq!(
                    ctx.stream(name).gen::<u64>(),
                    ref_ctx.stream(name).gen::<u64>(),
                    "stream {name} diverged at seed {seed}"
                );
            }
        }
    }

    #[test]
    fn plan_actions_index_their_arena_ranges() {
        let p = HumanParams::paper_baseline();
        let mut planner = VisitPlanner::new();
        let mut ctx = SimContext::new(11);
        let plan = planner.plan_visit(&p, &mut ctx, &demo_script());
        let mut s = 0u32;
        let mut k = 0u32;
        let mut w = 0u32;
        let mut t = -1.0f64;
        for a in plan.actions() {
            assert_eq!(a.samples.0, s);
            assert_eq!(a.keys.0, k);
            assert_eq!(a.ticks.0, w);
            assert!(a.samples.1 >= a.samples.0);
            assert!(a.start_ms > t || a.start_ms == 0.0);
            t = a.start_ms;
            s = a.samples.1;
            k = a.keys.1;
            w = a.ticks.1;
        }
        assert_eq!(s as usize, plan.samples().len());
        assert_eq!(k as usize, plan.keys().len());
        assert_eq!(w as usize, plan.ticks().len());
        assert!(plan.total_ms() > 0.0);
    }

    #[test]
    fn reused_planner_reaches_zero_allocation_steady_state() {
        let p = HumanParams::paper_baseline();
        let mut planner = VisitPlanner::new();
        // Warm up over the full variety of scripts the hash space yields.
        for seed in 0..64u64 {
            let mut ctx = SimContext::new(seed);
            planner.plan_site_visit(&p, &mut ctx, splitmix64(seed), 3 + (seed % 6) as usize);
        }
        let caps = planner.capacities();
        // Steady state: replanning the same workload grows nothing.
        for seed in 0..64u64 {
            let mut ctx = SimContext::new(seed);
            planner.plan_site_visit(&p, &mut ctx, splitmix64(seed), 3 + (seed % 6) as usize);
            assert_eq!(
                planner.capacities(),
                caps,
                "arena reallocated at seed {seed}"
            );
        }
    }

    #[test]
    fn successive_visits_differ_but_replay_exactly() {
        let p = HumanParams::paper_baseline();
        let mut planner = VisitPlanner::new();
        let mut ctx_a = SimContext::new(5);
        let a = planner.plan_site_visit(&p, &mut ctx_a, 77, 5).clone();
        let mut ctx_b = SimContext::new(6);
        let b = planner.plan_site_visit(&p, &mut ctx_b, 77, 5).clone();
        assert_ne!(a, b, "different seeds must differ");
        let mut ctx_c = SimContext::new(5);
        let c = planner.plan_site_visit(&p, &mut ctx_c, 77, 5).clone();
        assert_eq!(a, c, "same seed must replay bit-identically");
    }
}
