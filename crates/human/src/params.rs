//! Distribution parameters of the human model.
//!
//! Values the paper states are used directly (600 cpm typing, 57 px wheel
//! tick, interleaving at fast typing); the remaining parameters are set to
//! values consistent with the HCI literature the paper cites (Fitts 1954;
//! Phillips & Triggs 2001 for cursor kinematics; Alves et al. 2007 for
//! pause structure) and documented here so they can be re-fit from real
//! recordings.

use hlisa_stats::TruncatedNormal;

pub(crate) mod params_util {
    use hlisa_stats::rngutil::derive_seed;

    /// Deterministic uniform in [0, 1) for subject trait `index`.
    pub fn unit(subject_seed: u64, index: u64) -> f64 {
        (derive_seed(subject_seed, "subject-trait", index) % 1_000_000) as f64 / 1_000_000.0
    }
}

/// Parameters of the generative human model.
#[derive(Debug, Clone, PartialEq)]
pub struct HumanParams {
    // -- Cursor kinematics --------------------------------------------------
    /// Fitts's-law intercept (ms): `T = a + b·log2(D/W + 1)`.
    pub fitts_a_ms: f64,
    /// Fitts's-law slope (ms/bit).
    pub fitts_b_ms: f64,
    /// Peak perpendicular deviation of the movement curve, as a fraction of
    /// path distance (humans arc their movements).
    pub curve_amplitude_frac: f64,
    /// Standard deviation of per-sample jitter (px) perpendicular to the
    /// path ("moves in a jitterish curved trajectory", §4.1).
    pub jitter_px: f64,
    /// Raw pointer sample interval (ms) — optical mice report at 125 Hz.
    pub pointer_sample_interval_ms: f64,

    // -- Clicks --------------------------------------------------------------
    /// Click placement std dev as a fraction of element width (x-axis).
    /// Humans cluster near, but "hardly ever in", the centre (§4.1).
    pub click_sigma_x_frac: f64,
    /// Click placement std dev as a fraction of element height (y-axis).
    pub click_sigma_y_frac: f64,
    /// Mean click-placement bias (fraction of width, positive = right of
    /// centre; right-handed mouse users land slightly toward the approach
    /// direction).
    pub click_bias_x_frac: f64,
    /// Button dwell time (ms).
    pub click_dwell: TruncatedNormal,
    /// Gap between the clicks of a double click (ms).
    pub double_click_gap: TruncatedNormal,

    // -- Typing ---------------------------------------------------------------
    /// Key dwell time (ms).
    pub key_dwell: TruncatedNormal,
    /// Flight time between keyup and next keydown (ms). The mean is set so
    /// overall speed lands near the paper's measured 600 cpm for
    /// ten-finger typing.
    pub key_flight: TruncatedNormal,
    /// Probability that at fast pace the next key is pressed before the
    /// previous is released ("interleaving key presses", §4.1).
    pub interleave_prob: f64,
    /// Lag-1 autocorrelation of consecutive key dwell deviations. Human
    /// rhythm drifts (tempo, fatigue), so successive dwell times are
    /// serially correlated — the *behavioural consistency* that §4.2's
    /// third detector level tracks and that i.i.d. noise (HLISA's normal
    /// draws) lacks.
    pub dwell_autocorr: f64,
    /// Additional pause after finishing a word (space) — Alves et al.
    pub pause_word: TruncatedNormal,
    /// Additional pause after a comma/semicolon.
    pub pause_comma: TruncatedNormal,
    /// Additional pause after closing a sentence (./!/?).
    pub pause_sentence: TruncatedNormal,

    // -- Scrolling -----------------------------------------------------------
    /// Pause between consecutive wheel ticks within one flick (ms).
    pub scroll_tick_gap: TruncatedNormal,
    /// Ticks per flick before the finger must be repositioned.
    pub scroll_ticks_per_flick_mean: f64,
    /// Longer break while "moving one's finger to continue scrolling the
    /// mouse wheel" (§4.1).
    pub scroll_finger_break: TruncatedNormal,
}

impl HumanParams {
    /// The default parameter set (the paper's single-subject calibration).
    pub fn paper_baseline() -> Self {
        Self {
            fitts_a_ms: 120.0,
            fitts_b_ms: 130.0,
            curve_amplitude_frac: 0.08,
            jitter_px: 1.2,
            pointer_sample_interval_ms: 8.0,

            click_sigma_x_frac: 0.14,
            click_sigma_y_frac: 0.16,
            click_bias_x_frac: 0.02,
            click_dwell: TruncatedNormal::new(85.0, 25.0, 20.0, 250.0),
            double_click_gap: TruncatedNormal::new(180.0, 50.0, 60.0, 450.0),

            key_dwell: TruncatedNormal::new(95.0, 30.0, 25.0, 300.0),
            // 600 cpm = 100 ms/char total; with ~95 ms dwell overlapping
            // flight, a ~100 ms mean flight from keydown to keydown is
            // achieved with flight (up→down) near 10 ms and interleaving.
            key_flight: TruncatedNormal::new(15.0, 45.0, -60.0, 400.0),
            interleave_prob: 0.25,
            dwell_autocorr: 0.6,
            pause_word: TruncatedNormal::new(180.0, 80.0, 30.0, 900.0),
            pause_comma: TruncatedNormal::new(320.0, 120.0, 60.0, 1500.0),
            pause_sentence: TruncatedNormal::new(650.0, 250.0, 120.0, 3000.0),

            scroll_tick_gap: TruncatedNormal::new(140.0, 45.0, 40.0, 500.0),
            scroll_ticks_per_flick_mean: 5.0,
            scroll_finger_break: TruncatedNormal::new(420.0, 130.0, 150.0, 1500.0),
        }
    }

    /// A randomly drawn *individual* within the human population: the
    /// baseline with per-subject offsets on tempo-defining means. Level-2
    /// detectors must model the population (different people type and click
    /// at different tempos); level-4 detectors enrol exactly one of these
    /// individuals.
    pub fn individual(subject_seed: u64) -> Self {
        use params_util::unit;
        let mut p = Self::paper_baseline();
        // ±15 ms dwell-mean offset, correlated ±12 ms click dwell offset
        // (a slow typist is usually a deliberate clicker too).
        let tempo = unit(subject_seed, 0) * 2.0 - 1.0; // -1..1
        let kd_off = tempo * 15.0;
        let cd_off = tempo * 12.0 + (unit(subject_seed, 1) * 2.0 - 1.0) * 4.0;
        let flight_off = tempo * 10.0;
        let gap_off = tempo * 25.0;
        p.key_dwell = TruncatedNormal::new(
            p.key_dwell.mean() + kd_off,
            p.key_dwell.std_dev(),
            p.key_dwell.lo(),
            p.key_dwell.hi(),
        );
        p.click_dwell = TruncatedNormal::new(
            p.click_dwell.mean() + cd_off,
            p.click_dwell.std_dev(),
            p.click_dwell.lo(),
            p.click_dwell.hi(),
        );
        p.key_flight = TruncatedNormal::new(
            p.key_flight.mean() + flight_off,
            p.key_flight.std_dev(),
            p.key_flight.lo(),
            p.key_flight.hi(),
        );
        p.scroll_tick_gap = TruncatedNormal::new(
            p.scroll_tick_gap.mean() + gap_off,
            p.scroll_tick_gap.std_dev(),
            p.scroll_tick_gap.lo(),
            p.scroll_tick_gap.hi(),
        );
        p.click_sigma_x_frac *= 0.85 + unit(subject_seed, 2) * 0.3;
        p.click_sigma_y_frac *= 0.85 + unit(subject_seed, 3) * 0.3;
        p.fitts_b_ms *= 0.9 + unit(subject_seed, 4) * 0.2;
        p
    }

    /// Fitts's-law movement time for distance `d` to a target of width `w`.
    pub fn fitts_duration_ms(&self, d: f64, w: f64) -> f64 {
        let w = w.max(4.0);
        let index_of_difficulty = (d / w + 1.0).log2().max(0.0);
        self.fitts_a_ms + self.fitts_b_ms * index_of_difficulty
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fitts_grows_with_distance() {
        let p = HumanParams::paper_baseline();
        let short = p.fitts_duration_ms(50.0, 40.0);
        let long = p.fitts_duration_ms(1000.0, 40.0);
        assert!(long > short);
        assert!(short >= p.fitts_a_ms);
    }

    #[test]
    fn fitts_grows_with_smaller_targets() {
        let p = HumanParams::paper_baseline();
        assert!(p.fitts_duration_ms(500.0, 10.0) > p.fitts_duration_ms(500.0, 100.0));
    }

    #[test]
    fn fitts_handles_degenerate_width() {
        let p = HumanParams::paper_baseline();
        let t = p.fitts_duration_ms(500.0, 0.0);
        assert!(t.is_finite() && t > 0.0);
    }

    #[test]
    fn individuals_vary_but_stay_plausible() {
        let a = HumanParams::individual(1);
        let b = HumanParams::individual(2);
        assert_ne!(a.key_dwell.mean(), b.key_dwell.mean());
        for s in 0..50u64 {
            let p = HumanParams::individual(s);
            assert!(
                (75.0..120.0).contains(&p.key_dwell.mean()),
                "{}",
                p.key_dwell.mean()
            );
            assert!(p.click_sigma_x_frac > 0.08 && p.click_sigma_x_frac < 0.22);
        }
    }

    #[test]
    fn individual_is_deterministic_per_seed() {
        assert_eq!(HumanParams::individual(9), HumanParams::individual(9));
    }

    #[test]
    fn baseline_dwell_is_positive() {
        let p = HumanParams::paper_baseline();
        assert!(p.click_dwell.lo() > 0.0);
        assert!(p.key_dwell.lo() > 0.0);
    }
}
