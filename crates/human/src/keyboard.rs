//! US-QWERTY keyboard layout: which physical key and modifiers produce a
//! character.
//!
//! §4.1: "while humans need to press modifier keys to press characters like
//! capital letters, Selenium can input any character that exists without
//! pressing additional modifier keys. By monitoring the usage of modifier
//! keys, detectors can infer the keyboard layout". The layout table is what
//! lets HLISA synthesise the Shift presses a human would need — and what
//! lets a detector check consistency between characters and modifiers.

/// How a character is typed on a given layout.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct KeyStrokeSpec {
    /// DOM `key` value of the main key *as emitted* (e.g. `"A"`).
    pub key: String,
    /// Whether Shift must be held.
    pub needs_shift: bool,
}

/// US-QWERTY shifted-symbol pairs: (unshifted, shifted).
const US_SHIFT_PAIRS: &[(char, char)] = &[
    ('1', '!'),
    ('2', '@'),
    ('3', '#'),
    ('4', '$'),
    ('5', '%'),
    ('6', '^'),
    ('7', '&'),
    ('8', '*'),
    ('9', '('),
    ('0', ')'),
    ('-', '_'),
    ('=', '+'),
    ('[', '{'),
    (']', '}'),
    ('\\', '|'),
    (';', ':'),
    ('\'', '"'),
    (',', '<'),
    ('.', '>'),
    ('/', '?'),
    ('`', '~'),
];

/// Resolves how `ch` is typed on US QWERTY. Returns `None` for characters
/// the layout cannot produce with at most a Shift modifier.
pub fn us_qwerty(ch: char) -> Option<KeyStrokeSpec> {
    if ch.is_ascii_lowercase() || ch.is_ascii_digit() || ch == ' ' {
        return Some(KeyStrokeSpec {
            key: ch.to_string(),
            needs_shift: false,
        });
    }
    if ch.is_ascii_uppercase() {
        return Some(KeyStrokeSpec {
            key: ch.to_string(),
            needs_shift: true,
        });
    }
    if ch == '\n' {
        return Some(KeyStrokeSpec {
            key: "Enter".to_string(),
            needs_shift: false,
        });
    }
    if ch == '\t' {
        return Some(KeyStrokeSpec {
            key: "Tab".to_string(),
            needs_shift: false,
        });
    }
    for (plain, shifted) in US_SHIFT_PAIRS {
        if ch == *plain {
            return Some(KeyStrokeSpec {
                key: ch.to_string(),
                needs_shift: false,
            });
        }
        if ch == *shifted {
            return Some(KeyStrokeSpec {
                key: ch.to_string(),
                needs_shift: true,
            });
        }
    }
    None
}

/// True when the character requires Shift on US QWERTY.
pub fn requires_shift(ch: char) -> bool {
    us_qwerty(ch).map(|s| s.needs_shift).unwrap_or(false)
}

/// Compact, allocation-free identity of a key — the `Copy` counterpart of
/// [`KeyStrokeSpec::key`]'s `String`, for plans that must not allocate per
/// key event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KeyId {
    /// A character key; the DOM `key` value is the character itself.
    Char(char),
    /// The Shift modifier.
    Shift,
    /// The Enter key.
    Enter,
    /// The Tab key.
    Tab,
}

impl KeyId {
    /// The DOM `key` value, matching [`us_qwerty`]'s `String` exactly.
    pub fn dom_key(self) -> String {
        match self {
            KeyId::Char(c) => c.to_string(),
            KeyId::Shift => "Shift".to_string(),
            KeyId::Enter => "Enter".to_string(),
            KeyId::Tab => "Tab".to_string(),
        }
    }
}

/// Allocation-free form of [`us_qwerty`]: the emitted key and whether
/// Shift must be held. Agrees with [`us_qwerty`] on every character
/// (pinned by a test): `Some` for the same set, same `needs_shift`, and
/// [`KeyId::dom_key`] equal to [`KeyStrokeSpec::key`].
pub fn us_qwerty_key(ch: char) -> Option<(KeyId, bool)> {
    if ch.is_ascii_lowercase() || ch.is_ascii_digit() || ch == ' ' || ch.is_ascii_uppercase() {
        return Some((KeyId::Char(ch), ch.is_ascii_uppercase()));
    }
    if ch == '\n' {
        return Some((KeyId::Enter, false));
    }
    if ch == '\t' {
        return Some((KeyId::Tab, false));
    }
    for (plain, shifted) in US_SHIFT_PAIRS {
        if ch == *plain {
            return Some((KeyId::Char(ch), false));
        }
        if ch == *shifted {
            return Some((KeyId::Char(ch), true));
        }
    }
    None
}

/// QWERTY letter rows, for physical adjacency.
const QWERTY_ROWS: [&str; 3] = ["qwertyuiop", "asdfghjkl", "zxcvbnm"];

/// A physically adjacent key on US QWERTY — what a slipping finger hits.
/// `pick` selects among the neighbours deterministically. Returns `None`
/// for characters without a letter-row position.
pub fn adjacent_key(ch: char, pick: usize) -> Option<char> {
    let lower = ch.to_ascii_lowercase();
    for (ri, row) in QWERTY_ROWS.iter().enumerate() {
        if let Some(ci) = row.find(lower) {
            let mut neighbors = Vec::new();
            let row_chars: Vec<char> = row.chars().collect();
            if ci > 0 {
                neighbors.push(row_chars[ci - 1]);
            }
            if ci + 1 < row_chars.len() {
                neighbors.push(row_chars[ci + 1]);
            }
            // Row above / below, roughly same column.
            if ri > 0 {
                let above: Vec<char> = QWERTY_ROWS[ri - 1].chars().collect();
                if ci < above.len() {
                    neighbors.push(above[ci]);
                }
            }
            if ri + 1 < QWERTY_ROWS.len() {
                let below: Vec<char> = QWERTY_ROWS[ri + 1].chars().collect();
                if ci < below.len() {
                    neighbors.push(below[ci]);
                }
            }
            if neighbors.is_empty() {
                return None;
            }
            return Some(neighbors[pick % neighbors.len()]);
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lowercase_needs_no_shift() {
        let s = us_qwerty('a').unwrap();
        assert_eq!(s.key, "a");
        assert!(!s.needs_shift);
    }

    #[test]
    fn uppercase_needs_shift() {
        let s = us_qwerty('A').unwrap();
        assert_eq!(s.key, "A");
        assert!(s.needs_shift);
    }

    #[test]
    fn shifted_symbols() {
        assert!(requires_shift('!'));
        assert!(requires_shift('@'));
        assert!(requires_shift('?'));
        assert!(requires_shift('"'));
        assert!(!requires_shift('1'));
        assert!(!requires_shift(','));
        assert!(!requires_shift('\''));
    }

    #[test]
    fn control_characters() {
        assert_eq!(us_qwerty('\n').unwrap().key, "Enter");
        assert_eq!(us_qwerty('\t').unwrap().key, "Tab");
        assert_eq!(us_qwerty(' ').unwrap().key, " ");
    }

    #[test]
    fn unmapped_characters_return_none() {
        assert!(us_qwerty('é').is_none());
        assert!(us_qwerty('€').is_none());
    }

    #[test]
    fn adjacency_is_physical() {
        // 'g' neighbours on QWERTY: f, h, t, b.
        let mut seen = std::collections::HashSet::new();
        for pick in 0..8 {
            if let Some(n) = adjacent_key('g', pick) {
                seen.insert(n);
            }
        }
        for expected in ['f', 'h', 't', 'b'] {
            assert!(seen.contains(&expected), "missing neighbour {expected}");
        }
        assert!(!seen.contains(&'q'));
    }

    #[test]
    fn adjacency_handles_edges_and_non_letters() {
        assert!(adjacent_key('q', 0).is_some());
        assert!(adjacent_key('!', 0).is_none());
        assert!(adjacent_key(' ', 0).is_none());
    }

    #[test]
    fn every_printable_ascii_is_mapped() {
        for b in 0x20u8..=0x7e {
            let ch = b as char;
            assert!(us_qwerty(ch).is_some(), "unmapped printable {ch:?}");
        }
    }

    /// The compact layout query is a faithful projection of [`us_qwerty`]:
    /// same mapped set, same shift requirement, same emitted DOM key.
    #[test]
    fn compact_key_query_agrees_with_string_query() {
        let sweep = (0u8..=0x7f)
            .map(|b| b as char)
            .chain(['é', 'ß', '→', '\u{80}']);
        for ch in sweep {
            match (us_qwerty(ch), us_qwerty_key(ch)) {
                (None, None) => {}
                (Some(spec), Some((id, shift))) => {
                    assert_eq!(spec.needs_shift, shift, "shift mismatch for {ch:?}");
                    assert_eq!(spec.key, id.dom_key(), "key mismatch for {ch:?}");
                }
                (a, b) => panic!("mapped-set mismatch for {ch:?}: {a:?} vs {b:?}"),
            }
        }
    }
}
