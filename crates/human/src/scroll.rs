//! Human wheel scrolling cadence.
//!
//! Appendix E: the subject scrolled a 30,000 px page top to bottom with the
//! mouse wheel at a comfortable pace. The cadence has two time scales:
//! short gaps between ticks within one finger flick, and a longer break
//! when the finger lifts back to the top of the wheel (§4.1: HLISA
//! "incorporates a slightly longer break to account for moving one's
//! finger to continue scrolling").

use crate::params::HumanParams;
use hlisa_sim::SimContext;
use rand::Rng;

/// One planned wheel tick.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PlannedTick {
    /// Offset from scroll start (ms).
    pub at_ms: f64,
    /// +1 scrolls down, −1 scrolls up.
    pub direction: i32,
}

/// Plans the wheel ticks to cover `distance_px` in the given direction
/// (positive = down), given the browser's tick size. Draws from the
/// context's `"scroll"` stream.
pub fn plan_scroll(
    params: &HumanParams,
    ctx: &mut SimContext,
    distance_px: f64,
    tick_px: f64,
) -> Vec<PlannedTick> {
    plan_scroll_with(params, ctx.stream("scroll"), distance_px, tick_px)
}

/// Like [`plan_scroll`], drawing from an explicit RNG stream.
pub fn plan_scroll_with<R: Rng + ?Sized>(
    params: &HumanParams,
    rng: &mut R,
    distance_px: f64,
    tick_px: f64,
) -> Vec<PlannedTick> {
    let mut out = Vec::new();
    plan_scroll_into(params, rng, distance_px, tick_px, &mut out);
    out
}

/// Like [`plan_scroll_with`], filling a caller-supplied buffer instead of
/// allocating. The buffer is cleared first; its capacity survives across
/// calls, so a reused buffer makes scroll planning allocation-free in
/// steady state. Draws and tick values are identical to [`plan_scroll`].
pub fn plan_scroll_into<R: Rng + ?Sized>(
    params: &HumanParams,
    rng: &mut R,
    distance_px: f64,
    tick_px: f64,
    out: &mut Vec<PlannedTick>,
) {
    assert!(tick_px > 0.0, "tick size must be positive");
    out.clear();
    let direction = if distance_px >= 0.0 { 1 } else { -1 };
    let n_ticks = (distance_px.abs() / tick_px).round() as usize;
    out.reserve(n_ticks);
    let mut t = 0.0f64;
    let mut ticks_in_flick = 0usize;
    let mut flick_len = sample_flick_len_with(params, rng);
    for _ in 0..n_ticks {
        out.push(PlannedTick {
            at_ms: t,
            direction,
        });
        ticks_in_flick += 1;
        if ticks_in_flick >= flick_len {
            // Finger repositioning break.
            t += params.scroll_finger_break.sample(rng);
            ticks_in_flick = 0;
            flick_len = sample_flick_len_with(params, rng);
        } else {
            t += params.scroll_tick_gap.sample(rng);
        }
    }
}

/// Streaming equivalent of [`plan_scroll`]: yields the ticks one at a
/// time without materialising a `Vec`, drawing from the context's
/// `"scroll"` stream. Tick values and RNG draw order are bit-identical
/// to [`plan_scroll`] (enforced by a differential test).
pub fn stream_scroll<'r>(
    params: &HumanParams,
    ctx: &'r mut SimContext,
    distance_px: f64,
    tick_px: f64,
) -> ScrollStream<'r, rand::rngs::SmallRng> {
    stream_scroll_with(params, ctx.stream("scroll"), distance_px, tick_px)
}

/// Like [`stream_scroll`], drawing from an explicit RNG stream.
pub fn stream_scroll_with<'r, R: Rng + ?Sized>(
    params: &HumanParams,
    rng: &'r mut R,
    distance_px: f64,
    tick_px: f64,
) -> ScrollStream<'r, R> {
    assert!(tick_px > 0.0, "tick size must be positive");
    let direction = if distance_px >= 0.0 { 1 } else { -1 };
    let n_ticks = (distance_px.abs() / tick_px).round() as usize;
    // The eager planner draws the first flick length before its loop —
    // even when there are zero ticks — so the stream must too.
    let flick_len = sample_flick_len_with(params, rng);
    ScrollStream {
        rng,
        tick_gap: params.scroll_tick_gap,
        finger_break: params.scroll_finger_break,
        flick_mean: params.scroll_ticks_per_flick_mean,
        direction,
        remaining: n_ticks,
        t: 0.0,
        ticks_in_flick: 0,
        flick_len,
    }
}

/// A lazily generated scroll plan (the streaming form of [`plan_scroll`]).
///
/// Each `next()` emits one tick and then advances the clock, drawing the
/// inter-tick gap or finger break *after* every tick — including the
/// last — exactly as the eager planner's loop does, so consuming the
/// stream leaves the RNG in the identical state.
pub struct ScrollStream<'r, R: Rng + ?Sized> {
    rng: &'r mut R,
    tick_gap: hlisa_stats::TruncatedNormal,
    finger_break: hlisa_stats::TruncatedNormal,
    flick_mean: f64,
    direction: i32,
    remaining: usize,
    t: f64,
    ticks_in_flick: usize,
    flick_len: usize,
}

impl<R: Rng + ?Sized> Iterator for ScrollStream<'_, R> {
    type Item = PlannedTick;

    fn next(&mut self) -> Option<PlannedTick> {
        if self.remaining == 0 {
            return None;
        }
        self.remaining -= 1;
        let tick = PlannedTick {
            at_ms: self.t,
            direction: self.direction,
        };
        self.ticks_in_flick += 1;
        if self.ticks_in_flick >= self.flick_len {
            self.t += self.finger_break.sample(self.rng);
            self.ticks_in_flick = 0;
            let sampled = self.flick_mean + self.rng.gen_range(-2.0..2.0);
            self.flick_len = sampled.round().max(1.0) as usize;
        } else {
            self.t += self.tick_gap.sample(self.rng);
        }
        Some(tick)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        (self.remaining, Some(self.remaining))
    }
}

/// Samples how many wheel ticks one finger flick delivers before the
/// finger must be repositioned, drawing from the context's `"scroll"`
/// stream. Shared by the human reference and HLISA so their flick-length
/// distributions cannot drift apart.
pub fn sample_flick_len(params: &HumanParams, ctx: &mut SimContext) -> usize {
    sample_flick_len_with(params, ctx.stream("scroll"))
}

/// Like [`sample_flick_len`], drawing from an explicit RNG stream.
pub fn sample_flick_len_with<R: Rng + ?Sized>(params: &HumanParams, rng: &mut R) -> usize {
    let mean = params.scroll_ticks_per_flick_mean;
    let sampled = mean + rng.gen_range(-2.0..2.0);
    sampled.round().max(1.0) as usize
}

#[cfg(test)]
mod tests {
    use super::*;

    fn plan(distance: f64, seed: u64) -> Vec<PlannedTick> {
        let p = HumanParams::paper_baseline();
        let mut ctx = SimContext::new(seed);
        plan_scroll(&p, &mut ctx, distance, 57.0)
    }

    #[test]
    fn covers_requested_distance_in_ticks() {
        let ticks = plan(5_700.0, 1);
        assert_eq!(ticks.len(), 100);
        assert!(ticks.iter().all(|t| t.direction == 1));
    }

    #[test]
    fn upward_scrolling_flips_direction() {
        let ticks = plan(-570.0, 2);
        assert_eq!(ticks.len(), 10);
        assert!(ticks.iter().all(|t| t.direction == -1));
    }

    #[test]
    fn cadence_has_two_timescales() {
        let ticks = plan(30_000.0, 3);
        let gaps: Vec<f64> = ticks.windows(2).map(|w| w[1].at_ms - w[0].at_ms).collect();
        let short = gaps.iter().filter(|g| **g < 300.0).count();
        let long = gaps.iter().filter(|g| **g >= 300.0).count();
        assert!(short > long, "most gaps are intra-flick");
        assert!(long > 10, "finger breaks must appear on a long scroll");
    }

    #[test]
    fn gaps_are_never_inhumanly_fast() {
        let ticks = plan(10_000.0, 4);
        for w in ticks.windows(2) {
            assert!(w[1].at_ms - w[0].at_ms >= 40.0);
        }
    }

    #[test]
    fn zero_distance_gives_no_ticks() {
        assert!(plan(0.0, 5).is_empty());
    }

    #[test]
    #[should_panic(expected = "tick size")]
    fn rejects_bad_tick() {
        let p = HumanParams::paper_baseline();
        let mut ctx = SimContext::new(6);
        let _ = plan_scroll(&p, &mut ctx, 100.0, 0.0);
    }

    /// The streaming planner is a drop-in replacement: bit-identical ticks
    /// and identical post-RNG state across distances (including zero, whose
    /// up-front flick draw must still happen).
    #[test]
    fn stream_matches_eager_planner_bit_for_bit() {
        let p = HumanParams::paper_baseline();
        for seed in 0..100u64 {
            for distance in [0.0, 57.0, -570.0, 3_000.0, 30_000.0, -12_345.0] {
                let mut eager_ctx = SimContext::new(seed);
                let eager = plan_scroll(&p, &mut eager_ctx, distance, 57.0);
                let mut stream_ctx = SimContext::new(seed);
                let streamed: Vec<PlannedTick> =
                    stream_scroll(&p, &mut stream_ctx, distance, 57.0).collect();
                assert_eq!(streamed, eager, "seed {seed} distance {distance}");
                assert_eq!(
                    eager_ctx.stream("scroll").gen::<u64>(),
                    stream_ctx.stream("scroll").gen::<u64>(),
                    "rng state diverged after seed {seed} distance {distance}"
                );
            }
        }
    }
}
