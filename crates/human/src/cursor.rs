//! Human cursor trajectories.
//!
//! §4.1 (Fig. 1 B): human mouse movement "has an initial acceleration,
//! deceleration near the end of the trajectory, and moves in a jitterish
//! curved trajectory". The generator composes four components:
//!
//! * a *minimum-jerk* velocity profile (the standard model of aimed human
//!   movement): position progress `s(τ) = 10τ³ − 15τ⁴ + 6τ⁵`, giving
//!   smooth acceleration and deceleration;
//! * a curved path: a quadratic Bézier whose control point is displaced
//!   perpendicular to the chord by a sampled arc amplitude;
//! * small perpendicular jitter per sample (tremor), low-pass filtered so
//!   consecutive samples stay correlated like real tremor;
//! * for long movements, an aimed *primary stroke* that lands slightly
//!   off target followed by a brief corrective submovement — the
//!   two-phase kinematics Phillips & Triggs (2001) report for mouse
//!   cursor control.

use crate::params::HumanParams;
use hlisa_browser::Point;
use hlisa_sim::SimContext;
use hlisa_stats::Normal;
use rand::Rng;

/// One raw pointer sample of a generated trajectory.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TrajectorySample {
    /// Offset from movement start (ms).
    pub t_ms: f64,
    /// Page x.
    pub x: f64,
    /// Page y.
    pub y: f64,
}

/// Minimum-jerk progress function: fraction of path completed at normalised
/// time `tau` ∈ [0, 1].
pub fn min_jerk_progress(tau: f64) -> f64 {
    let tau = tau.clamp(0.0, 1.0);
    10.0 * tau.powi(3) - 15.0 * tau.powi(4) + 6.0 * tau.powi(5)
}

/// Generates a human cursor trajectory from `from` to `to` aimed at a
/// target of effective width `target_w`, drawing from the context's
/// `"cursor"` stream.
pub fn generate(
    params: &HumanParams,
    ctx: &mut SimContext,
    from: Point,
    to: Point,
    target_w: f64,
) -> Vec<TrajectorySample> {
    generate_with(params, ctx.stream("cursor"), from, to, target_w)
}

/// Like [`generate`], drawing from an explicit RNG stream. For planners
/// that compose several models on a single stream of their own.
pub fn generate_with<R: Rng + ?Sized>(
    params: &HumanParams,
    rng: &mut R,
    from: Point,
    to: Point,
    target_w: f64,
) -> Vec<TrajectorySample> {
    let dist = from.distance_to(to);
    if dist < 1e-9 {
        return vec![TrajectorySample {
            t_ms: 0.0,
            x: to.x,
            y: to.y,
        }];
    }
    // Duration from Fitts's law, with ±12% natural variation.
    let base = params.fitts_duration_ms(dist, target_w);
    let duration = base * rng.gen_range(0.88..1.12);

    // Long aimed movements land off target first, then correct.
    let two_phase = dist > 250.0 && rng.gen_bool(0.6);
    if !two_phase {
        return single_stroke(params, rng, from, to, duration, 0.0);
    }

    // Primary stroke: aim error along the movement axis, a few percent of
    // the distance (undershoot slightly more likely than overshoot).
    let axis = ((to.x - from.x) / dist, (to.y - from.y) / dist);
    let err_mag =
        (Normal::new(-0.01 * dist, 0.035 * dist).sample(rng)).clamp(-0.12 * dist, 0.12 * dist);
    if err_mag.abs() < 6.0 {
        // Landed close enough that no separate correction is made.
        return single_stroke(params, rng, from, to, duration, 0.0);
    }
    let aim = Point::new(to.x + axis.0 * err_mag, to.y + axis.1 * err_mag);

    let mut samples = single_stroke(params, rng, from, aim, duration * 0.82, 0.0);
    let landing_t = samples.last().map(|s| s.t_ms).unwrap_or(0.0);

    // Perceptual pause before the correction.
    let pause = rng.gen_range(30.0..90.0);

    // Corrective submovement: brief and scaled to the residual error.
    let correction_duration = (70.0 + err_mag.abs() * 1.2).clamp(70.0, 180.0);
    let correction = single_stroke(params, rng, aim, to, correction_duration, landing_t + pause);
    samples.extend(correction.into_iter().skip(1));
    samples
}

/// One min-jerk stroke along a jittered Bézier, starting at `t0`.
fn single_stroke<R: Rng + ?Sized>(
    params: &HumanParams,
    rng: &mut R,
    from: Point,
    to: Point,
    duration: f64,
    t0: f64,
) -> Vec<TrajectorySample> {
    let dist = from.distance_to(to);
    if dist < 1e-9 {
        return vec![TrajectorySample {
            t_ms: t0,
            x: to.x,
            y: to.y,
        }];
    }
    // Curve: perpendicular displacement of the Bézier control point.
    let amp_sigma = params.curve_amplitude_frac * dist;
    let amp = Normal::new(0.0, amp_sigma).sample(rng)
        + amp_sigma * if rng.gen_bool(0.5) { 1.0 } else { -1.0 };
    let (px, py) = perpendicular(from, to);
    let mid = from.lerp(to, 0.5);
    let control = Point::new(mid.x + px * amp, mid.y + py * amp);

    let n = ((duration / params.pointer_sample_interval_ms).ceil() as usize).max(3);
    let jitter_dist = Normal::new(0.0, params.jitter_px);
    let mut samples = Vec::with_capacity(n + 1);
    let mut tremor = 0.0f64;
    for i in 0..=n {
        let tau = i as f64 / n as f64;
        let s = min_jerk_progress(tau);
        let p = quad_bezier(from, control, to, s);
        // Tremor: AR(1)-filtered perpendicular noise, zero at the endpoints
        // (the hand is anchored at press/landing).
        tremor = 0.7 * tremor + 0.3 * jitter_dist.sample(rng);
        let envelope = (std::f64::consts::PI * tau).sin();
        let (jx, jy) = (px * tremor * envelope, py * tremor * envelope);
        samples.push(TrajectorySample {
            t_ms: t0 + tau * duration,
            x: p.x + jx,
            y: p.y + jy,
        });
    }
    // Land exactly on the intended point (aim error is applied by the
    // click model or the two-phase composition, not per stroke).
    if let Some(last) = samples.last_mut() {
        last.x = to.x;
        last.y = to.y;
    }
    samples
}

fn quad_bezier(a: Point, c: Point, b: Point, t: f64) -> Point {
    let u = 1.0 - t;
    Point::new(
        u * u * a.x + 2.0 * u * t * c.x + t * t * b.x,
        u * u * a.y + 2.0 * u * t * c.y + t * t * b.y,
    )
}

/// Unit vector perpendicular to the chord from `a` to `b`.
fn perpendicular(a: Point, b: Point) -> (f64, f64) {
    let dx = b.x - a.x;
    let dy = b.y - a.y;
    let len = (dx * dx + dy * dy).sqrt().max(1e-12);
    (-dy / len, dx / len)
}

/// Path metrics used by tests and detectors.
pub mod metrics {
    use super::TrajectorySample;

    /// Total arc length of the trajectory (px).
    pub fn path_length(samples: &[TrajectorySample]) -> f64 {
        samples
            .windows(2)
            .map(|w| ((w[1].x - w[0].x).powi(2) + (w[1].y - w[0].y).powi(2)).sqrt())
            .sum()
    }

    /// Straight-line distance start → end (px).
    pub fn chord_length(samples: &[TrajectorySample]) -> f64 {
        match (samples.first(), samples.last()) {
            (Some(a), Some(b)) => ((b.x - a.x).powi(2) + (b.y - a.y).powi(2)).sqrt(),
            _ => 0.0,
        }
    }

    /// Straightness ratio: chord / path (1.0 = perfectly straight).
    pub fn straightness(samples: &[TrajectorySample]) -> f64 {
        let p = path_length(samples);
        if p == 0.0 {
            1.0
        } else {
            chord_length(samples) / p
        }
    }

    /// Per-segment speeds (px/ms).
    pub fn speeds(samples: &[TrajectorySample]) -> Vec<f64> {
        samples
            .windows(2)
            .filter(|w| w[1].t_ms > w[0].t_ms)
            .map(|w| {
                let d = ((w[1].x - w[0].x).powi(2) + (w[1].y - w[0].y).powi(2)).sqrt();
                d / (w[1].t_ms - w[0].t_ms)
            })
            .collect()
    }

    /// True when the trajectory shows a two-phase (primary + corrective)
    /// structure: a near-stop well after the start followed by renewed
    /// movement.
    pub fn has_submovement(samples: &[TrajectorySample]) -> bool {
        let speeds = speeds(samples);
        if speeds.len() < 8 {
            return false;
        }
        let peak = speeds.iter().copied().fold(0.0, f64::max);
        if peak <= 0.0 {
            return false;
        }
        // Look for a valley (near-stop) well inside the trajectory with
        // meaningful absolute movement after it.
        let n = speeds.len();
        for i in n / 3..n.saturating_sub(2) {
            if speeds[i] < (0.12 * peak).max(0.15) {
                let after_peak = speeds[i + 1..].iter().copied().fold(0.0, f64::max);
                if after_peak > 0.35 {
                    return true;
                }
            }
        }
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn traj(seed: u64) -> Vec<TrajectorySample> {
        let p = HumanParams::paper_baseline();
        let mut ctx = SimContext::new(seed);
        generate(
            &p,
            &mut ctx,
            Point::new(100.0, 500.0),
            Point::new(900.0, 300.0),
            40.0,
        )
    }

    #[test]
    fn min_jerk_boundary_conditions() {
        assert!(min_jerk_progress(0.0).abs() < 1e-12);
        assert!((min_jerk_progress(1.0) - 1.0).abs() < 1e-12);
        assert!(min_jerk_progress(0.5) > 0.45 && min_jerk_progress(0.5) < 0.55);
        // Monotone non-decreasing.
        let mut prev = 0.0;
        for i in 0..=100 {
            let v = min_jerk_progress(i as f64 / 100.0);
            assert!(v >= prev - 1e-12);
            prev = v;
        }
    }

    #[test]
    fn trajectory_starts_and_ends_at_endpoints() {
        let t = traj(1);
        let first = t.first().unwrap();
        let last = t.last().unwrap();
        assert!((first.x - 100.0).abs() < 3.0 && (first.y - 500.0).abs() < 3.0);
        assert_eq!((last.x, last.y), (900.0, 300.0));
    }

    #[test]
    fn trajectory_is_curved_not_straight() {
        let t = traj(2);
        let s = metrics::straightness(&t);
        assert!(s < 0.9999, "suspiciously straight: {s}");
        assert!(s > 0.75, "unreasonably wiggly: {s}");
    }

    #[test]
    fn speed_profile_accelerates_then_decelerates() {
        // Use a short movement (always single-stroke) for a clean profile.
        let p = HumanParams::paper_baseline();
        let mut ctx = SimContext::new(3);
        let t = generate(
            &p,
            &mut ctx,
            Point::new(0.0, 0.0),
            Point::new(200.0, 60.0),
            40.0,
        );
        let speeds = metrics::speeds(&t);
        let n = speeds.len();
        let first_quarter: f64 = speeds[..n / 4].iter().sum::<f64>() / (n / 4) as f64;
        let middle: f64 = speeds[n * 3 / 8..n * 5 / 8].iter().sum::<f64>() / (n / 4).max(1) as f64;
        let last_quarter: f64 = speeds[n * 3 / 4..].iter().sum::<f64>() / (n - n * 3 / 4) as f64;
        assert!(middle > first_quarter * 1.5, "no acceleration phase");
        assert!(middle > last_quarter * 1.5, "no deceleration phase");
    }

    #[test]
    fn long_movements_often_have_corrective_submovements() {
        let with = (0..40)
            .filter(|s| metrics::has_submovement(&traj(*s)))
            .count();
        assert!(
            (10..=38).contains(&with),
            "{with}/40 trajectories had submovements"
        );
    }

    #[test]
    fn short_movements_stay_single_stroke() {
        let p = HumanParams::paper_baseline();
        for seed in 0..20 {
            let mut ctx = SimContext::new(seed);
            let t = generate(
                &p,
                &mut ctx,
                Point::new(0.0, 0.0),
                Point::new(120.0, 40.0),
                40.0,
            );
            assert!(
                !metrics::has_submovement(&t),
                "short move grew a submovement at seed {seed}"
            );
        }
    }

    #[test]
    fn duration_respects_fitts_scaling() {
        let p = HumanParams::paper_baseline();
        let mut ctx = SimContext::new(4);
        let near = generate(
            &p,
            &mut ctx,
            Point::new(0.0, 0.0),
            Point::new(50.0, 0.0),
            40.0,
        );
        let far = generate(
            &p,
            &mut ctx,
            Point::new(0.0, 0.0),
            Point::new(1200.0, 0.0),
            40.0,
        );
        assert!(far.last().unwrap().t_ms > near.last().unwrap().t_ms);
    }

    #[test]
    fn zero_distance_returns_single_sample() {
        let p = HumanParams::paper_baseline();
        let mut ctx = SimContext::new(5);
        let t = generate(
            &p,
            &mut ctx,
            Point::new(5.0, 5.0),
            Point::new(5.0, 5.0),
            40.0,
        );
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn different_seeds_give_different_paths() {
        let a = traj(10);
        let b = traj(11);
        // Same endpoints but different intermediate shapes.
        let mid_a = &a[a.len() / 2];
        let mid_b = &b[b.len() / 2];
        assert!(
            (mid_a.x - mid_b.x).abs() + (mid_a.y - mid_b.y).abs() > 0.5,
            "replayed path — humans never retrace exactly"
        );
    }

    #[test]
    fn timestamps_strictly_increase() {
        for seed in 0..20 {
            let t = traj(seed);
            for w in t.windows(2) {
                assert!(w[1].t_ms > w[0].t_ms, "seed {seed}");
            }
        }
    }
}
