//! Human cursor trajectories.
//!
//! §4.1 (Fig. 1 B): human mouse movement "has an initial acceleration,
//! deceleration near the end of the trajectory, and moves in a jitterish
//! curved trajectory". The generator composes four components:
//!
//! * a *minimum-jerk* velocity profile (the standard model of aimed human
//!   movement): position progress `s(τ) = 10τ³ − 15τ⁴ + 6τ⁵`, giving
//!   smooth acceleration and deceleration;
//! * a curved path: a quadratic Bézier whose control point is displaced
//!   perpendicular to the chord by a sampled arc amplitude;
//! * small perpendicular jitter per sample (tremor), low-pass filtered so
//!   consecutive samples stay correlated like real tremor;
//! * for long movements, an aimed *primary stroke* that lands slightly
//!   off target followed by a brief corrective submovement — the
//!   two-phase kinematics Phillips & Triggs (2001) report for mouse
//!   cursor control.

use crate::params::HumanParams;
use hlisa_browser::Point;
use hlisa_sim::SimContext;
use hlisa_stats::Normal;
use rand::Rng;

/// One raw pointer sample of a generated trajectory.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TrajectorySample {
    /// Offset from movement start (ms).
    pub t_ms: f64,
    /// Page x.
    pub x: f64,
    /// Page y.
    pub y: f64,
}

/// Minimum-jerk progress function: fraction of path completed at normalised
/// time `tau` ∈ [0, 1].
pub fn min_jerk_progress(tau: f64) -> f64 {
    let tau = tau.clamp(0.0, 1.0);
    10.0 * tau.powi(3) - 15.0 * tau.powi(4) + 6.0 * tau.powi(5)
}

/// The RNG-free factors of one stroke sample: normalised time, minimum-jerk
/// progress, and the tremor envelope. These depend only on `(i, n)`, never
/// on the draw, so strokes with equal sample counts can share one
/// precomputed row instead of re-evaluating the polynomial and the sine per
/// sample.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BasisSample {
    /// Normalised time `i / n`.
    pub tau: f64,
    /// [`min_jerk_progress`] at `tau`.
    pub s: f64,
    /// `sin(π·tau)`, the tremor envelope at `tau`.
    pub envelope: f64,
}

/// Largest per-stroke sample count served from the shared basis tables.
/// With the baseline 8 ms sample interval this covers strokes up to
/// ~1.5 s; longer (rare) strokes fall back to direct evaluation.
const BASIS_SHARED_MAX_N: usize = 192;

static BASIS_ROWS: std::sync::OnceLock<Vec<Vec<BasisSample>>> = std::sync::OnceLock::new();

/// Evaluates one basis row directly — the exact expressions the sample
/// loop historically inlined, so table and fallback are bit-identical.
fn compute_basis_row(n: usize) -> Vec<BasisSample> {
    (0..=n)
        .map(|i| {
            let tau = i as f64 / n as f64;
            BasisSample {
                tau,
                s: min_jerk_progress(tau),
                envelope: (std::f64::consts::PI * tau).sin(),
            }
        })
        .collect()
}

/// The sample basis backing one stroke: a shared static row for common
/// sample counts, an owned row beyond the cache bound.
pub(crate) enum StrokeBasis {
    /// Served from the process-wide table.
    Shared(&'static [BasisSample]),
    /// Computed for this stroke alone (`n` above the cache bound).
    Owned(Vec<BasisSample>),
}

impl StrokeBasis {
    /// The basis for an `n`-sample stroke (`n` panels, `n + 1` samples).
    pub(crate) fn for_stroke(n: usize) -> Self {
        if n <= BASIS_SHARED_MAX_N {
            let rows = BASIS_ROWS.get_or_init(|| {
                // Row k is for k-panel strokes; rows 0..3 are unused (the
                // generators clamp n to ≥ 3) but kept so the row index is
                // the sample count itself.
                (0..=BASIS_SHARED_MAX_N).map(compute_basis_row).collect()
            });
            StrokeBasis::Shared(&rows[n])
        } else {
            StrokeBasis::Owned(compute_basis_row(n))
        }
    }

    /// The factors of sample `i`.
    pub(crate) fn get(&self, i: usize) -> BasisSample {
        match self {
            StrokeBasis::Shared(row) => row[i],
            StrokeBasis::Owned(row) => row[i],
        }
    }

    /// Fused evaluate-row-into-buffer path: the basis row for an `n`-panel
    /// stroke as a contiguous slice, without a per-stroke allocation. Rows
    /// within the shared bound come straight from the process-wide table;
    /// longer rows are evaluated into `spill`, a caller-retained buffer
    /// whose capacity survives across strokes. The values are identical to
    /// [`StrokeBasis::for_stroke`] + [`StrokeBasis::get`] in every case
    /// (same [`compute_basis_row`] expressions).
    pub(crate) fn row_into(n: usize, spill: &mut Vec<BasisSample>) -> &[BasisSample] {
        if n <= BASIS_SHARED_MAX_N {
            let rows = BASIS_ROWS
                .get_or_init(|| (0..=BASIS_SHARED_MAX_N).map(compute_basis_row).collect());
            &rows[n]
        } else {
            spill.clear();
            spill.extend((0..=n).map(|i| {
                let tau = i as f64 / n as f64;
                BasisSample {
                    tau,
                    s: min_jerk_progress(tau),
                    envelope: (std::f64::consts::PI * tau).sin(),
                }
            }));
            spill
        }
    }
}

/// Draws a stroke's AR(1)-filtered tremor values in one batched pass:
/// first a tight fill loop of raw jitter draws (front to back, one
/// [`Normal::sample`] per slot — the batched form of the historic
/// per-sample draw), then the in-place recurrence
/// `tremor_i = 0.7·tremor_{i-1} + 0.3·jitter_i` with `tremor_{-1} = 0`,
/// evaluated with exactly the expression the per-sample loop used. Values
/// and post-fill RNG state are therefore bit-identical to drawing one
/// jitter inside the sample loop (pinned by a differential test).
fn fill_tremor<R: Rng + ?Sized>(rng: &mut R, jitter: &Normal, out: &mut [f64]) {
    // Split-phase polar fill: the rejection draws run in a tight RNG-only
    // loop, the ln/sqrt transform runs over the dense accepted block — same
    // draws, same values, same post state as a per-slot `sample` loop.
    jitter.fill_samples(rng, out);
    let mut tremor = 0.0f64;
    for slot in out {
        tremor = 0.7 * tremor + 0.3 * *slot;
        *slot = tremor;
    }
}

/// Generates a human cursor trajectory from `from` to `to` aimed at a
/// target of effective width `target_w`, drawing from the context's
/// `"cursor"` stream.
pub fn generate(
    params: &HumanParams,
    ctx: &mut SimContext,
    from: Point,
    to: Point,
    target_w: f64,
) -> Vec<TrajectorySample> {
    generate_with(params, ctx.stream("cursor"), from, to, target_w)
}

/// Streaming equivalent of [`generate`]: yields the samples one at a time
/// without materialising a `Vec`, drawing from the context's `"cursor"`
/// stream. Sample values and RNG draw order are bit-identical to
/// [`generate`] (enforced by a differential test), so a driver can switch
/// between the two without changing any observable output.
pub fn stream<'r>(
    params: &HumanParams,
    ctx: &'r mut SimContext,
    from: Point,
    to: Point,
    target_w: f64,
) -> TrajectoryStream<'r, rand::rngs::SmallRng> {
    stream_with(params, ctx.stream("cursor"), from, to, target_w)
}

/// Like [`stream`], drawing from an explicit RNG stream.
pub fn stream_with<'r, R: Rng + ?Sized>(
    params: &HumanParams,
    rng: &'r mut R,
    from: Point,
    to: Point,
    target_w: f64,
) -> TrajectoryStream<'r, R> {
    TrajectoryStream::new(params, rng, from, to, target_w)
}

/// A lazily generated trajectory (the streaming form of [`generate`]).
///
/// The RNG draw *order* of the eager generator is preserved exactly:
/// structural draws (duration factor, two-phase decision, aim error) and
/// the primary stroke's curve amplitude happen at construction; each
/// emitted sample draws its own jitter; the correction pause, the
/// correction stroke's amplitude, and the correction's suppressed first
/// sample (the eager path's `.skip(1)` — its jitter *is* drawn) happen
/// between the two strokes. Consuming the whole stream therefore leaves
/// the RNG in the identical state the eager generator would.
pub struct TrajectoryStream<'r, R: Rng + ?Sized> {
    rng: &'r mut R,
    jitter: Normal,
    interval_ms: f64,
    amp_frac: f64,
    state: StreamState,
}

// The `Stroke` variant's inline tremor buffer dwarfs the other variants;
// boxing it would cost the one-allocation-per-movement the streaming path
// exists to avoid.
#[allow(clippy::large_enum_variant)]
enum StreamState {
    /// Zero-distance movement: one sample, no draws.
    Point(TrajectorySample),
    /// One or two strokes in flight.
    Stroke {
        stroke: StrokeState,
        correction: Option<PendingCorrection>,
    },
    Done,
}

/// The corrective submovement planned but not yet started (its pause and
/// amplitude draws must wait until the primary stroke has finished, to
/// match the eager draw order).
struct PendingCorrection {
    from: Point,
    to: Point,
    duration: f64,
}

/// One min-jerk stroke being emitted sample by sample.
struct StrokeState {
    from: Point,
    control: Point,
    to: Point,
    duration: f64,
    t0: f64,
    n: usize,
    next_i: usize,
    tremor: f64,
    px: f64,
    py: f64,
    /// Shared per-sample basis (tau, progress, envelope) for this `n`.
    basis: StrokeBasis,
    /// Batched tremor values, filled at `begin` when `n` fits the shared
    /// bound (`batched`); longer strokes draw per sample instead. Either
    /// way the draw sequence is identical — batching only moves the
    /// draws to construction time, and nothing else draws from the
    /// stream while a stroke is in flight. Inline (not heap) so the
    /// streaming path keeps its zero-per-movement-allocation property.
    tremor_buf: [f64; BASIS_SHARED_MAX_N + 1],
    batched: bool,
    /// Degenerate zero-distance stroke: one sample, no draws.
    degenerate: bool,
}

impl StrokeState {
    /// Mirrors the head of [`single_stroke`]: draws the curve amplitude
    /// (unless degenerate), then the batched tremor fill, and fixes the
    /// geometry.
    #[allow(clippy::too_many_arguments)]
    fn begin<R: Rng + ?Sized>(
        amp_frac: f64,
        interval_ms: f64,
        rng: &mut R,
        jitter: &Normal,
        from: Point,
        to: Point,
        duration: f64,
        t0: f64,
    ) -> Self {
        let dist = from.distance_to(to);
        if dist < 1e-9 {
            return Self {
                from,
                control: to,
                to,
                duration: 0.0,
                t0,
                n: 0,
                next_i: 0,
                tremor: 0.0,
                px: 0.0,
                py: 0.0,
                basis: StrokeBasis::Owned(Vec::new()),
                tremor_buf: [0.0; BASIS_SHARED_MAX_N + 1],
                batched: false,
                degenerate: true,
            };
        }
        let amp_sigma = amp_frac * dist;
        let amp = Normal::new(0.0, amp_sigma).sample(rng)
            + amp_sigma * if rng.gen_bool(0.5) { 1.0 } else { -1.0 };
        let (px, py) = perpendicular(from, to);
        let mid = from.lerp(to, 0.5);
        let control = Point::new(mid.x + px * amp, mid.y + py * amp);
        let n = ((duration / interval_ms).ceil() as usize).max(3);
        let mut tremor_buf = [0.0f64; BASIS_SHARED_MAX_N + 1];
        let batched = n <= BASIS_SHARED_MAX_N;
        if batched {
            fill_tremor(rng, jitter, &mut tremor_buf[..=n]);
        }
        Self {
            from,
            control,
            to,
            duration,
            t0,
            n,
            next_i: 0,
            tremor: 0.0,
            px,
            py,
            basis: StrokeBasis::for_stroke(n),
            tremor_buf,
            batched,
            degenerate: false,
        }
    }

    /// The timestamp of the stroke's final sample.
    fn end_t(&self) -> f64 {
        if self.degenerate {
            self.t0
        } else {
            self.t0 + self.duration
        }
    }

    /// Emits the next sample, drawing its jitter — the loop body of
    /// [`single_stroke`], one iteration at a time.
    fn emit<R: Rng + ?Sized>(&mut self, rng: &mut R, jitter: &Normal) -> Option<TrajectorySample> {
        if self.degenerate {
            if self.next_i > 0 {
                return None;
            }
            self.next_i = 1;
            return Some(TrajectorySample {
                t_ms: self.t0,
                x: self.to.x,
                y: self.to.y,
            });
        }
        if self.next_i > self.n {
            return None;
        }
        let i = self.next_i;
        self.next_i += 1;
        let BasisSample { tau, s, envelope } = self.basis.get(i);
        let p = quad_bezier(self.from, self.control, self.to, s);
        self.tremor = if self.batched {
            self.tremor_buf[i]
        } else {
            0.7 * self.tremor + 0.3 * jitter.sample(rng)
        };
        if i == self.n {
            // The eager stroke overwrites its last sample with the exact
            // endpoint after drawing the (unused) final jitter.
            return Some(TrajectorySample {
                t_ms: self.t0 + self.duration,
                x: self.to.x,
                y: self.to.y,
            });
        }
        Some(TrajectorySample {
            t_ms: self.t0 + tau * self.duration,
            x: p.x + self.px * self.tremor * envelope,
            y: p.y + self.py * self.tremor * envelope,
        })
    }
}

impl<'r, R: Rng + ?Sized> TrajectoryStream<'r, R> {
    fn new(params: &HumanParams, rng: &'r mut R, from: Point, to: Point, target_w: f64) -> Self {
        let jitter = Normal::new(0.0, params.jitter_px);
        let interval_ms = params.pointer_sample_interval_ms;
        let amp_frac = params.curve_amplitude_frac;

        let dist = from.distance_to(to);
        if dist < 1e-9 {
            return Self {
                rng,
                jitter,
                interval_ms,
                amp_frac,
                state: StreamState::Point(TrajectorySample {
                    t_ms: 0.0,
                    x: to.x,
                    y: to.y,
                }),
            };
        }
        let base = params.fitts_duration_ms(dist, target_w);
        let duration = base * rng.gen_range(0.88..1.12);

        let two_phase = dist > 250.0 && rng.gen_bool(0.6);
        let mut correction = None;
        let mut primary = (from, to, duration);
        if two_phase {
            let axis = ((to.x - from.x) / dist, (to.y - from.y) / dist);
            let err_mag = (Normal::new(-0.01 * dist, 0.035 * dist).sample(rng))
                .clamp(-0.12 * dist, 0.12 * dist);
            if err_mag.abs() >= 6.0 {
                let aim = Point::new(to.x + axis.0 * err_mag, to.y + axis.1 * err_mag);
                let correction_duration = (70.0 + err_mag.abs() * 1.2).clamp(70.0, 180.0);
                primary = (from, aim, duration * 0.82);
                correction = Some(PendingCorrection {
                    from: aim,
                    to,
                    duration: correction_duration,
                });
            }
        }
        let stroke = StrokeState::begin(
            amp_frac,
            interval_ms,
            rng,
            &jitter,
            primary.0,
            primary.1,
            primary.2,
            0.0,
        );
        Self {
            rng,
            jitter,
            interval_ms,
            amp_frac,
            state: StreamState::Stroke { stroke, correction },
        }
    }
}

impl<R: Rng + ?Sized> Iterator for TrajectoryStream<'_, R> {
    type Item = TrajectorySample;

    fn next(&mut self) -> Option<TrajectorySample> {
        loop {
            match &mut self.state {
                StreamState::Done => return None,
                StreamState::Point(sample) => {
                    let s = *sample;
                    self.state = StreamState::Done;
                    return Some(s);
                }
                StreamState::Stroke { stroke, correction } => {
                    if let Some(s) = stroke.emit(&mut *self.rng, &self.jitter) {
                        return Some(s);
                    }
                    let Some(c) = correction.take() else {
                        self.state = StreamState::Done;
                        return None;
                    };
                    // Between strokes: pause, correction amplitude, and the
                    // correction's suppressed first sample — exactly the
                    // eager path's draws around `.skip(1)`.
                    let landing_t = stroke.end_t();
                    let pause = self.rng.gen_range(30.0..90.0);
                    let mut next_stroke = StrokeState::begin(
                        self.amp_frac,
                        self.interval_ms,
                        &mut *self.rng,
                        &self.jitter,
                        c.from,
                        c.to,
                        c.duration,
                        landing_t + pause,
                    );
                    let _ = next_stroke.emit(&mut *self.rng, &self.jitter);
                    *stroke = next_stroke;
                }
            }
        }
    }
}

/// Reusable working memory for the fixed-capacity stroke kernel.
///
/// The common case (every stroke the Fitts model can produce at the 8 ms
/// sample interval) runs entirely out of the inline tremor buffer and the
/// shared basis table — no heap traffic at all. Strokes past
/// [`BASIS_SHARED_MAX_N`] spill to the two retained `Vec`s, which allocate
/// once and keep their capacity across calls, so steady-state synthesis
/// performs zero allocations regardless of stroke length.
#[derive(Debug, Clone)]
pub struct StrokeScratch {
    /// Inline tremor buffer covering every shared-basis stroke.
    tremor_inline: [f64; BASIS_SHARED_MAX_N + 1],
    /// Heap spill for tremor values of strokes past the shared bound.
    tremor_spill: Vec<f64>,
    /// Heap spill for basis rows of strokes past the shared bound.
    basis_spill: Vec<BasisSample>,
}

impl StrokeScratch {
    /// A fresh scratch with empty spill buffers.
    pub fn new() -> Self {
        Self {
            tremor_inline: [0.0; BASIS_SHARED_MAX_N + 1],
            tremor_spill: Vec::new(),
            basis_spill: Vec::new(),
        }
    }

    /// Current heap capacities `(tremor spill, basis spill)`. A reused
    /// scratch whose capacities stop changing performs no further
    /// allocations — tests and benches assert steady state through this.
    pub fn spill_capacities(&self) -> (usize, usize) {
        (self.tremor_spill.capacity(), self.basis_spill.capacity())
    }
}

impl Default for StrokeScratch {
    fn default() -> Self {
        Self::new()
    }
}

/// Like [`generate`], drawing from an explicit RNG stream. For planners
/// that compose several models on a single stream of their own.
///
/// This is a convenience wrapper over [`synthesize_into`] with a fresh
/// scratch and output buffer; hot paths should hold a [`StrokeScratch`]
/// and a reused `Vec` and call the kernel directly.
pub fn generate_with<R: Rng + ?Sized>(
    params: &HumanParams,
    rng: &mut R,
    from: Point,
    to: Point,
    target_w: f64,
) -> Vec<TrajectorySample> {
    let mut out = Vec::new();
    let mut scratch = StrokeScratch::new();
    synthesize_into(params, rng, from, to, target_w, &mut scratch, &mut out);
    out
}

/// The movement kernel: appends a full cursor movement to `out`, reusing
/// `scratch` for all intermediate storage.
///
/// Draw order, sample values, and post-RNG state are bit-identical to the
/// historic eager generator (retained as [`reference::generate_with`] and
/// pinned by differential tests): structural draws (duration factor,
/// two-phase decision, aim error), then per stroke the curve amplitude and
/// the batched tremor fill. Appending (rather than clearing) is what lets a
/// visit-level planner lay every movement of an action chain into one
/// arena.
pub fn synthesize_into<R: Rng + ?Sized>(
    params: &HumanParams,
    rng: &mut R,
    from: Point,
    to: Point,
    target_w: f64,
    scratch: &mut StrokeScratch,
    out: &mut Vec<TrajectorySample>,
) {
    let dist = from.distance_to(to);
    if dist < 1e-9 {
        out.push(TrajectorySample {
            t_ms: 0.0,
            x: to.x,
            y: to.y,
        });
        return;
    }
    // Duration from Fitts's law, with ±12% natural variation.
    let base = params.fitts_duration_ms(dist, target_w);
    let duration = base * rng.gen_range(0.88..1.12);

    // Long aimed movements land off target first, then correct.
    let two_phase = dist > 250.0 && rng.gen_bool(0.6);
    if !two_phase {
        stroke_into(params, rng, from, to, duration, 0.0, scratch, out, false);
        return;
    }

    // Primary stroke: aim error along the movement axis, a few percent of
    // the distance (undershoot slightly more likely than overshoot).
    let axis = ((to.x - from.x) / dist, (to.y - from.y) / dist);
    let err_mag =
        (Normal::new(-0.01 * dist, 0.035 * dist).sample(rng)).clamp(-0.12 * dist, 0.12 * dist);
    if err_mag.abs() < 6.0 {
        // Landed close enough that no separate correction is made.
        stroke_into(params, rng, from, to, duration, 0.0, scratch, out, false);
        return;
    }
    let aim = Point::new(to.x + axis.0 * err_mag, to.y + axis.1 * err_mag);

    let base_len = out.len();
    stroke_into(
        params,
        rng,
        from,
        aim,
        duration * 0.82,
        0.0,
        scratch,
        out,
        false,
    );
    let landing_t = out[base_len..].last().map(|s| s.t_ms).unwrap_or(0.0);

    // Perceptual pause before the correction.
    let pause = rng.gen_range(30.0..90.0);

    // Corrective submovement: brief and scaled to the residual error. The
    // eager generator dropped the correction's first sample (it coincides
    // with the primary's landing) *after* drawing its jitter; `skip_first`
    // reproduces exactly that.
    let correction_duration = (70.0 + err_mag.abs() * 1.2).clamp(70.0, 180.0);
    stroke_into(
        params,
        rng,
        aim,
        to,
        correction_duration,
        landing_t + pause,
        scratch,
        out,
        true,
    );
}

/// One min-jerk stroke along a jittered Bézier, starting at `t0`.
///
/// Wrapper over [`stroke_into`] kept for the differential tests.
#[cfg(test)]
fn single_stroke<R: Rng + ?Sized>(
    params: &HumanParams,
    rng: &mut R,
    from: Point,
    to: Point,
    duration: f64,
    t0: f64,
) -> Vec<TrajectorySample> {
    let mut out = Vec::new();
    let mut scratch = StrokeScratch::new();
    stroke_into(
        params,
        rng,
        from,
        to,
        duration,
        t0,
        &mut scratch,
        &mut out,
        false,
    );
    out
}

/// The stroke kernel: appends one min-jerk stroke to `out`.
///
/// Draw schedule (identical to the historic inline loop): curve amplitude
/// (one normal + one bool), then the `n + 1` tremor jitters, batched into
/// the scratch buffer by the split-phase fill. Within a stroke nothing else
/// draws, so front-loading the jitter draws preserves both values and
/// post-RNG state; the combine loop below is draw-free and iterates two
/// dense slices (basis row, tremor values) in lockstep — a
/// structure-of-arrays pass the compiler can pipeline.
///
/// `skip_first` drops sample 0 from the output while still drawing its
/// jitter (the eager two-phase composition's `.skip(1)` on the correction
/// stroke).
#[allow(clippy::too_many_arguments)]
fn stroke_into<R: Rng + ?Sized>(
    params: &HumanParams,
    rng: &mut R,
    from: Point,
    to: Point,
    duration: f64,
    t0: f64,
    scratch: &mut StrokeScratch,
    out: &mut Vec<TrajectorySample>,
    skip_first: bool,
) {
    let dist = from.distance_to(to);
    if dist < 1e-9 {
        if !skip_first {
            out.push(TrajectorySample {
                t_ms: t0,
                x: to.x,
                y: to.y,
            });
        }
        return;
    }
    // Curve: perpendicular displacement of the Bézier control point.
    let amp_sigma = params.curve_amplitude_frac * dist;
    let amp = Normal::new(0.0, amp_sigma).sample(rng)
        + amp_sigma * if rng.gen_bool(0.5) { 1.0 } else { -1.0 };
    let (px, py) = perpendicular(from, to);
    let mid = from.lerp(to, 0.5);
    let control = Point::new(mid.x + px * amp, mid.y + py * amp);

    let n = ((duration / params.pointer_sample_interval_ms).ceil() as usize).max(3);
    let jitter_dist = Normal::new(0.0, params.jitter_px);

    let StrokeScratch {
        tremor_inline,
        tremor_spill,
        basis_spill,
    } = scratch;
    // Tremor: AR(1)-filtered perpendicular noise, zero at the endpoints
    // (the hand is anchored at press/landing). All `n + 1` jitter draws
    // batch into one split-phase fill — same draws, same order, same
    // post-RNG state as the historic per-sample loop (the draws were
    // consecutive there too). Strokes within the shared bound use the
    // inline buffer; longer ones the retained spill.
    let tremor: &mut [f64] = if n <= BASIS_SHARED_MAX_N {
        &mut tremor_inline[..=n]
    } else {
        tremor_spill.clear();
        tremor_spill.resize(n + 1, 0.0);
        tremor_spill
    };
    fill_tremor(rng, &jitter_dist, tremor);
    let row = StrokeBasis::row_into(n, basis_spill);

    // Draw-free SoA combine. The final sample is emitted separately: the
    // historic loop overwrote its position with the exact endpoint (its
    // timestamp `t0 + 1.0 * duration` is bit-equal to `t0 + duration`).
    out.reserve(n + 1 - usize::from(skip_first));
    let start = usize::from(skip_first);
    for i in start..n {
        let BasisSample { tau, s, envelope } = row[i];
        let p = quad_bezier(from, control, to, s);
        let tremor = tremor[i];
        let (jx, jy) = (px * tremor * envelope, py * tremor * envelope);
        out.push(TrajectorySample {
            t_ms: t0 + tau * duration,
            x: p.x + jx,
            y: p.y + jy,
        });
    }
    out.push(TrajectorySample {
        t_ms: t0 + duration,
        x: to.x,
        y: to.y,
    });
}

fn quad_bezier(a: Point, c: Point, b: Point, t: f64) -> Point {
    let u = 1.0 - t;
    Point::new(
        u * u * a.x + 2.0 * u * t * c.x + t * t * b.x,
        u * u * a.y + 2.0 * u * t * c.y + t * t * b.y,
    )
}

/// Unit vector perpendicular to the chord from `a` to `b`.
fn perpendicular(a: Point, b: Point) -> (f64, f64) {
    let dx = b.x - a.x;
    let dy = b.y - a.y;
    let len = (dx * dx + dy * dy).sqrt().max(1e-12);
    (-dy / len, dx / len)
}

/// The seed-era eager generator, retained verbatim.
///
/// This is the perf baseline for the `trajectory_synthesis` bench row and
/// the differential anchor for the kernel: direct per-sample evaluation of
/// the min-jerk polynomial and the sine envelope, one interleaved jitter
/// draw per sample, and a fresh `Vec` per stroke. The optimized kernel
/// ([`synthesize_into`]) must reproduce its output — samples and post-RNG
/// state — bit for bit; the draw sequence defined here is the contract.
pub mod reference {
    use super::*;

    /// The historic eager generator (seed shape, pre-basis-table,
    /// pre-batching). Same signature as [`super::generate_with`].
    pub fn generate_with<R: Rng + ?Sized>(
        params: &HumanParams,
        rng: &mut R,
        from: Point,
        to: Point,
        target_w: f64,
    ) -> Vec<TrajectorySample> {
        let dist = from.distance_to(to);
        if dist < 1e-9 {
            return vec![TrajectorySample {
                t_ms: 0.0,
                x: to.x,
                y: to.y,
            }];
        }
        let base = params.fitts_duration_ms(dist, target_w);
        let duration = base * rng.gen_range(0.88..1.12);

        let two_phase = dist > 250.0 && rng.gen_bool(0.6);
        if !two_phase {
            return single_stroke(params, rng, from, to, duration, 0.0);
        }

        let axis = ((to.x - from.x) / dist, (to.y - from.y) / dist);
        let err_mag =
            (Normal::new(-0.01 * dist, 0.035 * dist).sample(rng)).clamp(-0.12 * dist, 0.12 * dist);
        if err_mag.abs() < 6.0 {
            return single_stroke(params, rng, from, to, duration, 0.0);
        }
        let aim = Point::new(to.x + axis.0 * err_mag, to.y + axis.1 * err_mag);

        let mut samples = single_stroke(params, rng, from, aim, duration * 0.82, 0.0);
        let landing_t = samples.last().map(|s| s.t_ms).unwrap_or(0.0);
        let pause = rng.gen_range(30.0..90.0);
        let correction_duration = (70.0 + err_mag.abs() * 1.2).clamp(70.0, 180.0);
        let correction =
            single_stroke(params, rng, aim, to, correction_duration, landing_t + pause);
        samples.extend(correction.into_iter().skip(1));
        samples
    }

    /// The historic stroke loop: direct evaluation, per-sample draws.
    pub fn single_stroke<R: Rng + ?Sized>(
        params: &HumanParams,
        rng: &mut R,
        from: Point,
        to: Point,
        duration: f64,
        t0: f64,
    ) -> Vec<TrajectorySample> {
        let dist = from.distance_to(to);
        if dist < 1e-9 {
            return vec![TrajectorySample {
                t_ms: t0,
                x: to.x,
                y: to.y,
            }];
        }
        let amp_sigma = params.curve_amplitude_frac * dist;
        let amp = Normal::new(0.0, amp_sigma).sample(rng)
            + amp_sigma * if rng.gen_bool(0.5) { 1.0 } else { -1.0 };
        let (px, py) = perpendicular(from, to);
        let mid = from.lerp(to, 0.5);
        let control = Point::new(mid.x + px * amp, mid.y + py * amp);

        let n = ((duration / params.pointer_sample_interval_ms).ceil() as usize).max(3);
        let jitter_dist = Normal::new(0.0, params.jitter_px);
        let mut samples = Vec::with_capacity(n + 1);
        let mut tremor = 0.0f64;
        for i in 0..=n {
            let tau = i as f64 / n as f64;
            let s = min_jerk_progress(tau);
            let p = quad_bezier(from, control, to, s);
            tremor = 0.7 * tremor + 0.3 * jitter_dist.sample(rng);
            let envelope = (std::f64::consts::PI * tau).sin();
            let (jx, jy) = (px * tremor * envelope, py * tremor * envelope);
            samples.push(TrajectorySample {
                t_ms: t0 + tau * duration,
                x: p.x + jx,
                y: p.y + jy,
            });
        }
        if let Some(last) = samples.last_mut() {
            last.x = to.x;
            last.y = to.y;
        }
        samples
    }
}

/// Path metrics used by tests and detectors.
pub mod metrics {
    use super::TrajectorySample;

    /// Total arc length of the trajectory (px).
    pub fn path_length(samples: &[TrajectorySample]) -> f64 {
        samples
            .windows(2)
            .map(|w| ((w[1].x - w[0].x).powi(2) + (w[1].y - w[0].y).powi(2)).sqrt())
            .sum()
    }

    /// Straight-line distance start → end (px).
    pub fn chord_length(samples: &[TrajectorySample]) -> f64 {
        match (samples.first(), samples.last()) {
            (Some(a), Some(b)) => ((b.x - a.x).powi(2) + (b.y - a.y).powi(2)).sqrt(),
            _ => 0.0,
        }
    }

    /// Straightness ratio: chord / path (1.0 = perfectly straight).
    pub fn straightness(samples: &[TrajectorySample]) -> f64 {
        let p = path_length(samples);
        if p == 0.0 {
            1.0
        } else {
            chord_length(samples) / p
        }
    }

    /// Per-segment speeds (px/ms).
    pub fn speeds(samples: &[TrajectorySample]) -> Vec<f64> {
        samples
            .windows(2)
            .filter(|w| w[1].t_ms > w[0].t_ms)
            .map(|w| {
                let d = ((w[1].x - w[0].x).powi(2) + (w[1].y - w[0].y).powi(2)).sqrt();
                d / (w[1].t_ms - w[0].t_ms)
            })
            .collect()
    }

    /// True when the trajectory shows a two-phase (primary + corrective)
    /// structure: a near-stop well after the start followed by renewed
    /// movement.
    pub fn has_submovement(samples: &[TrajectorySample]) -> bool {
        let speeds = speeds(samples);
        if speeds.len() < 8 {
            return false;
        }
        let peak = speeds.iter().copied().fold(0.0, f64::max);
        if peak <= 0.0 {
            return false;
        }
        // Look for a valley (near-stop) well inside the trajectory with
        // meaningful absolute movement after it.
        let n = speeds.len();
        for i in n / 3..n.saturating_sub(2) {
            if speeds[i] < (0.12 * peak).max(0.15) {
                let after_peak = speeds[i + 1..].iter().copied().fold(0.0, f64::max);
                if after_peak > 0.35 {
                    return true;
                }
            }
        }
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn traj(seed: u64) -> Vec<TrajectorySample> {
        let p = HumanParams::paper_baseline();
        let mut ctx = SimContext::new(seed);
        generate(
            &p,
            &mut ctx,
            Point::new(100.0, 500.0),
            Point::new(900.0, 300.0),
            40.0,
        )
    }

    #[test]
    fn min_jerk_boundary_conditions() {
        assert!(min_jerk_progress(0.0).abs() < 1e-12);
        assert!((min_jerk_progress(1.0) - 1.0).abs() < 1e-12);
        assert!(min_jerk_progress(0.5) > 0.45 && min_jerk_progress(0.5) < 0.55);
        // Monotone non-decreasing.
        let mut prev = 0.0;
        for i in 0..=100 {
            let v = min_jerk_progress(i as f64 / 100.0);
            assert!(v >= prev - 1e-12);
            prev = v;
        }
    }

    /// The shared basis tables (and the owned fallback above the cache
    /// bound) must reproduce the direct per-sample evaluation bit for bit
    /// — they are a memoisation, not an approximation.
    #[test]
    fn basis_table_is_bit_exact_with_direct_evaluation() {
        for n in [3usize, 7, 64, 192, 193, 400] {
            let basis = StrokeBasis::for_stroke(n);
            for i in 0..=n {
                let tau = i as f64 / n as f64;
                let b = basis.get(i);
                assert_eq!(b.tau.to_bits(), tau.to_bits(), "n={n} i={i}");
                assert_eq!(
                    b.s.to_bits(),
                    min_jerk_progress(tau).to_bits(),
                    "n={n} i={i}"
                );
                assert_eq!(
                    b.envelope.to_bits(),
                    (std::f64::consts::PI * tau).sin().to_bits(),
                    "n={n} i={i}"
                );
            }
        }
        // Above the bound the basis is owned, below it shared.
        assert!(matches!(
            StrokeBasis::for_stroke(400),
            StrokeBasis::Owned(_)
        ));
        assert!(matches!(
            StrokeBasis::for_stroke(64),
            StrokeBasis::Shared(_)
        ));
    }

    #[test]
    fn trajectory_starts_and_ends_at_endpoints() {
        let t = traj(1);
        let first = t.first().unwrap();
        let last = t.last().unwrap();
        assert!((first.x - 100.0).abs() < 3.0 && (first.y - 500.0).abs() < 3.0);
        assert_eq!((last.x, last.y), (900.0, 300.0));
    }

    #[test]
    fn trajectory_is_curved_not_straight() {
        let t = traj(2);
        let s = metrics::straightness(&t);
        assert!(s < 0.9999, "suspiciously straight: {s}");
        assert!(s > 0.75, "unreasonably wiggly: {s}");
    }

    #[test]
    fn speed_profile_accelerates_then_decelerates() {
        // Use a short movement (always single-stroke) for a clean profile.
        let p = HumanParams::paper_baseline();
        let mut ctx = SimContext::new(3);
        let t = generate(
            &p,
            &mut ctx,
            Point::new(0.0, 0.0),
            Point::new(200.0, 60.0),
            40.0,
        );
        let speeds = metrics::speeds(&t);
        let n = speeds.len();
        let first_quarter: f64 = speeds[..n / 4].iter().sum::<f64>() / (n / 4) as f64;
        let middle: f64 = speeds[n * 3 / 8..n * 5 / 8].iter().sum::<f64>() / (n / 4).max(1) as f64;
        let last_quarter: f64 = speeds[n * 3 / 4..].iter().sum::<f64>() / (n - n * 3 / 4) as f64;
        assert!(middle > first_quarter * 1.5, "no acceleration phase");
        assert!(middle > last_quarter * 1.5, "no deceleration phase");
    }

    #[test]
    fn long_movements_often_have_corrective_submovements() {
        let with = (0..40)
            .filter(|s| metrics::has_submovement(&traj(*s)))
            .count();
        assert!(
            (10..=38).contains(&with),
            "{with}/40 trajectories had submovements"
        );
    }

    #[test]
    fn short_movements_stay_single_stroke() {
        let p = HumanParams::paper_baseline();
        for seed in 0..20 {
            let mut ctx = SimContext::new(seed);
            let t = generate(
                &p,
                &mut ctx,
                Point::new(0.0, 0.0),
                Point::new(120.0, 40.0),
                40.0,
            );
            assert!(
                !metrics::has_submovement(&t),
                "short move grew a submovement at seed {seed}"
            );
        }
    }

    #[test]
    fn duration_respects_fitts_scaling() {
        let p = HumanParams::paper_baseline();
        let mut ctx = SimContext::new(4);
        let near = generate(
            &p,
            &mut ctx,
            Point::new(0.0, 0.0),
            Point::new(50.0, 0.0),
            40.0,
        );
        let far = generate(
            &p,
            &mut ctx,
            Point::new(0.0, 0.0),
            Point::new(1200.0, 0.0),
            40.0,
        );
        assert!(far.last().unwrap().t_ms > near.last().unwrap().t_ms);
    }

    #[test]
    fn zero_distance_returns_single_sample() {
        let p = HumanParams::paper_baseline();
        let mut ctx = SimContext::new(5);
        let t = generate(
            &p,
            &mut ctx,
            Point::new(5.0, 5.0),
            Point::new(5.0, 5.0),
            40.0,
        );
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn different_seeds_give_different_paths() {
        let a = traj(10);
        let b = traj(11);
        // Same endpoints but different intermediate shapes.
        let mid_a = &a[a.len() / 2];
        let mid_b = &b[b.len() / 2];
        assert!(
            (mid_a.x - mid_b.x).abs() + (mid_a.y - mid_b.y).abs() > 0.5,
            "replayed path — humans never retrace exactly"
        );
    }

    #[test]
    fn timestamps_strictly_increase() {
        for seed in 0..20 {
            let t = traj(seed);
            for w in t.windows(2) {
                assert!(w[1].t_ms > w[0].t_ms, "seed {seed}");
            }
        }
    }

    /// The streaming generator is a drop-in replacement: over many seeds
    /// and every structural branch (zero-distance, short single-stroke,
    /// threshold-straddling, long two-phase), it yields bit-identical
    /// samples *and* leaves the RNG in the identical state, so callers can
    /// mix eager and streaming generation freely without perturbing any
    /// later draw.
    #[test]
    fn stream_matches_eager_generator_bit_for_bit() {
        let p = HumanParams::paper_baseline();
        let cases = [
            (Point::new(100.0, 500.0), Point::new(900.0, 300.0), 40.0),
            (Point::new(10.0, 10.0), Point::new(60.0, 40.0), 20.0),
            (Point::new(5.0, 5.0), Point::new(5.0, 5.0), 10.0),
            (Point::new(0.0, 0.0), Point::new(260.0, 0.0), 4.0),
            (Point::new(300.0, 800.0), Point::new(299.0, 801.0), 60.0),
        ];
        for seed in 0..200u64 {
            for (from, to, w) in cases {
                let mut eager_ctx = SimContext::new(seed);
                let eager = generate(&p, &mut eager_ctx, from, to, w);
                let mut stream_ctx = SimContext::new(seed);
                let streamed: Vec<TrajectorySample> =
                    stream(&p, &mut stream_ctx, from, to, w).collect();
                assert_eq!(streamed, eager, "seed {seed} {from:?}->{to:?}");
                assert_eq!(
                    eager_ctx.stream("cursor").gen::<u64>(),
                    stream_ctx.stream("cursor").gen::<u64>(),
                    "rng state diverged after seed {seed} {from:?}->{to:?}"
                );
            }
        }
    }

    /// The fixed-capacity kernel behind [`generate_with`] must reproduce
    /// the retained seed-era generator bit for bit — samples and post-RNG
    /// state — across every structural branch (zero-distance, short
    /// single-stroke, threshold-straddling, long two-phase).
    #[test]
    fn kernel_matches_seed_reference_bit_for_bit() {
        let p = HumanParams::paper_baseline();
        let cases = [
            (Point::new(100.0, 500.0), Point::new(900.0, 300.0), 40.0),
            (Point::new(10.0, 10.0), Point::new(60.0, 40.0), 20.0),
            (Point::new(5.0, 5.0), Point::new(5.0, 5.0), 10.0),
            (Point::new(0.0, 0.0), Point::new(260.0, 0.0), 4.0),
            (Point::new(300.0, 800.0), Point::new(299.0, 801.0), 60.0),
        ];
        let mut scratch = StrokeScratch::new();
        let mut out = Vec::new();
        for seed in 0..200u64 {
            for (from, to, w) in cases {
                let mut ref_ctx = SimContext::new(seed);
                let historic = reference::generate_with(&p, ref_ctx.stream("cursor"), from, to, w);
                let mut kernel_ctx = SimContext::new(seed);
                out.clear();
                synthesize_into(
                    &p,
                    kernel_ctx.stream("cursor"),
                    from,
                    to,
                    w,
                    &mut scratch,
                    &mut out,
                );
                assert_eq!(out, historic, "seed {seed} {from:?}->{to:?}");
                assert_eq!(
                    ref_ctx.stream("cursor").gen::<u64>(),
                    kernel_ctx.stream("cursor").gen::<u64>(),
                    "rng state diverged after seed {seed} {from:?}->{to:?}"
                );
            }
        }
    }

    /// The kernel appends: planners lay several movements into one arena,
    /// and earlier samples must be untouched.
    #[test]
    fn kernel_appends_without_disturbing_existing_samples() {
        let p = HumanParams::paper_baseline();
        let sentinel = TrajectorySample {
            t_ms: -1.0,
            x: 123.0,
            y: 456.0,
        };
        let mut scratch = StrokeScratch::new();
        let mut out = vec![sentinel];
        let mut ctx = SimContext::new(9);
        synthesize_into(
            &p,
            ctx.stream("cursor"),
            Point::new(100.0, 500.0),
            Point::new(900.0, 300.0),
            40.0,
            &mut scratch,
            &mut out,
        );
        assert_eq!(out[0], sentinel);
        let mut fresh_ctx = SimContext::new(9);
        let fresh = generate_with(
            &p,
            fresh_ctx.stream("cursor"),
            Point::new(100.0, 500.0),
            Point::new(900.0, 300.0),
            40.0,
        );
        assert_eq!(&out[1..], &fresh[..]);
    }

    /// A reused scratch reaches allocation steady state: after one long
    /// stroke has sized the spill buffers, further strokes (short and
    /// long) leave the spill capacities untouched.
    #[test]
    fn reused_scratch_reaches_allocation_steady_state() {
        use rand::rngs::SmallRng;
        use rand::SeedableRng;
        let p = HumanParams::paper_baseline();
        let mut scratch = StrokeScratch::new();
        let mut out = Vec::new();
        let mut rng = SmallRng::seed_from_u64(3);
        let from = Point::new(40.0, 80.0);
        let to = Point::new(640.0, 420.0);
        // Warmup: one above-bound stroke sizes the spills.
        stroke_into(
            &p,
            &mut rng,
            from,
            to,
            2400.0,
            0.0,
            &mut scratch,
            &mut out,
            false,
        );
        let caps = scratch.spill_capacities();
        assert!(caps.0 > 0 && caps.1 > 0, "long stroke did not spill");
        for _ in 0..50 {
            out.clear();
            stroke_into(
                &p,
                &mut rng,
                from,
                to,
                600.0,
                0.0,
                &mut scratch,
                &mut out,
                false,
            );
            stroke_into(
                &p,
                &mut rng,
                from,
                to,
                2400.0,
                0.0,
                &mut scratch,
                &mut out,
                false,
            );
            assert_eq!(scratch.spill_capacities(), caps, "spill reallocated");
        }
    }

    /// The stroke loop historically drew one jitter sample per iteration:
    /// `tremor = 0.7 * tremor + 0.3 * jitter.sample(rng)`. The batched
    /// fill must reproduce that sequence — values and post-fill RNG state —
    /// bit for bit, including the variable draw count of the polar-method
    /// `Normal::sample` rejection loop.
    #[test]
    fn batched_tremor_matches_historic_per_sample_loop() {
        use rand::rngs::SmallRng;
        use rand::SeedableRng;
        let jitter = Normal::new(0.0, 0.35);
        for seed in 0..200u64 {
            for n in [3usize, 17, 64, 192] {
                let mut batched_rng = SmallRng::seed_from_u64(seed);
                let mut buf = vec![0.0f64; n + 1];
                fill_tremor(&mut batched_rng, &jitter, &mut buf);

                let mut manual_rng = SmallRng::seed_from_u64(seed);
                let mut tremor = 0.0f64;
                for (i, slot) in buf.iter().enumerate() {
                    tremor = 0.7 * tremor + 0.3 * jitter.sample(&mut manual_rng);
                    assert_eq!(slot.to_bits(), tremor.to_bits(), "seed {seed} n={n} i={i}");
                }
                assert_eq!(batched_rng, manual_rng, "post state, seed {seed} n={n}");
            }
        }
    }

    /// Batched and per-sample tremor paths coexist in `single_stroke`
    /// (strokes above [`BASIS_SHARED_MAX_N`] fall back to per-sample
    /// draws). Both must realise the exact historic draw schedule: a
    /// reference reimplementation of the historic inline loop agrees bit
    /// for bit — samples and post-RNG state — on either side of the bound.
    #[test]
    fn single_stroke_matches_historic_reference_across_batch_bound() {
        use rand::rngs::SmallRng;
        use rand::SeedableRng;

        // The stroke loop exactly as it was before batching.
        fn reference_stroke<R: Rng + ?Sized>(
            params: &HumanParams,
            rng: &mut R,
            from: Point,
            to: Point,
            duration: f64,
            t0: f64,
        ) -> Vec<TrajectorySample> {
            let dist = from.distance_to(to);
            let amp_sigma = params.curve_amplitude_frac * dist;
            let amp = Normal::new(0.0, amp_sigma).sample(rng)
                + amp_sigma * if rng.gen_bool(0.5) { 1.0 } else { -1.0 };
            let (px, py) = perpendicular(from, to);
            let mid = from.lerp(to, 0.5);
            let control = Point::new(mid.x + px * amp, mid.y + py * amp);
            let n = ((duration / params.pointer_sample_interval_ms).ceil() as usize).max(3);
            let basis = StrokeBasis::for_stroke(n);
            let jitter_dist = Normal::new(0.0, params.jitter_px);
            let mut samples = Vec::with_capacity(n + 1);
            let mut tremor = 0.0f64;
            for i in 0..=n {
                let BasisSample { tau, s, envelope } = basis.get(i);
                let p = quad_bezier(from, control, to, s);
                tremor = 0.7 * tremor + 0.3 * jitter_dist.sample(rng);
                let (jx, jy) = (px * tremor * envelope, py * tremor * envelope);
                samples.push(TrajectorySample {
                    t_ms: t0 + tau * duration,
                    x: p.x + jx,
                    y: p.y + jy,
                });
            }
            if let Some(last) = samples.last_mut() {
                last.x = to.x;
                last.y = to.y;
            }
            samples
        }

        let p = HumanParams::paper_baseline();
        // 8 ms interval: 600 ms → n = 75 (batched), 2400 ms → n = 300
        // (above the bound, per-sample fallback).
        for duration in [600.0, 2400.0] {
            for seed in 0..100u64 {
                let from = Point::new(40.0, 80.0);
                let to = Point::new(640.0, 420.0);
                let mut live_rng = SmallRng::seed_from_u64(seed);
                let live = single_stroke(&p, &mut live_rng, from, to, duration, 12.5);
                let mut ref_rng = SmallRng::seed_from_u64(seed);
                let reference = reference_stroke(&p, &mut ref_rng, from, to, duration, 12.5);
                assert_eq!(live, reference, "seed {seed} duration {duration}");
                assert_eq!(
                    live_rng, ref_rng,
                    "post state, seed {seed} duration {duration}"
                );
            }
        }
    }

    mod prop {
        use super::super::*;
        use proptest::prelude::*;
        use rand::rngs::SmallRng;
        use rand::SeedableRng;

        proptest! {
            /// Long strokes (`n` past [`BASIS_SHARED_MAX_N`]) take the
            /// spill path in the kernel and the per-sample fallback in the
            /// streaming state; both must reproduce the seed-era per-sample
            /// loop — values and post-RNG state — for arbitrary seeds,
            /// geometry, and durations on either side of the bound.
            #[test]
            fn stroke_kernel_matches_reference_for_arbitrary_strokes(
                seed in 0u64..u64::MAX,
                fx in 0.0f64..1200.0,
                fy in 0.0f64..700.0,
                dx in 20.0f64..900.0,
                dy in -300.0f64..300.0,
                // 200 ms → n = 25; 4000 ms → n = 500 (deep in spill land).
                duration in 200.0f64..4000.0,
            ) {
                let p = HumanParams::paper_baseline();
                let from = Point::new(fx, fy);
                let to = Point::new(fx + dx, fy + dy);
                let mut live_rng = SmallRng::seed_from_u64(seed);
                let live = single_stroke(&p, &mut live_rng, from, to, duration, 0.0);
                let mut ref_rng = SmallRng::seed_from_u64(seed);
                let reference =
                    reference::single_stroke(&p, &mut ref_rng, from, to, duration, 0.0);
                prop_assert_eq!(live, reference);
                prop_assert_eq!(live_rng, ref_rng, "post-RNG state diverged");
            }

            /// At the shared-basis boundary the basis flips representation
            /// (`Shared` at `n`, `Owned` at `n + 1` when `n` is the bound);
            /// representations must agree bit for bit on the overlapping
            /// evaluation — and the fused row path must agree with both.
            #[test]
            fn owned_and_shared_basis_agree_at_the_boundary(
                delta in 0usize..4,
            ) {
                for n in [
                    BASIS_SHARED_MAX_N - delta,
                    BASIS_SHARED_MAX_N + 1 + delta,
                ] {
                    let basis = StrokeBasis::for_stroke(n);
                    if n <= BASIS_SHARED_MAX_N {
                        prop_assert!(matches!(basis, StrokeBasis::Shared(_)));
                    } else {
                        prop_assert!(matches!(basis, StrokeBasis::Owned(_)));
                    }
                    let owned = compute_basis_row(n);
                    let mut spill = Vec::new();
                    let fused = StrokeBasis::row_into(n, &mut spill);
                    prop_assert_eq!(fused.len(), n + 1);
                    for i in 0..=n {
                        let a = basis.get(i);
                        let b = owned[i];
                        let c = fused[i];
                        prop_assert_eq!(a.tau.to_bits(), b.tau.to_bits());
                        prop_assert_eq!(a.s.to_bits(), b.s.to_bits());
                        prop_assert_eq!(a.envelope.to_bits(), b.envelope.to_bits());
                        prop_assert_eq!(a.tau.to_bits(), c.tau.to_bits());
                        prop_assert_eq!(a.s.to_bits(), c.s.to_bits());
                        prop_assert_eq!(a.envelope.to_bits(), c.envelope.to_bits());
                    }
                }
            }

            /// The movement-level kernel against the retained seed
            /// reference for arbitrary seeds and endpoints (covering
            /// single-stroke, threshold, and two-phase branches), in
            /// append mode on a dirty arena.
            #[test]
            fn movement_kernel_matches_reference_for_arbitrary_movements(
                seed in 0u64..u64::MAX,
                fx in 0.0f64..1200.0,
                fy in 0.0f64..700.0,
                tx in 0.0f64..1200.0,
                ty in 0.0f64..700.0,
                w in 4.0f64..120.0,
            ) {
                let p = HumanParams::paper_baseline();
                let from = Point::new(fx, fy);
                let to = Point::new(tx, ty);
                let mut ref_ctx = SimContext::new(seed);
                let historic =
                    reference::generate_with(&p, ref_ctx.stream("cursor"), from, to, w);
                let mut kernel_ctx = SimContext::new(seed);
                let mut scratch = StrokeScratch::new();
                let mut out = vec![TrajectorySample { t_ms: -7.0, x: 0.0, y: 0.0 }];
                synthesize_into(
                    &p,
                    kernel_ctx.stream("cursor"),
                    from,
                    to,
                    w,
                    &mut scratch,
                    &mut out,
                );
                prop_assert_eq!(&out[1..], &historic[..]);
                prop_assert_eq!(
                    ref_ctx.stream("cursor").gen::<u64>(),
                    kernel_ctx.stream("cursor").gen::<u64>()
                );
            }
        }
    }
}
