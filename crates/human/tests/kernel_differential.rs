//! Differential proptests: the batch interaction planner against its
//! retained per-action reference.
//!
//! The arena layout and the fixed-capacity kernels change *where* bytes
//! land, never *what* is drawn: for arbitrary seeds, content hashes, and
//! script lengths, [`VisitPlanner::plan_visit`] must produce a plan
//! bit-identical to [`plan_visit_unbatched`] and leave every interaction
//! stream in the identical state — including when the planner's arenas are
//! dirty from previous visits of *different* shapes.

use hlisa_human::plan::{plan_visit_unbatched, visit_script_into, VisitPlanner};
use hlisa_human::HumanParams;
use hlisa_sim::SimContext;
use proptest::prelude::*;
use rand::Rng;

proptest! {
    /// Arena-batched plan == fresh-allocation reference plan, bit for bit,
    /// with all five interaction streams left in the same state.
    #[test]
    fn batched_plan_is_bit_identical_to_unbatched(
        seed in 0u64..u64::MAX,
        content_hash in 0u64..u64::MAX,
        steps in 0usize..12,
    ) {
        let p = HumanParams::paper_baseline();
        let mut script = Vec::new();
        visit_script_into(content_hash, steps, &mut script);

        let mut planner = VisitPlanner::new();
        let mut ctx = SimContext::new(seed);
        let batched = planner.plan_visit(&p, &mut ctx, &script).clone();

        let mut ref_ctx = SimContext::new(seed);
        let unbatched = plan_visit_unbatched(&p, &mut ref_ctx, &script);

        prop_assert_eq!(&batched, &unbatched);
        for name in ["cursor", "click", "agent", "typing", "scroll"] {
            prop_assert_eq!(
                ctx.stream(name).gen::<u64>(),
                ref_ctx.stream(name).gen::<u64>(),
                "stream {} diverged", name
            );
        }
    }

    /// Reuse must not leak: planning visit B after an unrelated visit A
    /// yields exactly the plan a fresh planner would produce for B.
    #[test]
    fn dirty_arena_reuse_does_not_leak_across_visits(
        seed_a in 0u64..u64::MAX,
        seed_b in 0u64..u64::MAX,
        hash_a in 0u64..u64::MAX,
        hash_b in 0u64..u64::MAX,
        steps_a in 1usize..10,
        steps_b in 1usize..10,
    ) {
        let p = HumanParams::paper_baseline();
        let mut reused = VisitPlanner::new();
        let mut ctx_a = SimContext::new(seed_a);
        reused.plan_site_visit(&p, &mut ctx_a, hash_a, steps_a);
        let mut ctx_b = SimContext::new(seed_b);
        let second = reused.plan_site_visit(&p, &mut ctx_b, hash_b, steps_b).clone();

        let mut fresh = VisitPlanner::new();
        let mut ctx_f = SimContext::new(seed_b);
        let fresh_plan = fresh.plan_site_visit(&p, &mut ctx_f, hash_b, steps_b).clone();
        prop_assert_eq!(second, fresh_plan);
    }
}
