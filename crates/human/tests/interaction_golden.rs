//! Fixed-seed golden test over a full interaction session.
//!
//! The hashes below were captured from the pre-fast-path implementation
//! (linear `hit_test`, `Vec`-materialised trajectories, full-scan recorder
//! queries). The fast path must leave every observable byte unchanged:
//! the event stream (kinds, timestamps, targets, payloads), the derived
//! analytics, and the metrics counters. Any drift in RNG draw order,
//! hit-test semantics, or aggregate bookkeeping changes a hash and fails
//! this test.

use hlisa_browser::dom::standard_test_page;
use hlisa_browser::{Browser, BrowserConfig};
use hlisa_human::HumanAgent;

/// FNV-1a over the canonical debug rendering. Debug formatting of `f64`
/// is the shortest round-trip representation, so two values hash equal
/// iff they are bit-identical.
fn fnv1a(s: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in s.as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Drives a deterministic session covering every interaction family:
/// click, double click, typing (with Shift), wheel scrolling.
fn run_session() -> Browser {
    let mut b = Browser::open(
        BrowserConfig::regular(),
        standard_test_page("https://golden.test/", 30_000.0),
    );
    let mut h = HumanAgent::baseline(0xB175_EED);
    h.bind_browser(&b);
    let submit = b.document().by_id("submit").expect("submit exists");
    let input = b.document().by_id("text_area").expect("input exists");
    h.click_element(&mut b, submit);
    h.settle(&mut b, 200.0, 600.0);
    h.click_element(&mut b, input);
    h.type_text(&mut b, "Hello, HLISA World");
    h.settle(&mut b, 150.0, 400.0);
    h.scroll_by(&mut b, 1_200.0);
    h.double_click_element(&mut b, submit);
    b
}

const EVENT_STREAM_HASH: u64 = 2_826_518_219_808_861_589;
const ANALYTICS_HASH: u64 = 6_459_694_867_669_931_918;
const METRICS_HASH: u64 = 11_591_917_484_188_956_702;

#[test]
fn event_stream_is_bit_identical_to_the_pre_fast_path_capture() {
    let b = run_session();
    let mut canon = String::new();
    for e in b.recorder.events() {
        canon.push_str(&format!("{e:?}\n"));
    }
    assert_eq!(
        fnv1a(&canon),
        EVENT_STREAM_HASH,
        "event stream drifted (events = {})",
        b.recorder.len()
    );
}

#[test]
fn derived_analytics_are_bit_identical_to_the_pre_fast_path_capture() {
    let b = run_session();
    let canon = format!(
        "trace {:?}\nclicks {:?}\noffsets {:?}\nkeys {:?}\nflights {:?}\nscroll_d {:?}\nscroll_g {:?}\nwheels {:?}\n",
        b.recorder.cursor_trace(),
        b.recorder.clicks(),
        b.recorder.click_offsets(),
        b.recorder.keystrokes(),
        b.recorder.key_flight_times(),
        b.recorder.scroll_deltas(),
        b.recorder.scroll_gaps(),
        b.recorder.wheel_count(),
    );
    assert_eq!(fnv1a(&canon), ANALYTICS_HASH, "analytics drifted");
}

#[test]
fn metrics_counters_are_bit_identical_to_the_pre_fast_path_capture() {
    let b = run_session();
    let canon = format!("{:?}", b.metrics().sorted().entries());
    assert_eq!(fnv1a(&canon), METRICS_HASH, "metrics drifted: {canon}");
}
