//! The stream-name registry: the single source of truth for every named
//! RNG stream a `SimContext` may hand out.
//!
//! PR 1's determinism contract says a stream's draw sequence is a pure
//! function of `(root seed, stream name)`. That contract is only
//! auditable if the set of names is *closed*: a typo'd
//! `ctx.stream("moton")` silently mints a fresh, unreviewed stream whose
//! draws decorrelate from every golden hash downstream. This registry
//! closes the set. `hlisa-lint`'s `stream-name-registry` rule rejects any
//! `stream("...")` call site whose name is not listed here, and the
//! determinism ledger (`LINT_LEDGER.json`) groups every call site by
//! these names — so adding a stream is an explicit, reviewed diff in
//! exactly one place.

/// One registered stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StreamInfo {
    /// The name passed to [`crate::SimContext::stream`].
    pub name: &'static str,
    /// The crate that owns the stream's draw discipline.
    pub owner: &'static str,
    /// What the stream decides.
    pub purpose: &'static str,
}

/// Every stream name a `SimContext` may be asked for, sorted by name.
///
/// Keep this sorted: [`is_registered`] binary-searches it, and the lint
/// ledger renders it in this order.
pub const STREAM_REGISTRY: &[StreamInfo] = &[
    StreamInfo {
        name: "agent",
        owner: "hlisa-human",
        purpose: "HumanAgent task-level decisions (reading pauses, idle gestures)",
    },
    StreamInfo {
        name: "behavior",
        owner: "hlisa",
        purpose: "behavioural extras (overshoot, hesitation, micro-pauses)",
    },
    StreamInfo {
        name: "chain",
        owner: "hlisa",
        purpose: "action-chain composition (inter-action gaps, orderings)",
    },
    StreamInfo {
        name: "click",
        owner: "hlisa-human",
        purpose: "click dwell times and in-element offset sampling",
    },
    StreamInfo {
        name: "cursor",
        owner: "hlisa-human",
        purpose: "cursor trajectory synthesis (jerk profiles, waypoint jitter)",
    },
    StreamInfo {
        name: "detector",
        owner: "hlisa-detect",
        purpose: "reserved: generative detector-zoo parameterisation (ROADMAP)",
    },
    StreamInfo {
        name: "fault",
        owner: "hlisa-sim",
        purpose:
            "deterministic fault plane (injection, backoff jitter, measurement-loss schedules)",
    },
    StreamInfo {
        name: "graph",
        owner: "hlisa-web",
        purpose: "site link-graph generation (fanout, link targets)",
    },
    StreamInfo {
        name: "motion",
        owner: "hlisa",
        purpose: "pointer motion planning (curves, velocity profiles)",
    },
    StreamInfo {
        name: "naive",
        owner: "hlisa",
        purpose: "the naive simulator rung's fixed-delay jitter",
    },
    StreamInfo {
        name: "population",
        owner: "hlisa-web",
        purpose: "site population sampling (roles, scenario deals)",
    },
    StreamInfo {
        name: "scroll",
        owner: "hlisa-human",
        purpose: "scroll burst lengths, tick spacing, finger breaks",
    },
    StreamInfo {
        name: "site",
        owner: "hlisa-web",
        purpose: "per-site page synthesis (element mix, honey placement)",
    },
    StreamInfo {
        name: "traverse",
        owner: "hlisa-web",
        purpose: "traversal walks (interest-driven page choice, dwell draws)",
    },
    StreamInfo {
        name: "typing",
        owner: "hlisa-human",
        purpose: "typing cadence (inter-key intervals, dwell, typo model)",
    },
    StreamInfo {
        name: "visit",
        owner: "hlisa-web",
        purpose: "per-visit draws (timeline jitter, outcome sampling)",
    },
];

/// True when `name` is a registered stream name.
pub fn is_registered(name: &str) -> bool {
    STREAM_REGISTRY
        .binary_search_by(|s| s.name.cmp(name))
        .is_ok()
}

/// Looks up a registry entry by name.
pub fn stream_info(name: &str) -> Option<&'static StreamInfo> {
    STREAM_REGISTRY
        .binary_search_by(|s| s.name.cmp(name))
        .ok()
        .map(|i| &STREAM_REGISTRY[i])
}

/// All registered names, in registry (sorted) order.
pub fn registered_names() -> impl Iterator<Item = &'static str> {
    STREAM_REGISTRY.iter().map(|s| s.name)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn the_registry_is_sorted_and_unique() {
        for w in STREAM_REGISTRY.windows(2) {
            assert!(w[0].name < w[1].name, "{} !< {}", w[0].name, w[1].name);
        }
    }

    #[test]
    fn lookups_hit_and_miss() {
        assert!(is_registered("motion"));
        assert!(is_registered("fault"));
        assert!(!is_registered("moton"));
        assert!(!is_registered(""));
        assert_eq!(stream_info("graph").map(|s| s.owner), Some("hlisa-web"));
        assert!(stream_info("nope").is_none());
    }

    #[test]
    fn every_entry_is_documented() {
        for s in STREAM_REGISTRY {
            assert!(!s.owner.is_empty(), "{} lacks an owner", s.name);
            assert!(!s.purpose.is_empty(), "{} lacks a purpose", s.name);
            assert!(
                s.name
                    .chars()
                    .all(|c| c.is_ascii_lowercase() || c == '-' || c == '_'),
                "{} is not a lowercase identifier",
                s.name
            );
        }
    }
}
