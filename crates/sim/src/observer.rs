//! Pluggable observation: event sinks with counter metrics.

/// A sink subscribed to a simulation event stream.
///
/// The browser's dispatch loop (and any other event source) fans each
/// event out to every attached observer instead of hardwiring a recorder.
/// Implementations range from full trace capture (`EventRecorder`) to
/// streaming detectors that keep only counters.
///
/// The trait is generic over the event type so that event-producing
/// crates can define observers over their own types without this crate
/// depending on them.
pub trait Observer<E>: Send {
    /// Called for every dispatched event, with the observable timestamp.
    fn on_event(&mut self, t_ms: f64, event: &E);

    /// Monotone counters describing what this observer has seen, as
    /// `(metric name, count)` pairs. Empty by default.
    fn counters(&self) -> CounterSet {
        CounterSet::default()
    }
}

/// An ordered set of named counters reported by an [`Observer`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CounterSet {
    entries: Vec<(String, u64)>,
}

impl CounterSet {
    /// An empty set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds `count` to `name`, creating the counter at zero first.
    pub fn add(&mut self, name: &str, count: u64) {
        match self.entries.iter_mut().find(|(n, _)| n == name) {
            Some((_, c)) => *c += count,
            None => self.entries.push((name.to_string(), count)),
        }
    }

    /// The value of one counter, or `None` if it never fired.
    pub fn get(&self, name: &str) -> Option<u64> {
        self.entries
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, c)| *c)
    }

    /// All counters in insertion order.
    pub fn entries(&self) -> &[(String, u64)] {
        &self.entries
    }

    /// Merges another set into this one, summing shared names.
    pub fn merge(&mut self, other: &CounterSet) {
        for (name, count) in &other.entries {
            self.add(name, *count);
        }
    }

    /// True when no counter has been touched.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// A copy with entries in lexicographic name order — the canonical
    /// form for comparing counter sets whose insertion order depends on
    /// scheduling (e.g. merges of per-worker monitors).
    pub fn sorted(&self) -> CounterSet {
        let mut entries = self.entries.clone();
        entries.sort();
        CounterSet { entries }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Counting {
        seen: u64,
    }

    impl Observer<u32> for Counting {
        fn on_event(&mut self, _t_ms: f64, _event: &u32) {
            self.seen += 1;
        }

        fn counters(&self) -> CounterSet {
            let mut c = CounterSet::new();
            c.add("events", self.seen);
            c
        }
    }

    #[test]
    fn observer_counts_events() {
        let mut o = Counting { seen: 0 };
        o.on_event(1.0, &10);
        o.on_event(2.0, &20);
        assert_eq!(o.counters().get("events"), Some(2));
    }

    #[test]
    fn counter_sets_merge_by_name() {
        let mut a = CounterSet::new();
        a.add("x", 2);
        a.add("y", 1);
        let mut b = CounterSet::new();
        b.add("x", 3);
        b.add("z", 7);
        a.merge(&b);
        assert_eq!(a.get("x"), Some(5));
        assert_eq!(a.get("y"), Some(1));
        assert_eq!(a.get("z"), Some(7));
        assert_eq!(a.entries().len(), 3);
        assert!(a.get("missing").is_none());
    }

    #[test]
    fn boxed_observers_are_object_safe() {
        let mut observers: Vec<Box<dyn Observer<u32>>> = vec![Box::new(Counting { seen: 0 })];
        for o in &mut observers {
            o.on_event(0.0, &1);
        }
        assert_eq!(observers[0].counters().get("events"), Some(1));
    }
}
