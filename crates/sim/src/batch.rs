//! Batched slice draws from a stream.
//!
//! Hot loops that interleave RNG draws with arithmetic (trajectory tremor,
//! scroll tick jitter) pay for the generator's branchy rejection sampling
//! in the middle of otherwise straight-line math. Splitting the work into
//! a tight *fill* loop followed by a pure arithmetic loop keeps both
//! pipelines clean — but only if the batched fill performs **exactly** the
//! draws the per-element loop would have performed, in the same order,
//! leaving the stream in the same state. These helpers guarantee that by
//! construction: each slot is filled by one call of the same drawing
//! expression, walking the slice front to back.
//!
//! The contract callers rely on (and differential tests pin): for any
//! stream `r`, `r.fill_f64s(&mut buf)` is observationally equivalent to
//! `for x in &mut buf { *x = r.gen::<f64>() }` — same values, same
//! post-fill RNG state — and likewise for the other fill methods with
//! their per-element expressions.

use rand::Rng;

/// Slice-filling draws on any RNG stream (blanket-implemented).
pub trait SliceDraws: Rng {
    /// Fills `out` with standard-uniform `f64` draws in `[0, 1)`, front to
    /// back — one `gen::<f64>()` per slot.
    fn fill_f64s(&mut self, out: &mut [f64]) {
        for slot in out {
            *slot = self.gen::<f64>();
        }
    }

    /// Fills `out` with uniform draws from `lo..hi`, front to back — one
    /// `gen_range(lo..hi)` per slot.
    fn fill_uniform_f64s(&mut self, lo: f64, hi: f64, out: &mut [f64]) {
        for slot in out {
            *slot = self.gen_range(lo..hi);
        }
    }

    /// Fills `out` via `draw`, front to back — one call per slot. The
    /// escape hatch for non-uniform per-element draws (e.g. a
    /// `Normal::sample` whose rejection loop consumes a variable number
    /// of raw draws): batching moves *when* the draws happen, never how
    /// many or in what order.
    fn fill_f64s_with(&mut self, out: &mut [f64], mut draw: impl FnMut(&mut Self) -> f64)
    where
        Self: Sized,
    {
        for slot in out {
            *slot = draw(self);
        }
    }
}

impl<R: Rng + ?Sized> SliceDraws for R {}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn fill_f64s_matches_per_element_loop_and_rng_state() {
        let mut batched = SmallRng::seed_from_u64(7);
        let mut manual = SmallRng::seed_from_u64(7);
        let mut buf = [0.0f64; 37];
        batched.fill_f64s(&mut buf);
        for (i, slot) in buf.iter().enumerate() {
            let want: f64 = manual.gen();
            assert_eq!(slot.to_bits(), want.to_bits(), "slot {i}");
        }
        assert_eq!(batched, manual, "post-fill state diverged");
    }

    #[test]
    fn fill_uniform_matches_per_element_loop_and_rng_state() {
        let mut batched = SmallRng::seed_from_u64(8);
        let mut manual = SmallRng::seed_from_u64(8);
        let mut buf = [0.0f64; 21];
        batched.fill_uniform_f64s(-2.5, 4.0, &mut buf);
        for (i, slot) in buf.iter().enumerate() {
            let want: f64 = manual.gen_range(-2.5..4.0);
            assert_eq!(slot.to_bits(), want.to_bits(), "slot {i}");
            assert!((-2.5..4.0).contains(slot));
        }
        assert_eq!(batched, manual, "post-fill state diverged");
    }

    #[test]
    fn fill_with_preserves_variable_draw_counts() {
        // A drawing expression consuming a data-dependent number of raw
        // draws (like a rejection sampler) must batch transparently.
        let rejecty = |r: &mut SmallRng| loop {
            let x: f64 = r.gen();
            if x < 0.75 {
                return x;
            }
        };
        let mut batched = SmallRng::seed_from_u64(9);
        let mut manual = SmallRng::seed_from_u64(9);
        let mut buf = [0.0f64; 40];
        batched.fill_f64s_with(&mut buf, rejecty);
        for (i, slot) in buf.iter().enumerate() {
            let want = rejecty(&mut manual);
            assert_eq!(slot.to_bits(), want.to_bits(), "slot {i}");
        }
        assert_eq!(batched, manual, "post-fill state diverged");
    }

    #[test]
    fn empty_fill_draws_nothing() {
        let mut rng = SmallRng::seed_from_u64(10);
        let untouched = rng.clone();
        rng.fill_f64s(&mut []);
        rng.fill_uniform_f64s(0.0, 1.0, &mut []);
        rng.fill_f64s_with(&mut [], |r| r.gen());
        assert_eq!(rng, untouched);
    }
}
