//! Simulation context for the whole interaction stack.
//!
//! Reproducibility is the paper's raison d'être — a measurement tool whose
//! runs cannot be replayed cannot be audited (cf. Krumnow et al. on
//! OpenWPM's reliability). Historically each crate in this workspace
//! improvised its own randomness (`rng_from_seed` call sites scattered
//! through `core`, `human`, `web`, `crawler`), its own clock (a private
//! `SimClock` inside `hlisa-browser`), and its own observation (a
//! hardwired recorder). This crate unifies all three concerns behind one
//! handle that the rest of the stack threads explicitly:
//!
//! * [`SimContext`] — named, hierarchically derived RNG streams
//!   (`ctx.stream("motion")`) plus fork points for parallel work
//!   (`ctx.fork_visit(domain, visit)`), built on
//!   `hlisa_stats::rngutil::derive_seed` so every stream is a pure
//!   function of `(root seed, path of labels)` and never of scheduling.
//! * [`VirtualClock`] — a shared, monotone simulated-millisecond clock.
//!   Handles clone cheaply and observe the same instant, so a browser, a
//!   session and an agent can agree on "now" without threading `&mut`
//!   time through every call.
//! * [`Observer`] — a pluggable sink for simulation events with counter
//!   metrics, replacing hardwired recording so detectors and recorders
//!   subscribe to the same dispatch fan-out.
//! * [`FaultPlan`] — the deterministic fault plane for chaos-mode crawls:
//!   typed fault injection drawn from a dedicated `"fault"` stream, so
//!   fault schedules are seeded and bit-reproducible while the
//!   interaction streams stay unperturbed under retry.
//!
//! * [`streams::STREAM_REGISTRY`] — the closed set of stream names a
//!   `SimContext` may be asked for. `hlisa-lint`'s `stream-name-registry`
//!   rule rejects call sites naming anything else, so a typo'd stream
//!   name is a build failure, not a silently minted fresh stream.
//!
//! The seed-derivation tree is documented in `DESIGN.md`; the contract
//! that matters is: **two `SimContext`s built from the same seed produce
//! identical draw sequences per stream, regardless of which other streams
//! were used in between.**

pub mod batch;
pub mod clock;
pub mod context;
pub mod fault;
pub mod observer;
pub mod streams;

pub use batch::SliceDraws;
pub use clock::VirtualClock;
pub use context::SimContext;
pub use fault::{
    FaultEvent, FaultKind, FaultMonitor, FaultPlan, InjectedFault, LossKind, LossPlan,
    LossSchedule, LossyObserver, WriteAheadObserver,
};
pub use observer::{CounterSet, Observer};
pub use streams::{is_registered, registered_names, stream_info, StreamInfo, STREAM_REGISTRY};

// Re-exported so downstream crates can bound helpers on `impl Rng`
// without depending on `rand` directly.
pub use rand::rngs::SmallRng;
pub use rand::Rng;
