//! Shared virtual clock.
//!
//! All interaction timing in the workspace is simulated, so whole crawl
//! campaigns run in milliseconds of wall-clock while behaving as if
//! minutes of interaction elapsed. Unlike the old per-browser `SimClock`,
//! a `VirtualClock` is a *handle*: clones share the same instant, letting
//! the browser, the webdriver session, and the interaction agent agree on
//! time without any of them owning it. Resolution mirrors what a page can
//! observe: Firefox exposes event timestamps at millisecond granularity
//! (Appendix D: "the granularity for typing events is 1 ms").

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// A shared, monotone simulated-millisecond clock.
///
/// Cheap to clone; all clones observe and advance the same instant. Use
/// [`VirtualClock::fork_detached`] for an independent copy.
#[derive(Debug, Clone, Default)]
pub struct VirtualClock {
    // f64 milliseconds, stored as bits so the handle is lock-free and
    // `Send + Sync` without a mutex.
    bits: Arc<AtomicU64>,
}

impl VirtualClock {
    /// A clock starting at t = 0.
    pub fn new() -> Self {
        Self::default()
    }

    /// A clock starting at `now_ms`.
    pub fn starting_at(now_ms: f64) -> Self {
        assert!(
            now_ms >= 0.0 && now_ms.is_finite(),
            "clock start must be finite and non-negative, got {now_ms}"
        );
        VirtualClock {
            bits: Arc::new(AtomicU64::new(now_ms.to_bits())),
        }
    }

    /// Current simulated time (ms, sub-ms precision kept internally).
    pub fn now_ms(&self) -> f64 {
        f64::from_bits(self.bits.load(Ordering::Acquire))
    }

    /// Current time as a page would observe it: quantised to 1 ms.
    pub fn observable_now_ms(&self) -> f64 {
        self.now_ms().floor()
    }

    /// Advances the clock by `delta_ms`.
    ///
    /// # Panics
    /// Panics on negative or non-finite advances — simulated time is
    /// monotone.
    pub fn advance(&self, delta_ms: f64) {
        assert!(
            delta_ms >= 0.0 && delta_ms.is_finite(),
            "clock must advance monotonically, got {delta_ms}"
        );
        let mut current = self.bits.load(Ordering::Acquire);
        loop {
            let next = (f64::from_bits(current) + delta_ms).to_bits();
            match self.bits.compare_exchange_weak(
                current,
                next,
                Ordering::AcqRel,
                Ordering::Acquire,
            ) {
                Ok(_) => return,
                Err(actual) => current = actual,
            }
        }
    }

    /// An independent clock frozen at this clock's current instant —
    /// advancing one no longer moves the other.
    pub fn fork_detached(&self) -> Self {
        VirtualClock {
            bits: Arc::new(AtomicU64::new(self.now_ms().to_bits())),
        }
    }

    /// True when `other` is a handle to this same clock.
    pub fn shares_time_with(&self, other: &VirtualClock) -> bool {
        Arc::ptr_eq(&self.bits, &other.bits)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn starts_at_zero_and_advances() {
        let c = VirtualClock::new();
        assert_eq!(c.now_ms(), 0.0);
        c.advance(12.75);
        assert_eq!(c.now_ms(), 12.75);
        assert_eq!(c.observable_now_ms(), 12.0);
    }

    #[test]
    #[should_panic(expected = "monotonically")]
    fn rejects_negative_advance() {
        VirtualClock::new().advance(-1.0);
    }

    #[test]
    fn clones_share_the_instant() {
        let a = VirtualClock::new();
        let b = a.clone();
        a.advance(100.0);
        assert_eq!(b.now_ms(), 100.0);
        b.advance(50.0);
        assert_eq!(a.now_ms(), 150.0);
        assert!(a.shares_time_with(&b));
    }

    #[test]
    fn detached_forks_diverge() {
        let a = VirtualClock::starting_at(10.0);
        let b = a.fork_detached();
        assert_eq!(b.now_ms(), 10.0);
        a.advance(5.0);
        assert_eq!(b.now_ms(), 10.0);
        assert!(!a.shares_time_with(&b));
    }
}
