//! The deterministic fault plane: typed fault injection for chaos-mode
//! crawls.
//!
//! The paper's field study (§3, Table 2) runs against the live web, where
//! visits fail, stall, and time out; Krumnow et al. (PAPERS.md) show that
//! exactly these failure modes silently bias measurement results when the
//! harness does not account for them. This module gives the workspace a
//! *fault plane*: a [`FaultPlan`] holding per-visit injection rates for a
//! typed fault taxonomy ([`FaultKind`]), drawn from a dedicated named RNG
//! stream (conventionally `ctx.stream("fault")`) so that fault schedules
//! are seeded, forkable per worker, and bit-reproducible — and, crucially,
//! so that injections and retries never perturb the interaction streams
//! (`"visit"`, `"motion"`, `"typing"`, ...) that drive HLISA chains.
//!
//! The plan deliberately knows nothing about sites or visits; it draws
//! generic [`InjectedFault`]s that `hlisa-web` maps onto its visit-error
//! taxonomy and `hlisa-crawler`'s recovery engine reacts to. Recovery
//! telemetry flows through the [`Observer`] protocol as [`FaultEvent`]s,
//! aggregated by a [`FaultMonitor`] into the `fault.*` / `retry.*` /
//! `breaker.*` counter family.
//!
//! The second half of this module is the **measurement-loss plane**:
//! where [`FaultPlan`] breaks *visits*, [`LossPlan`] breaks the
//! *instrument* watching them. Krumnow et al. show that late-attaching
//! instrumentation, dropped events, and partial captures silently corrupt
//! crawl data while looking like clean results. A [`LossSchedule`] drawn
//! per visit from the same `"fault"` stream family describes exactly
//! which emitted events the observer channel loses; the [`LossyObserver`]
//! decorator applies it to *any* [`Observer`] without touching the
//! observer's code, and [`WriteAheadObserver`] is the strengthened
//! capture mode — events buffered at emission and replayed on attach, so
//! a late or lossy channel recovers the full stream. As with the fault
//! plan, a no-op loss plan consumes **zero** RNG draws.

use crate::observer::{CounterSet, Observer};
use hlisa_stats::rngutil::derive_seed;
use rand::Rng;

/// The typed fault taxonomy the plane can inject into a visit attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum FaultKind {
    /// The page never finishes loading inside the visit deadline.
    PageLoadTimeout,
    /// The visit freezes partway through the interaction chain and sits
    /// there until the deadline fires.
    MidVisitStall,
    /// The page's JS realm dies mid-visit (renderer / browser crash).
    RealmCrash,
    /// A transient network error: connection reset before any HTTP
    /// response arrives.
    TransientNetwork,
    /// The host refuses connections for this attempt (DNS failure,
    /// connect refusal) — retrying within the campaign is pointless.
    PermanentUnreachable,
}

impl FaultKind {
    /// Every kind, in a fixed order (rate partitioning and counter
    /// rendering both rely on this order being stable).
    pub const ALL: [FaultKind; 5] = [
        FaultKind::PageLoadTimeout,
        FaultKind::MidVisitStall,
        FaultKind::RealmCrash,
        FaultKind::TransientNetwork,
        FaultKind::PermanentUnreachable,
    ];

    /// Stable snake_case name, used in counter names and reports.
    pub fn name(self) -> &'static str {
        match self {
            FaultKind::PageLoadTimeout => "page_load_timeout",
            FaultKind::MidVisitStall => "mid_visit_stall",
            FaultKind::RealmCrash => "realm_crash",
            FaultKind::TransientNetwork => "transient_network",
            FaultKind::PermanentUnreachable => "permanent_unreachable",
        }
    }

    /// Whether retrying the visit can possibly help. Permanent faults
    /// feed the crawler's circuit breaker instead of its retry loop.
    pub fn is_permanent(self) -> bool {
        matches!(self, FaultKind::PermanentUnreachable)
    }
}

/// One concrete fault scheduled for one visit attempt.
///
/// Stall/crash faults carry the chain position they hit at, drawn from
/// the fault stream at schedule time so the visit's own streams stay
/// untouched.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum InjectedFault {
    /// See [`FaultKind::PageLoadTimeout`].
    PageLoadTimeout,
    /// Stall at `at_fraction` ∈ [0, 1) of the planned interaction chain.
    MidVisitStall {
        /// Fraction of the interaction chain completed before the freeze.
        at_fraction: f64,
    },
    /// Crash at `at_fraction` ∈ [0, 1) of the planned interaction chain.
    RealmCrash {
        /// Fraction of the interaction chain completed before the crash.
        at_fraction: f64,
    },
    /// See [`FaultKind::TransientNetwork`].
    TransientNetwork,
    /// See [`FaultKind::PermanentUnreachable`].
    PermanentUnreachable,
}

impl InjectedFault {
    /// The taxonomy bucket this fault belongs to.
    pub fn kind(&self) -> FaultKind {
        match self {
            InjectedFault::PageLoadTimeout => FaultKind::PageLoadTimeout,
            InjectedFault::MidVisitStall { .. } => FaultKind::MidVisitStall,
            InjectedFault::RealmCrash { .. } => FaultKind::RealmCrash,
            InjectedFault::TransientNetwork => FaultKind::TransientNetwork,
            InjectedFault::PermanentUnreachable => FaultKind::PermanentUnreachable,
        }
    }
}

/// Label for the per-site outage derivation (see [`FaultPlan::site_is_down`]),
/// kept distinct from every stream name used elsewhere in the seed tree.
const SITE_OUTAGE_LABEL: &str = "fault-site-outage";

/// Per-visit and per-site fault injection rates.
///
/// A plan is pure configuration: every draw comes from an RNG stream the
/// caller passes in, so the same plan is shared by all workers of a
/// campaign while each worker's schedule derives from its own fork of the
/// seed tree. With every rate at zero the plan is a guaranteed no-op —
/// [`FaultPlan::draw`] returns without consuming a single draw, which is
/// what makes a rate-0 chaos run bit-identical to a faultless one.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultPlan {
    /// Per-visit probability of a page-load timeout.
    pub page_load_timeout: f64,
    /// Per-visit probability of a mid-visit stall.
    pub mid_visit_stall: f64,
    /// Per-visit probability of a realm crash.
    pub realm_crash: f64,
    /// Per-visit probability of a transient network error.
    pub transient_network: f64,
    /// Per-visit probability of a permanent connect failure.
    pub permanent_unreachable: f64,
    /// Fraction of sites that are down for the *whole* campaign — decided
    /// per domain (not per visit), identically on every machine/worker.
    pub site_outage: f64,
}

impl FaultPlan {
    /// The no-fault plan: draws nothing, injects nothing.
    pub fn none() -> Self {
        Self {
            page_load_timeout: 0.0,
            mid_visit_stall: 0.0,
            realm_crash: 0.0,
            transient_network: 0.0,
            permanent_unreachable: 0.0,
            site_outage: 0.0,
        }
    }

    /// A uniform chaos plan: `total_rate` per-visit fault probability,
    /// split evenly across the five kinds; no whole-campaign outages.
    pub fn uniform(total_rate: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&total_rate),
            "fault rate must be a probability, got {total_rate}"
        );
        let each = total_rate / FaultKind::ALL.len() as f64;
        Self {
            page_load_timeout: each,
            mid_visit_stall: each,
            realm_crash: each,
            transient_network: each,
            permanent_unreachable: each,
            site_outage: 0.0,
        }
    }

    /// The per-visit rate of one kind.
    pub fn rate(&self, kind: FaultKind) -> f64 {
        match kind {
            FaultKind::PageLoadTimeout => self.page_load_timeout,
            FaultKind::MidVisitStall => self.mid_visit_stall,
            FaultKind::RealmCrash => self.realm_crash,
            FaultKind::TransientNetwork => self.transient_network,
            FaultKind::PermanentUnreachable => self.permanent_unreachable,
        }
    }

    /// Total per-visit injection probability (sum over kinds, capped at 1).
    pub fn total_visit_rate(&self) -> f64 {
        FaultKind::ALL
            .iter()
            .map(|k| self.rate(*k))
            .sum::<f64>()
            .min(1.0)
    }

    /// True when the plan can never inject anything.
    pub fn is_noop(&self) -> bool {
        self.total_visit_rate() <= 0.0 && self.site_outage <= 0.0
    }

    /// Schedules at most one fault for one visit attempt, drawing from
    /// `rng` — by convention a context's `"fault"` stream, never the
    /// `"visit"` stream. A no-op plan consumes **zero** draws.
    pub fn draw<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<InjectedFault> {
        if self.total_visit_rate() <= 0.0 {
            return None;
        }
        // One uniform draw partitions [0, 1) among the kinds, in
        // `FaultKind::ALL` order; the tail is the no-fault region.
        let u = rng.gen::<f64>();
        let mut edge = 0.0;
        for kind in FaultKind::ALL {
            edge += self.rate(kind);
            if u < edge {
                return Some(match kind {
                    FaultKind::PageLoadTimeout => InjectedFault::PageLoadTimeout,
                    FaultKind::MidVisitStall => InjectedFault::MidVisitStall {
                        at_fraction: rng.gen::<f64>(),
                    },
                    FaultKind::RealmCrash => InjectedFault::RealmCrash {
                        at_fraction: rng.gen::<f64>(),
                    },
                    FaultKind::TransientNetwork => InjectedFault::TransientNetwork,
                    FaultKind::PermanentUnreachable => InjectedFault::PermanentUnreachable,
                });
            }
        }
        None
    }

    /// Whether `domain` is down for the whole campaign under this plan.
    ///
    /// A pure function of `(campaign seed, domain, rate)` — independent of
    /// visit order, worker assignment, and machine — so both crawl
    /// machines observe the same outage set, feeding Table 2's
    /// unreachable-site row the way a real dead host would.
    pub fn site_is_down(&self, campaign_seed: u64, domain: &str) -> bool {
        if self.site_outage <= 0.0 {
            return false;
        }
        let h = derive_seed(campaign_seed, domain, 0) ^ derive_seed(0, SITE_OUTAGE_LABEL, 1);
        // 53 mantissa bits give a uniform in [0, 1) with no rounding bias.
        let u = (h >> 11) as f64 / (1u64 << 53) as f64;
        u < self.site_outage
    }
}

/// Label for the per-event partial-capture derivation (see
/// [`LossSchedule::delivers`]), distinct from every stream name and from
/// [`SITE_OUTAGE_LABEL`].
const PARTIAL_CAPTURE_LABEL: &str = "loss-partial-capture";

/// The measurement-loss taxonomy: the ways an observer channel can lose
/// events that the visit really emitted.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum LossKind {
    /// Instrumentation attached late: a window at visit start where no
    /// observer is wired, so early events vanish.
    LateAttach,
    /// The observer dropped out for a contiguous window mid-visit.
    DropoutWindow,
    /// Individual events are lost independently at some per-event rate.
    PartialCapture,
}

impl LossKind {
    /// Every kind, in the fixed order the plan draws them in.
    pub const ALL: [LossKind; 3] = [
        LossKind::LateAttach,
        LossKind::DropoutWindow,
        LossKind::PartialCapture,
    ];

    /// Stable snake_case name, used in counter names and reports.
    pub fn name(self) -> &'static str {
        match self {
            LossKind::LateAttach => "late_attach",
            LossKind::DropoutWindow => "dropout_window",
            LossKind::PartialCapture => "partial_capture",
        }
    }
}

/// Per-visit measurement-loss rates.
///
/// Like [`FaultPlan`], a loss plan is pure configuration: every draw
/// comes from the caller's `"fault"` stream, and a no-op plan consumes
/// zero draws, so rate-0 captured campaigns are bit-identical to runs
/// that never heard of measurement loss.
#[derive(Debug, Clone, PartialEq)]
pub struct LossPlan {
    /// Per-visit probability that instrumentation attaches late.
    pub late_attach: f64,
    /// Longest late-attach window, as a fraction of the visit span; the
    /// actual window is drawn uniformly in `(0, span]`.
    pub late_attach_span: f64,
    /// Per-visit probability of an observer dropout window.
    pub dropout: f64,
    /// Longest dropout window, as a fraction of the visit span.
    pub dropout_span: f64,
    /// Per-event probability that a delivered event is silently lost.
    pub partial_capture: f64,
}

impl LossPlan {
    /// The no-loss plan: draws nothing, loses nothing.
    pub fn none() -> Self {
        Self {
            late_attach: 0.0,
            late_attach_span: 0.0,
            dropout: 0.0,
            dropout_span: 0.0,
            partial_capture: 0.0,
        }
    }

    /// A uniform loss plan: `rate` for all three kinds, with windows up
    /// to 30% of the visit span — the shape of the Krumnow study's
    /// degraded configurations.
    pub fn uniform(rate: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&rate),
            "loss rate must be a probability, got {rate}"
        );
        Self {
            late_attach: rate,
            late_attach_span: 0.3,
            dropout: rate,
            dropout_span: 0.3,
            partial_capture: rate,
        }
    }

    /// True when the plan can never lose anything.
    pub fn is_noop(&self) -> bool {
        self.late_attach <= 0.0 && self.dropout <= 0.0 && self.partial_capture <= 0.0
    }

    /// Draws one visit's loss schedule from `rng` — by convention the
    /// visit context's `"fault"` stream, so loss never perturbs the
    /// interaction streams. A no-op plan (and each inactive kind)
    /// consumes **zero** draws.
    pub fn draw<R: Rng + ?Sized>(&self, rng: &mut R) -> LossSchedule {
        let mut schedule = LossSchedule::pristine();
        if self.late_attach > 0.0 && rng.gen::<f64>() < self.late_attach {
            let span = self.late_attach_span.clamp(0.0, 1.0);
            schedule.attach_at = rng.gen::<f64>() * span;
        }
        if self.dropout > 0.0 && rng.gen::<f64>() < self.dropout {
            let start = rng.gen::<f64>();
            let len = rng.gen::<f64>() * self.dropout_span.clamp(0.0, 1.0);
            schedule.dropout = Some((start, (start + len).min(1.0)));
        }
        if self.partial_capture > 0.0 {
            schedule.partial = Some((self.partial_capture.min(1.0), rng.gen::<u64>()));
        }
        schedule
    }
}

/// One visit's concrete loss schedule: which emitted events the observer
/// channel actually receives.
///
/// Positions are fractions of the visit span (`t / deadline`), so the
/// schedule is independent of any particular site's timeline. Per-event
/// partial-capture decisions are a pure hash of the drawn salt and the
/// event index — the draw count per visit stays fixed however many
/// events the visit emits.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LossSchedule {
    /// Fraction of the visit span before which no observer is wired.
    pub attach_at: f64,
    /// Observer dropout window as `[start, end)` fractions, if any.
    pub dropout: Option<(f64, f64)>,
    /// Per-event loss as `(rate, salt)`, if any.
    pub partial: Option<(f64, u64)>,
}

impl LossSchedule {
    /// The lossless schedule: attached from t = 0, no dropout, no
    /// partial capture. What a no-op [`LossPlan`] always produces.
    pub fn pristine() -> Self {
        Self {
            attach_at: 0.0,
            dropout: None,
            partial: None,
        }
    }

    /// True when the schedule delivers every event.
    pub fn is_pristine(&self) -> bool {
        self.attach_at <= 0.0 && self.dropout.is_none() && self.partial.is_none()
    }

    /// Which loss kind (if any) swallows the event at `at_fraction` of
    /// the visit span with emission index `event_index`. Checked in
    /// [`LossKind::ALL`] order, so an event inside both a late-attach
    /// window and a dropout window is blamed on the late attach.
    pub fn blame(&self, at_fraction: f64, event_index: u64) -> Option<LossKind> {
        if at_fraction < self.attach_at {
            return Some(LossKind::LateAttach);
        }
        if let Some((start, end)) = self.dropout {
            if at_fraction >= start && at_fraction < end {
                return Some(LossKind::DropoutWindow);
            }
        }
        if let Some((rate, salt)) = self.partial {
            let h = derive_seed(salt, PARTIAL_CAPTURE_LABEL, event_index);
            // 53 mantissa bits give a uniform in [0, 1) with no rounding
            // bias, matching `FaultPlan::site_is_down`.
            let u = (h >> 11) as f64 / (1u64 << 53) as f64;
            if u < rate {
                return Some(LossKind::PartialCapture);
            }
        }
        None
    }

    /// Whether the observer channel delivers this event.
    pub fn delivers(&self, at_fraction: f64, event_index: u64) -> bool {
        self.blame(at_fraction, event_index).is_none()
    }
}

/// Decorator that applies a [`LossSchedule`] to any [`Observer`] — the
/// *naive* capture pipeline of the reliability study. The inner observer
/// sees only the events the schedule delivers; what it misses, it misses
/// silently, exactly like a real instrument that attached late or
/// dropped events.
///
/// The decorator accounts for the channel in its own `loss.*` counters
/// (offered, delivered, and dropped per [`LossKind`]) so a study can
/// report *how much* was lost even though the degraded observer cannot.
#[derive(Debug, Clone, PartialEq)]
pub struct LossyObserver<O> {
    inner: O,
    schedule: LossSchedule,
    span_ms: f64,
    offered: u64,
    delivered: u64,
    // One tally per LossKind::ALL entry, materialized as
    // `loss.dropped.<kind>` counters on demand — same hot-path reasoning
    // as WriteAheadObserver.
    dropped: [u64; LossKind::ALL.len()],
}

impl<O> LossyObserver<O> {
    /// Wraps `inner` behind `schedule`, normalising event times by
    /// `span_ms` (the visit deadline) to match the schedule's fractional
    /// positions.
    pub fn new(inner: O, schedule: LossSchedule, span_ms: f64) -> Self {
        Self {
            inner,
            schedule,
            span_ms,
            offered: 0,
            delivered: 0,
            dropped: [0; LossKind::ALL.len()],
        }
    }

    /// The degraded observer behind the channel.
    pub fn inner(&self) -> &O {
        &self.inner
    }

    /// Unwraps the degraded observer.
    pub fn into_inner(self) -> O {
        self.inner
    }
}

impl<E, O: Observer<E>> Observer<E> for LossyObserver<O> {
    fn on_event(&mut self, t_ms: f64, event: &E) {
        let index = self.offered;
        self.offered += 1;
        let at_fraction = if self.span_ms > 0.0 {
            (t_ms / self.span_ms).clamp(0.0, 1.0)
        } else {
            0.0
        };
        match self.schedule.blame(at_fraction, index) {
            None => {
                self.delivered += 1;
                self.inner.on_event(t_ms, event);
            }
            Some(kind) => {
                self.dropped[LossKind::ALL.iter().position(|k| *k == kind).unwrap_or(0)] += 1;
            }
        }
    }

    fn counters(&self) -> CounterSet {
        let mut c = self.inner.counters();
        if self.offered > 0 {
            c.add("loss.offered", self.offered);
        }
        if self.delivered > 0 {
            c.add("loss.delivered", self.delivered);
        }
        let dropped: u64 = self.dropped.iter().sum();
        if dropped > 0 {
            c.add("loss.dropped", dropped);
        }
        for (kind, n) in LossKind::ALL.iter().zip(self.dropped) {
            if n > 0 {
                c.add(&format!("loss.dropped.{}", kind.name()), n);
            }
        }
        c
    }
}

/// The strengthened capture mode: write-ahead event capture.
///
/// Every event is buffered at the emission site — *upstream* of any
/// lossy observer channel — and replayed into the inner observer, in
/// order, when the instrumentation attaches ([`WriteAheadObserver::attach`]).
/// After attach, events flow straight through. Paired with an attach
/// barrier (the visit does not proceed past instrumentation setup until
/// the attach acks), the inner observer provably receives the exact
/// event stream a pristine channel would have delivered, whatever the
/// [`LossSchedule`] says.
#[derive(Debug, Clone, PartialEq)]
pub struct WriteAheadObserver<E, O> {
    inner: O,
    buffer: Vec<(f64, E)>,
    attached: bool,
    // Plain tallies, materialized as `capture.*` counters on demand:
    // this observer sits on the per-event hot path of every strengthened
    // visit, where a name-keyed `CounterSet::add` per event is the
    // difference between negligible and double-digit-percent overhead.
    direct: u64,
    buffered: u64,
    replayed: u64,
}

impl<E: Clone + Send, O: Observer<E>> WriteAheadObserver<E, O> {
    /// A write-ahead channel whose instrumentation has not attached yet;
    /// events buffer until [`attach`](Self::attach).
    pub fn detached(inner: O) -> Self {
        Self {
            inner,
            buffer: Vec::new(),
            attached: false,
            direct: 0,
            buffered: 0,
            replayed: 0,
        }
    }

    /// Whether the inner observer is attached and receiving directly.
    pub fn is_attached(&self) -> bool {
        self.attached
    }

    /// Pre-sizes the write-ahead buffer for a caller that knows how many
    /// events will arrive before the attach barrier acks.
    pub fn reserve(&mut self, additional: usize) {
        self.buffer.reserve(additional);
    }

    /// Acks the attach barrier: replays every buffered event into the
    /// inner observer, in emission order, then switches to pass-through.
    pub fn attach(&mut self) {
        if self.attached {
            return;
        }
        self.attached = true;
        self.replayed += self.buffer.len() as u64;
        for (t_ms, event) in &self.buffer {
            self.inner.on_event(*t_ms, event);
        }
        self.buffer.clear();
    }

    /// The observer behind the write-ahead buffer.
    pub fn inner(&self) -> &O {
        &self.inner
    }

    /// Unwraps the inner observer, attaching first so no buffered event
    /// is ever lost.
    pub fn into_inner(mut self) -> O {
        self.attach();
        self.inner
    }
}

impl<E: Clone + Send, O: Observer<E>> Observer<E> for WriteAheadObserver<E, O> {
    fn on_event(&mut self, t_ms: f64, event: &E) {
        if self.attached {
            self.direct += 1;
            self.inner.on_event(t_ms, event);
        } else {
            self.buffered += 1;
            self.buffer.push((t_ms, event.clone()));
        }
    }

    fn counters(&self) -> CounterSet {
        let mut c = self.inner.counters();
        for (name, n) in [
            ("capture.direct", self.direct),
            ("capture.buffered", self.buffered),
            ("capture.replayed", self.replayed),
        ] {
            if n > 0 {
                c.add(name, n);
            }
        }
        c
    }
}

/// One fault-plane event, published to [`Observer`] sinks by the
/// recovery engine.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FaultEvent {
    /// A scheduled fault fired during an attempt.
    Injected {
        /// Taxonomy bucket of the fired fault.
        kind: FaultKind,
    },
    /// A failed attempt will be retried after a backoff.
    RetryScheduled {
        /// 0-based index of the attempt that just failed.
        attempt: u32,
        /// Jittered backoff delay before the next attempt.
        backoff_ms: f64,
    },
    /// A visit eventually succeeded after at least one retry.
    RecoveredAfterRetry {
        /// Total attempts the visit took (≥ 2).
        attempts: u32,
    },
    /// A visit exhausted its retry budget and recorded a failure.
    GaveUp {
        /// Total attempts made.
        attempts: u32,
    },
    /// A site's circuit breaker opened after consecutive permanent faults.
    BreakerTripped,
    /// A visit was skipped outright because the breaker was open.
    BreakerSkippedVisit,
}

/// Streaming [`Observer`] that folds [`FaultEvent`]s into the
/// `fault.*` / `retry.*` / `breaker.*` counter family.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FaultMonitor {
    counters: CounterSet,
}

impl FaultMonitor {
    /// A monitor with every counter at zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Convenience for callers without an event-dispatch loop: observe
    /// one event at an unspecified time.
    pub fn record(&mut self, event: &FaultEvent) {
        self.on_event(0.0, event);
    }
}

impl Observer<FaultEvent> for FaultMonitor {
    fn on_event(&mut self, _t_ms: f64, event: &FaultEvent) {
        match event {
            FaultEvent::Injected { kind } => {
                self.counters.add("fault.injected", 1);
                self.counters
                    .add(&format!("fault.injected.{}", kind.name()), 1);
            }
            FaultEvent::RetryScheduled { backoff_ms, .. } => {
                self.counters.add("retry.scheduled", 1);
                self.counters
                    .add("retry.backoff_ms_total", backoff_ms.round() as u64);
            }
            FaultEvent::RecoveredAfterRetry { .. } => {
                self.counters.add("retry.recovered", 1);
            }
            FaultEvent::GaveUp { .. } => {
                self.counters.add("retry.gave_up", 1);
            }
            FaultEvent::BreakerTripped => {
                self.counters.add("breaker.tripped", 1);
            }
            FaultEvent::BreakerSkippedVisit => {
                self.counters.add("breaker.skipped_visits", 1);
            }
        }
    }

    fn counters(&self) -> CounterSet {
        self.counters.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::SimContext;

    #[test]
    fn noop_plan_consumes_no_draws() {
        let plan = FaultPlan::none();
        let mut a = SimContext::new(1);
        let mut b = SimContext::new(1);
        for _ in 0..16 {
            assert_eq!(plan.draw(a.stream("fault")), None);
        }
        // The fault stream of `a` is untouched: its next raw draw matches
        // a sibling context that never saw the plan.
        assert_eq!(
            a.stream("fault").gen::<u64>(),
            b.stream("fault").gen::<u64>()
        );
    }

    #[test]
    fn draws_are_deterministic_per_seed() {
        let plan = FaultPlan::uniform(0.6);
        let mut a = SimContext::new(7);
        let mut b = SimContext::new(7);
        for _ in 0..64 {
            assert_eq!(plan.draw(a.stream("fault")), plan.draw(b.stream("fault")));
        }
    }

    #[test]
    fn uniform_plan_hits_every_kind() {
        let plan = FaultPlan::uniform(0.9);
        let mut ctx = SimContext::new(3);
        let mut seen: Vec<FaultKind> = Vec::new();
        for _ in 0..400 {
            if let Some(f) = plan.draw(ctx.stream("fault")) {
                if !seen.contains(&f.kind()) {
                    seen.push(f.kind());
                }
            }
        }
        assert_eq!(seen.len(), FaultKind::ALL.len(), "missing kinds: {seen:?}");
    }

    #[test]
    fn injection_rate_tracks_the_plan() {
        let plan = FaultPlan::uniform(0.25);
        let mut ctx = SimContext::new(11);
        let n = 4_000;
        let hits = (0..n)
            .filter(|_| plan.draw(ctx.stream("fault")).is_some())
            .count();
        let rate = hits as f64 / n as f64;
        assert!((rate - 0.25).abs() < 0.03, "observed rate {rate}");
    }

    #[test]
    fn stall_fractions_are_in_range() {
        let plan = FaultPlan {
            mid_visit_stall: 1.0,
            ..FaultPlan::none()
        };
        let mut ctx = SimContext::new(5);
        for _ in 0..32 {
            match plan.draw(ctx.stream("fault")) {
                Some(InjectedFault::MidVisitStall { at_fraction }) => {
                    assert!((0.0..1.0).contains(&at_fraction));
                }
                other => unreachable!("expected a stall, got {other:?}"),
            }
        }
    }

    #[test]
    fn site_outage_is_deterministic_and_rate_sensitive() {
        let plan = FaultPlan {
            site_outage: 0.3,
            ..FaultPlan::none()
        };
        let domains: Vec<String> = (0..500).map(|i| format!("site{i:04}.example")).collect();
        let down: Vec<bool> = domains.iter().map(|d| plan.site_is_down(9, d)).collect();
        // Identical on a second evaluation (any machine, any worker).
        let again: Vec<bool> = domains.iter().map(|d| plan.site_is_down(9, d)).collect();
        assert_eq!(down, again);
        let frac = down.iter().filter(|d| **d).count() as f64 / down.len() as f64;
        assert!((frac - 0.3).abs() < 0.08, "outage fraction {frac}");
        // Rate 0 downs nothing; a different seed downs a different set.
        assert!(domains
            .iter()
            .all(|d| !FaultPlan::none().site_is_down(9, d)));
        let other: Vec<bool> = domains.iter().map(|d| plan.site_is_down(10, d)).collect();
        assert_ne!(down, other);
    }

    #[test]
    fn monitor_aggregates_the_counter_family() {
        let mut m = FaultMonitor::new();
        m.record(&FaultEvent::Injected {
            kind: FaultKind::RealmCrash,
        });
        m.record(&FaultEvent::Injected {
            kind: FaultKind::RealmCrash,
        });
        m.record(&FaultEvent::RetryScheduled {
            attempt: 0,
            backoff_ms: 800.0,
        });
        m.record(&FaultEvent::RecoveredAfterRetry { attempts: 2 });
        m.record(&FaultEvent::GaveUp { attempts: 3 });
        m.record(&FaultEvent::BreakerTripped);
        m.record(&FaultEvent::BreakerSkippedVisit);
        let c = m.counters();
        assert_eq!(c.get("fault.injected"), Some(2));
        assert_eq!(c.get("fault.injected.realm_crash"), Some(2));
        assert_eq!(c.get("retry.scheduled"), Some(1));
        assert_eq!(c.get("retry.backoff_ms_total"), Some(800));
        assert_eq!(c.get("retry.recovered"), Some(1));
        assert_eq!(c.get("retry.gave_up"), Some(1));
        assert_eq!(c.get("breaker.tripped"), Some(1));
        assert_eq!(c.get("breaker.skipped_visits"), Some(1));
    }

    #[test]
    fn noop_loss_plan_consumes_no_draws() {
        let plan = LossPlan::none();
        let mut a = SimContext::new(1);
        let mut b = SimContext::new(1);
        for _ in 0..16 {
            let schedule = plan.draw(a.stream("fault"));
            assert!(schedule.is_pristine());
        }
        // The fault stream of `a` is untouched: its next raw draw matches
        // a sibling context that never saw the plan.
        assert_eq!(
            a.stream("fault").gen::<u64>(),
            b.stream("fault").gen::<u64>()
        );
    }

    #[test]
    fn loss_draws_are_deterministic_per_seed() {
        let plan = LossPlan::uniform(0.5);
        let mut a = SimContext::new(7);
        let mut b = SimContext::new(7);
        for _ in 0..64 {
            assert_eq!(plan.draw(a.stream("fault")), plan.draw(b.stream("fault")));
        }
    }

    #[test]
    fn pristine_schedule_delivers_everything() {
        let s = LossSchedule::pristine();
        for i in 0..64 {
            assert!(s.delivers(i as f64 / 64.0, i));
        }
    }

    #[test]
    fn late_attach_swallows_the_visit_prefix() {
        let s = LossSchedule {
            attach_at: 0.25,
            ..LossSchedule::pristine()
        };
        assert_eq!(s.blame(0.0, 0), Some(LossKind::LateAttach));
        assert_eq!(s.blame(0.24, 1), Some(LossKind::LateAttach));
        assert_eq!(s.blame(0.25, 2), None);
        assert_eq!(s.blame(0.9, 3), None);
    }

    #[test]
    fn dropout_window_swallows_its_interval() {
        let s = LossSchedule {
            dropout: Some((0.4, 0.6)),
            ..LossSchedule::pristine()
        };
        assert_eq!(s.blame(0.39, 0), None);
        assert_eq!(s.blame(0.4, 1), Some(LossKind::DropoutWindow));
        assert_eq!(s.blame(0.59, 2), Some(LossKind::DropoutWindow));
        assert_eq!(s.blame(0.6, 3), None);
    }

    #[test]
    fn partial_capture_is_deterministic_and_tracks_rate() {
        let s = LossSchedule {
            partial: Some((0.3, 0xfeed)),
            ..LossSchedule::pristine()
        };
        let n = 4_000;
        let dropped = (0..n).filter(|i| !s.delivers(0.5, *i)).count();
        let rate = dropped as f64 / n as f64;
        assert!((rate - 0.3).abs() < 0.03, "observed drop rate {rate}");
        // Pure in (salt, index): a second evaluation agrees event-wise.
        for i in 0..256 {
            assert_eq!(s.delivers(0.5, i), s.delivers(0.9, i));
        }
    }

    #[test]
    fn drawn_schedules_stay_in_range() {
        let plan = LossPlan::uniform(1.0);
        let mut ctx = SimContext::new(13);
        for _ in 0..64 {
            let s = plan.draw(ctx.stream("fault"));
            assert!((0.0..=0.3).contains(&s.attach_at));
            let (start, end) = s.dropout.unwrap_or((0.0, 0.0));
            assert!((0.0..1.0).contains(&start) && end <= 1.0 && start <= end);
            let (rate, _) = s.partial.unwrap_or((0.0, 0));
            assert!((0.0..=1.0).contains(&rate));
        }
    }

    #[test]
    fn lossy_observer_degrades_a_monitor_without_touching_it() {
        let schedule = LossSchedule {
            attach_at: 0.5,
            ..LossSchedule::pristine()
        };
        let mut lossy = LossyObserver::new(FaultMonitor::new(), schedule, 100.0);
        let event = FaultEvent::Injected {
            kind: FaultKind::RealmCrash,
        };
        lossy.on_event(10.0, &event); // inside the late-attach window
        lossy.on_event(90.0, &event); // delivered
        let c = lossy.counters();
        assert_eq!(c.get("loss.offered"), Some(2));
        assert_eq!(c.get("loss.delivered"), Some(1));
        assert_eq!(c.get("loss.dropped"), Some(1));
        assert_eq!(c.get("loss.dropped.late_attach"), Some(1));
        // The degraded monitor saw exactly one injection.
        assert_eq!(lossy.inner().counters().get("fault.injected"), Some(1));
    }

    #[test]
    fn pristine_lossy_observer_is_transparent() {
        let mut lossy = LossyObserver::new(FaultMonitor::new(), LossSchedule::pristine(), 100.0);
        let mut direct = FaultMonitor::new();
        for t in 0..8 {
            let event = FaultEvent::BreakerSkippedVisit;
            lossy.on_event(t as f64, &event);
            direct.on_event(t as f64, &event);
        }
        assert_eq!(lossy.inner().counters(), direct.counters());
        assert_eq!(lossy.counters().get("loss.dropped"), None);
    }

    #[test]
    fn write_ahead_replays_the_full_stream_on_attach() {
        let mut wal = WriteAheadObserver::detached(FaultMonitor::new());
        let mut direct = FaultMonitor::new();
        let event = FaultEvent::Injected {
            kind: FaultKind::TransientNetwork,
        };
        for t in 0..5 {
            wal.on_event(t as f64, &event);
            direct.on_event(t as f64, &event);
        }
        // Nothing reached the inner observer yet...
        assert_eq!(wal.inner().counters().get("fault.injected"), None);
        wal.attach();
        // ...but the attach barrier recovers the whole prefix, and later
        // events flow straight through.
        wal.on_event(5.0, &event);
        direct.on_event(5.0, &event);
        assert_eq!(wal.inner().counters(), direct.counters());
        let c = wal.counters();
        assert_eq!(c.get("capture.buffered"), Some(5));
        assert_eq!(c.get("capture.replayed"), Some(5));
        assert_eq!(c.get("capture.direct"), Some(1));
    }

    #[test]
    fn write_ahead_into_inner_never_loses_buffered_events() {
        let mut wal = WriteAheadObserver::detached(FaultMonitor::new());
        wal.on_event(0.0, &FaultEvent::BreakerTripped);
        let inner = wal.into_inner();
        assert_eq!(inner.counters().get("breaker.tripped"), Some(1));
    }

    #[test]
    fn rates_round_trip_through_accessors() {
        let plan = FaultPlan::uniform(0.5);
        for kind in FaultKind::ALL {
            assert!((plan.rate(kind) - 0.1).abs() < 1e-12);
        }
        assert!((plan.total_visit_rate() - 0.5).abs() < 1e-12);
        assert!(!plan.is_noop());
        assert!(FaultPlan::none().is_noop());
    }
}
