//! The deterministic fault plane: typed fault injection for chaos-mode
//! crawls.
//!
//! The paper's field study (§3, Table 2) runs against the live web, where
//! visits fail, stall, and time out; Krumnow et al. (PAPERS.md) show that
//! exactly these failure modes silently bias measurement results when the
//! harness does not account for them. This module gives the workspace a
//! *fault plane*: a [`FaultPlan`] holding per-visit injection rates for a
//! typed fault taxonomy ([`FaultKind`]), drawn from a dedicated named RNG
//! stream (conventionally `ctx.stream("fault")`) so that fault schedules
//! are seeded, forkable per worker, and bit-reproducible — and, crucially,
//! so that injections and retries never perturb the interaction streams
//! (`"visit"`, `"motion"`, `"typing"`, ...) that drive HLISA chains.
//!
//! The plan deliberately knows nothing about sites or visits; it draws
//! generic [`InjectedFault`]s that `hlisa-web` maps onto its visit-error
//! taxonomy and `hlisa-crawler`'s recovery engine reacts to. Recovery
//! telemetry flows through the [`Observer`] protocol as [`FaultEvent`]s,
//! aggregated by a [`FaultMonitor`] into the `fault.*` / `retry.*` /
//! `breaker.*` counter family.

use crate::observer::{CounterSet, Observer};
use hlisa_stats::rngutil::derive_seed;
use rand::Rng;

/// The typed fault taxonomy the plane can inject into a visit attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum FaultKind {
    /// The page never finishes loading inside the visit deadline.
    PageLoadTimeout,
    /// The visit freezes partway through the interaction chain and sits
    /// there until the deadline fires.
    MidVisitStall,
    /// The page's JS realm dies mid-visit (renderer / browser crash).
    RealmCrash,
    /// A transient network error: connection reset before any HTTP
    /// response arrives.
    TransientNetwork,
    /// The host refuses connections for this attempt (DNS failure,
    /// connect refusal) — retrying within the campaign is pointless.
    PermanentUnreachable,
}

impl FaultKind {
    /// Every kind, in a fixed order (rate partitioning and counter
    /// rendering both rely on this order being stable).
    pub const ALL: [FaultKind; 5] = [
        FaultKind::PageLoadTimeout,
        FaultKind::MidVisitStall,
        FaultKind::RealmCrash,
        FaultKind::TransientNetwork,
        FaultKind::PermanentUnreachable,
    ];

    /// Stable snake_case name, used in counter names and reports.
    pub fn name(self) -> &'static str {
        match self {
            FaultKind::PageLoadTimeout => "page_load_timeout",
            FaultKind::MidVisitStall => "mid_visit_stall",
            FaultKind::RealmCrash => "realm_crash",
            FaultKind::TransientNetwork => "transient_network",
            FaultKind::PermanentUnreachable => "permanent_unreachable",
        }
    }

    /// Whether retrying the visit can possibly help. Permanent faults
    /// feed the crawler's circuit breaker instead of its retry loop.
    pub fn is_permanent(self) -> bool {
        matches!(self, FaultKind::PermanentUnreachable)
    }
}

/// One concrete fault scheduled for one visit attempt.
///
/// Stall/crash faults carry the chain position they hit at, drawn from
/// the fault stream at schedule time so the visit's own streams stay
/// untouched.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum InjectedFault {
    /// See [`FaultKind::PageLoadTimeout`].
    PageLoadTimeout,
    /// Stall at `at_fraction` ∈ [0, 1) of the planned interaction chain.
    MidVisitStall {
        /// Fraction of the interaction chain completed before the freeze.
        at_fraction: f64,
    },
    /// Crash at `at_fraction` ∈ [0, 1) of the planned interaction chain.
    RealmCrash {
        /// Fraction of the interaction chain completed before the crash.
        at_fraction: f64,
    },
    /// See [`FaultKind::TransientNetwork`].
    TransientNetwork,
    /// See [`FaultKind::PermanentUnreachable`].
    PermanentUnreachable,
}

impl InjectedFault {
    /// The taxonomy bucket this fault belongs to.
    pub fn kind(&self) -> FaultKind {
        match self {
            InjectedFault::PageLoadTimeout => FaultKind::PageLoadTimeout,
            InjectedFault::MidVisitStall { .. } => FaultKind::MidVisitStall,
            InjectedFault::RealmCrash { .. } => FaultKind::RealmCrash,
            InjectedFault::TransientNetwork => FaultKind::TransientNetwork,
            InjectedFault::PermanentUnreachable => FaultKind::PermanentUnreachable,
        }
    }
}

/// Label for the per-site outage derivation (see [`FaultPlan::site_is_down`]),
/// kept distinct from every stream name used elsewhere in the seed tree.
const SITE_OUTAGE_LABEL: &str = "fault-site-outage";

/// Per-visit and per-site fault injection rates.
///
/// A plan is pure configuration: every draw comes from an RNG stream the
/// caller passes in, so the same plan is shared by all workers of a
/// campaign while each worker's schedule derives from its own fork of the
/// seed tree. With every rate at zero the plan is a guaranteed no-op —
/// [`FaultPlan::draw`] returns without consuming a single draw, which is
/// what makes a rate-0 chaos run bit-identical to a faultless one.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultPlan {
    /// Per-visit probability of a page-load timeout.
    pub page_load_timeout: f64,
    /// Per-visit probability of a mid-visit stall.
    pub mid_visit_stall: f64,
    /// Per-visit probability of a realm crash.
    pub realm_crash: f64,
    /// Per-visit probability of a transient network error.
    pub transient_network: f64,
    /// Per-visit probability of a permanent connect failure.
    pub permanent_unreachable: f64,
    /// Fraction of sites that are down for the *whole* campaign — decided
    /// per domain (not per visit), identically on every machine/worker.
    pub site_outage: f64,
}

impl FaultPlan {
    /// The no-fault plan: draws nothing, injects nothing.
    pub fn none() -> Self {
        Self {
            page_load_timeout: 0.0,
            mid_visit_stall: 0.0,
            realm_crash: 0.0,
            transient_network: 0.0,
            permanent_unreachable: 0.0,
            site_outage: 0.0,
        }
    }

    /// A uniform chaos plan: `total_rate` per-visit fault probability,
    /// split evenly across the five kinds; no whole-campaign outages.
    pub fn uniform(total_rate: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&total_rate),
            "fault rate must be a probability, got {total_rate}"
        );
        let each = total_rate / FaultKind::ALL.len() as f64;
        Self {
            page_load_timeout: each,
            mid_visit_stall: each,
            realm_crash: each,
            transient_network: each,
            permanent_unreachable: each,
            site_outage: 0.0,
        }
    }

    /// The per-visit rate of one kind.
    pub fn rate(&self, kind: FaultKind) -> f64 {
        match kind {
            FaultKind::PageLoadTimeout => self.page_load_timeout,
            FaultKind::MidVisitStall => self.mid_visit_stall,
            FaultKind::RealmCrash => self.realm_crash,
            FaultKind::TransientNetwork => self.transient_network,
            FaultKind::PermanentUnreachable => self.permanent_unreachable,
        }
    }

    /// Total per-visit injection probability (sum over kinds, capped at 1).
    pub fn total_visit_rate(&self) -> f64 {
        FaultKind::ALL
            .iter()
            .map(|k| self.rate(*k))
            .sum::<f64>()
            .min(1.0)
    }

    /// True when the plan can never inject anything.
    pub fn is_noop(&self) -> bool {
        self.total_visit_rate() <= 0.0 && self.site_outage <= 0.0
    }

    /// Schedules at most one fault for one visit attempt, drawing from
    /// `rng` — by convention a context's `"fault"` stream, never the
    /// `"visit"` stream. A no-op plan consumes **zero** draws.
    pub fn draw<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<InjectedFault> {
        if self.total_visit_rate() <= 0.0 {
            return None;
        }
        // One uniform draw partitions [0, 1) among the kinds, in
        // `FaultKind::ALL` order; the tail is the no-fault region.
        let u = rng.gen::<f64>();
        let mut edge = 0.0;
        for kind in FaultKind::ALL {
            edge += self.rate(kind);
            if u < edge {
                return Some(match kind {
                    FaultKind::PageLoadTimeout => InjectedFault::PageLoadTimeout,
                    FaultKind::MidVisitStall => InjectedFault::MidVisitStall {
                        at_fraction: rng.gen::<f64>(),
                    },
                    FaultKind::RealmCrash => InjectedFault::RealmCrash {
                        at_fraction: rng.gen::<f64>(),
                    },
                    FaultKind::TransientNetwork => InjectedFault::TransientNetwork,
                    FaultKind::PermanentUnreachable => InjectedFault::PermanentUnreachable,
                });
            }
        }
        None
    }

    /// Whether `domain` is down for the whole campaign under this plan.
    ///
    /// A pure function of `(campaign seed, domain, rate)` — independent of
    /// visit order, worker assignment, and machine — so both crawl
    /// machines observe the same outage set, feeding Table 2's
    /// unreachable-site row the way a real dead host would.
    pub fn site_is_down(&self, campaign_seed: u64, domain: &str) -> bool {
        if self.site_outage <= 0.0 {
            return false;
        }
        let h = derive_seed(campaign_seed, domain, 0) ^ derive_seed(0, SITE_OUTAGE_LABEL, 1);
        // 53 mantissa bits give a uniform in [0, 1) with no rounding bias.
        let u = (h >> 11) as f64 / (1u64 << 53) as f64;
        u < self.site_outage
    }
}

/// One fault-plane event, published to [`Observer`] sinks by the
/// recovery engine.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FaultEvent {
    /// A scheduled fault fired during an attempt.
    Injected {
        /// Taxonomy bucket of the fired fault.
        kind: FaultKind,
    },
    /// A failed attempt will be retried after a backoff.
    RetryScheduled {
        /// 0-based index of the attempt that just failed.
        attempt: u32,
        /// Jittered backoff delay before the next attempt.
        backoff_ms: f64,
    },
    /// A visit eventually succeeded after at least one retry.
    RecoveredAfterRetry {
        /// Total attempts the visit took (≥ 2).
        attempts: u32,
    },
    /// A visit exhausted its retry budget and recorded a failure.
    GaveUp {
        /// Total attempts made.
        attempts: u32,
    },
    /// A site's circuit breaker opened after consecutive permanent faults.
    BreakerTripped,
    /// A visit was skipped outright because the breaker was open.
    BreakerSkippedVisit,
}

/// Streaming [`Observer`] that folds [`FaultEvent`]s into the
/// `fault.*` / `retry.*` / `breaker.*` counter family.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FaultMonitor {
    counters: CounterSet,
}

impl FaultMonitor {
    /// A monitor with every counter at zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Convenience for callers without an event-dispatch loop: observe
    /// one event at an unspecified time.
    pub fn record(&mut self, event: &FaultEvent) {
        self.on_event(0.0, event);
    }
}

impl Observer<FaultEvent> for FaultMonitor {
    fn on_event(&mut self, _t_ms: f64, event: &FaultEvent) {
        match event {
            FaultEvent::Injected { kind } => {
                self.counters.add("fault.injected", 1);
                self.counters
                    .add(&format!("fault.injected.{}", kind.name()), 1);
            }
            FaultEvent::RetryScheduled { backoff_ms, .. } => {
                self.counters.add("retry.scheduled", 1);
                self.counters
                    .add("retry.backoff_ms_total", backoff_ms.round() as u64);
            }
            FaultEvent::RecoveredAfterRetry { .. } => {
                self.counters.add("retry.recovered", 1);
            }
            FaultEvent::GaveUp { .. } => {
                self.counters.add("retry.gave_up", 1);
            }
            FaultEvent::BreakerTripped => {
                self.counters.add("breaker.tripped", 1);
            }
            FaultEvent::BreakerSkippedVisit => {
                self.counters.add("breaker.skipped_visits", 1);
            }
        }
    }

    fn counters(&self) -> CounterSet {
        self.counters.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::SimContext;

    #[test]
    fn noop_plan_consumes_no_draws() {
        let plan = FaultPlan::none();
        let mut a = SimContext::new(1);
        let mut b = SimContext::new(1);
        for _ in 0..16 {
            assert_eq!(plan.draw(a.stream("fault")), None);
        }
        // The fault stream of `a` is untouched: its next raw draw matches
        // a sibling context that never saw the plan.
        assert_eq!(
            a.stream("fault").gen::<u64>(),
            b.stream("fault").gen::<u64>()
        );
    }

    #[test]
    fn draws_are_deterministic_per_seed() {
        let plan = FaultPlan::uniform(0.6);
        let mut a = SimContext::new(7);
        let mut b = SimContext::new(7);
        for _ in 0..64 {
            assert_eq!(plan.draw(a.stream("fault")), plan.draw(b.stream("fault")));
        }
    }

    #[test]
    fn uniform_plan_hits_every_kind() {
        let plan = FaultPlan::uniform(0.9);
        let mut ctx = SimContext::new(3);
        let mut seen: Vec<FaultKind> = Vec::new();
        for _ in 0..400 {
            if let Some(f) = plan.draw(ctx.stream("fault")) {
                if !seen.contains(&f.kind()) {
                    seen.push(f.kind());
                }
            }
        }
        assert_eq!(seen.len(), FaultKind::ALL.len(), "missing kinds: {seen:?}");
    }

    #[test]
    fn injection_rate_tracks_the_plan() {
        let plan = FaultPlan::uniform(0.25);
        let mut ctx = SimContext::new(11);
        let n = 4_000;
        let hits = (0..n)
            .filter(|_| plan.draw(ctx.stream("fault")).is_some())
            .count();
        let rate = hits as f64 / n as f64;
        assert!((rate - 0.25).abs() < 0.03, "observed rate {rate}");
    }

    #[test]
    fn stall_fractions_are_in_range() {
        let plan = FaultPlan {
            mid_visit_stall: 1.0,
            ..FaultPlan::none()
        };
        let mut ctx = SimContext::new(5);
        for _ in 0..32 {
            match plan.draw(ctx.stream("fault")) {
                Some(InjectedFault::MidVisitStall { at_fraction }) => {
                    assert!((0.0..1.0).contains(&at_fraction));
                }
                other => unreachable!("expected a stall, got {other:?}"),
            }
        }
    }

    #[test]
    fn site_outage_is_deterministic_and_rate_sensitive() {
        let plan = FaultPlan {
            site_outage: 0.3,
            ..FaultPlan::none()
        };
        let domains: Vec<String> = (0..500).map(|i| format!("site{i:04}.example")).collect();
        let down: Vec<bool> = domains.iter().map(|d| plan.site_is_down(9, d)).collect();
        // Identical on a second evaluation (any machine, any worker).
        let again: Vec<bool> = domains.iter().map(|d| plan.site_is_down(9, d)).collect();
        assert_eq!(down, again);
        let frac = down.iter().filter(|d| **d).count() as f64 / down.len() as f64;
        assert!((frac - 0.3).abs() < 0.08, "outage fraction {frac}");
        // Rate 0 downs nothing; a different seed downs a different set.
        assert!(domains
            .iter()
            .all(|d| !FaultPlan::none().site_is_down(9, d)));
        let other: Vec<bool> = domains.iter().map(|d| plan.site_is_down(10, d)).collect();
        assert_ne!(down, other);
    }

    #[test]
    fn monitor_aggregates_the_counter_family() {
        let mut m = FaultMonitor::new();
        m.record(&FaultEvent::Injected {
            kind: FaultKind::RealmCrash,
        });
        m.record(&FaultEvent::Injected {
            kind: FaultKind::RealmCrash,
        });
        m.record(&FaultEvent::RetryScheduled {
            attempt: 0,
            backoff_ms: 800.0,
        });
        m.record(&FaultEvent::RecoveredAfterRetry { attempts: 2 });
        m.record(&FaultEvent::GaveUp { attempts: 3 });
        m.record(&FaultEvent::BreakerTripped);
        m.record(&FaultEvent::BreakerSkippedVisit);
        let c = m.counters();
        assert_eq!(c.get("fault.injected"), Some(2));
        assert_eq!(c.get("fault.injected.realm_crash"), Some(2));
        assert_eq!(c.get("retry.scheduled"), Some(1));
        assert_eq!(c.get("retry.backoff_ms_total"), Some(800));
        assert_eq!(c.get("retry.recovered"), Some(1));
        assert_eq!(c.get("retry.gave_up"), Some(1));
        assert_eq!(c.get("breaker.tripped"), Some(1));
        assert_eq!(c.get("breaker.skipped_visits"), Some(1));
    }

    #[test]
    fn rates_round_trip_through_accessors() {
        let plan = FaultPlan::uniform(0.5);
        for kind in FaultKind::ALL {
            assert!((plan.rate(kind) - 0.1).abs() < 1e-12);
        }
        assert!((plan.total_visit_rate() - 0.5).abs() < 1e-12);
        assert!(!plan.is_noop());
        assert!(FaultPlan::none().is_noop());
    }
}
