//! Named RNG streams with hierarchical forking.

use crate::clock::VirtualClock;
use hlisa_stats::rngutil::{derive_seed, rng_from_seed};
use rand::rngs::SmallRng;
use std::collections::BTreeMap;

/// The simulation context threaded through the interaction stack.
///
/// A `SimContext` owns a root seed, a [`VirtualClock`] handle, and a set
/// of lazily created named RNG streams. Each stream's state is derived
/// purely from `(root seed, stream name)`, so the draws a layer sees
/// depend only on its own use of its own stream — never on which other
/// layers ran before it or how work was scheduled across threads. That is
/// the property that makes campaign results independent of parallelism.
#[derive(Debug, Clone)]
pub struct SimContext {
    seed: u64,
    clock: VirtualClock,
    streams: BTreeMap<String, SmallRng>,
}

impl SimContext {
    /// A fresh context rooted at `seed`, with a clock starting at t = 0.
    pub fn new(seed: u64) -> Self {
        SimContext {
            seed,
            clock: VirtualClock::new(),
            streams: BTreeMap::new(),
        }
    }

    /// A context rooted at `seed` sharing an existing clock.
    pub fn with_clock(seed: u64, clock: VirtualClock) -> Self {
        SimContext {
            seed,
            clock,
            streams: BTreeMap::new(),
        }
    }

    /// The root seed this context derives every stream from.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// A handle to the context's clock (clones share the instant).
    pub fn clock(&self) -> VirtualClock {
        self.clock.clone()
    }

    /// The named RNG stream for one concern (`"motion"`, `"typing"`, ...).
    ///
    /// Streams are created on first use with a seed derived from the root
    /// seed and the name alone, so draw sequences are insensitive to the
    /// creation order of *other* streams.
    pub fn stream(&mut self, name: &str) -> &mut SmallRng {
        let seed = self.seed;
        self.streams
            .entry(name.to_string())
            .or_insert_with(|| rng_from_seed(derive_seed(seed, name, 0)))
    }

    /// A child context for an independently seeded unit of work.
    ///
    /// The child's streams derive from `derive_seed(seed, label, index)`
    /// and its clock starts fresh at t = 0 — two forks with the same
    /// `(label, index)` are identical however the parent was used.
    pub fn fork(&self, label: &str, index: u64) -> SimContext {
        SimContext::new(derive_seed(self.seed, label, index))
    }

    /// A child context for one visit of one site — the unit the crawler
    /// parallelises over. Deterministic in `(root seed, domain, visit)`.
    pub fn fork_visit(&self, domain: &str, visit_idx: u64) -> SimContext {
        self.fork(domain, visit_idx)
    }

    /// Rebinds the context onto `clock` (e.g. a browser's), so subsequent
    /// time observations come from the shared instant.
    pub fn bind_clock(&mut self, clock: VirtualClock) {
        self.clock = clock;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn same_seed_same_streams() {
        let mut a = SimContext::new(7);
        let mut b = SimContext::new(7);
        for _ in 0..32 {
            assert_eq!(
                a.stream("motion").gen::<u64>(),
                b.stream("motion").gen::<u64>()
            );
        }
    }

    #[test]
    fn streams_are_insensitive_to_sibling_creation_order() {
        let mut a = SimContext::new(1);
        let mut b = SimContext::new(1);
        // `a` touches two other streams first; `b` goes straight to
        // "typing". Both must see the same "typing" sequence.
        let _ = a.stream("motion").gen::<u64>();
        let _ = a.stream("scroll").gen::<u64>();
        assert_eq!(
            a.stream("typing").gen::<u64>(),
            b.stream("typing").gen::<u64>()
        );
    }

    #[test]
    fn distinct_names_decorrelate() {
        let mut ctx = SimContext::new(3);
        let x = ctx.stream("motion").gen::<u64>();
        let y = ctx.stream("typing").gen::<u64>();
        assert_ne!(x, y);
    }

    #[test]
    fn forks_depend_only_on_label_and_index() {
        let mut parent_a = SimContext::new(11);
        let parent_b = SimContext::new(11);
        // Using the parent must not perturb its forks. ("motion" is the
        // registered stream here; any registered name would do.)
        let _ = parent_a.stream("motion").gen::<u64>();
        let mut fa = parent_a.fork_visit("site0001.example", 3);
        let mut fb = parent_b.fork_visit("site0001.example", 3);
        assert_eq!(
            fa.stream("visit").gen::<u64>(),
            fb.stream("visit").gen::<u64>()
        );

        let mut other = parent_b.fork_visit("site0001.example", 4);
        assert_ne!(
            fa.stream("visit").gen::<u64>(),
            other.stream("visit").gen::<u64>()
        );
    }

    #[test]
    fn fork_clock_starts_fresh() {
        let ctx = SimContext::new(5);
        ctx.clock().advance(500.0);
        let child = ctx.fork("machine", 0);
        assert_eq!(child.clock().now_ms(), 0.0);
    }

    #[test]
    fn bound_clock_is_shared() {
        let mut ctx = SimContext::new(9);
        let clock = VirtualClock::starting_at(40.0);
        ctx.bind_clock(clock.clone());
        clock.advance(2.0);
        assert_eq!(ctx.clock().now_ms(), 42.0);
        assert!(ctx.clock().shares_time_with(&clock));
    }
}
