//! JavaScript values.

use crate::realm::ObjectId;
use std::sync::Arc;

/// A JavaScript value. Objects and functions live in a [`crate::Realm`]
/// arena and are referenced by [`ObjectId`].
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `undefined`.
    Undefined,
    /// `null`.
    Null,
    /// A boolean primitive.
    Bool(bool),
    /// A number primitive (JS numbers are f64).
    Number(f64),
    /// A string primitive. Stored behind an `Arc` so that cloning a value
    /// (and therefore stamping a whole world from a snapshot) never copies
    /// string bytes; JS strings are immutable, so sharing is unobservable.
    Str(Arc<str>),
    /// A reference to an object (including functions and proxies).
    Object(ObjectId),
}

impl Value {
    /// The result of the JS `typeof` operator for this value.
    ///
    /// Note: `typeof` needs the realm to distinguish callable objects, so
    /// this returns `"object"` for any object reference; use
    /// [`crate::Realm::type_of`] for the full behaviour.
    pub fn primitive_type_of(&self) -> &'static str {
        match self {
            Value::Undefined => "undefined",
            Value::Null => "object",
            Value::Bool(_) => "boolean",
            Value::Number(_) => "number",
            Value::Str(_) => "string",
            Value::Object(_) => "object",
        }
    }

    /// JS truthiness.
    pub fn is_truthy(&self) -> bool {
        match self {
            Value::Undefined | Value::Null => false,
            Value::Bool(b) => *b,
            Value::Number(n) => *n != 0.0 && !n.is_nan(),
            Value::Str(s) => !s.is_empty(),
            Value::Object(_) => true,
        }
    }

    /// True when this is `undefined`.
    pub fn is_undefined(&self) -> bool {
        matches!(self, Value::Undefined)
    }

    /// Returns the object id if this is an object reference.
    pub fn as_object(&self) -> Option<ObjectId> {
        match self {
            Value::Object(id) => Some(*id),
            _ => None,
        }
    }

    /// Returns the bool if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Returns the number if this is a number.
    pub fn as_number(&self) -> Option<f64> {
        match self {
            Value::Number(n) => Some(*n),
            _ => None,
        }
    }

    /// Returns the string if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s.as_ref()),
            _ => None,
        }
    }

    /// A short debug rendering used in template snapshots. Object identity
    /// is deliberately *not* included so that two structurally identical
    /// worlds produce identical templates.
    pub fn template_repr(&self) -> String {
        match self {
            Value::Undefined => "undefined".into(),
            Value::Null => "null".into(),
            Value::Bool(b) => format!("{b}"),
            Value::Number(n) => format!("{n}"),
            Value::Str(s) => format!("{s:?}"),
            Value::Object(_) => "[object]".into(),
        }
    }
}

impl From<bool> for Value {
    fn from(b: bool) -> Self {
        Value::Bool(b)
    }
}

impl From<f64> for Value {
    fn from(n: f64) -> Self {
        Value::Number(n)
    }
}

impl From<&str> for Value {
    fn from(s: &str) -> Self {
        Value::Str(Arc::from(s))
    }
}

impl From<String> for Value {
    fn from(s: String) -> Self {
        Value::Str(s.into())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn typeof_primitives() {
        assert_eq!(Value::Undefined.primitive_type_of(), "undefined");
        assert_eq!(Value::Null.primitive_type_of(), "object");
        assert_eq!(Value::Bool(true).primitive_type_of(), "boolean");
        assert_eq!(Value::Number(1.0).primitive_type_of(), "number");
        assert_eq!(Value::Str("x".into()).primitive_type_of(), "string");
    }

    #[test]
    fn truthiness() {
        assert!(!Value::Undefined.is_truthy());
        assert!(!Value::Null.is_truthy());
        assert!(!Value::Bool(false).is_truthy());
        assert!(!Value::Number(0.0).is_truthy());
        assert!(!Value::Number(f64::NAN).is_truthy());
        assert!(!Value::Str("".into()).is_truthy());
        assert!(Value::Bool(true).is_truthy());
        assert!(Value::Number(2.0).is_truthy());
        assert!(Value::Str("a".into()).is_truthy());
    }

    #[test]
    fn conversions() {
        assert_eq!(Value::from(true), Value::Bool(true));
        assert_eq!(Value::from(1.5), Value::Number(1.5));
        assert_eq!(Value::from("hi"), Value::Str("hi".into()));
        assert_eq!(Value::from(false).as_bool(), Some(false));
        assert_eq!(Value::from(2.0).as_number(), Some(2.0));
        assert_eq!(Value::from("s").as_str(), Some("s"));
        assert_eq!(Value::Null.as_object(), None);
    }

    #[test]
    fn template_repr_hides_identity() {
        // Two different object ids must produce the same repr.
        let a = Value::Object(crate::realm::ObjectId::test_id(1));
        let b = Value::Object(crate::realm::ObjectId::test_id(2));
        assert_eq!(a.template_repr(), b.template_repr());
    }
}
