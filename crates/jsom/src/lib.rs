//! JavaScript object model substrate.
//!
//! §3 of the paper studies four ways of spoofing `navigator.webdriver` with
//! JavaScript and the side effects each method leaves behind (Table 1). All
//! of those side effects are *semantic* properties of the JS object model:
//!
//! * own-property insertion order (for-in / `Object.keys` enumeration),
//! * shadowing an inherited accessor with an own property,
//! * data- vs accessor-property descriptors along the prototype chain,
//! * `Function.prototype.toString` output (named vs anonymous native code),
//! * `Proxy` wrappers re-exporting methods as anonymous functions.
//!
//! Rather than embedding a JS engine, this crate implements exactly that
//! object model: an arena of objects with ordered property tables, property
//! descriptors, prototype chains, native functions with faithful `toString`,
//! and proxy objects. [`builders`] constructs `window`/`navigator` trees as
//! Firefox exposes them — one flavour for a regular browser and one for a
//! WebDriver-automated browser (`navigator.webdriver === true`, per the
//! W3C WebDriver spec). [`template`] implements the JavaScript template
//! attack of Schwarz et al. (NDSS'19) used by the paper to find side effects.

pub mod atom;
pub mod builders;
pub mod error;
pub mod linear;
pub mod object;
pub mod realm;
pub mod shape;
pub mod template;
pub mod value;

pub use atom::{Atom, AtomTable};
pub use builders::{build_firefox_world, BrowserFlavor, World};
pub use error::JsError;
pub use linear::LinearObject;
pub use object::{NativeBehavior, PropertyDescriptor, PropertyKind};
pub use realm::{ObjectId, Realm, RealmStats};
pub use shape::{ShapeForest, ShapeId};
pub use template::{Template, TemplateDiff};
pub use value::Value;
