//! Objects, property descriptors, and native function behaviours.
//!
//! `JsObject` no longer stores its own property *names*: keys live in the
//! realm-wide shape table ([`crate::shape`]) and an object carries only a
//! [`ShapeId`] plus a dense slot vector of descriptors, slot order being
//! exactly the shape's insertion-ordered key list. All string-keyed
//! property access therefore goes through [`crate::realm::Realm`], which
//! owns the atom and shape tables.

use crate::realm::ObjectId;
use crate::shape::ShapeId;
use crate::value::Value;
use std::sync::Arc;

/// What a native function does when called. Real engines attach compiled
/// code; the spoofing study only ever calls a handful of reflective
/// built-ins, so a small behaviour enum is sufficient and keeps everything
/// deterministic.
#[derive(Debug, Clone, PartialEq)]
pub enum NativeBehavior {
    /// Returns a fixed value (covers spoofed getters like `() => false`).
    Return(Value),
    /// Returns the engine-generated `toString` of the `this` function —
    /// the behaviour of `Function.prototype.toString`.
    FunctionToString,
    /// Returns `"[object <class>]"` of the `this` object —
    /// `Object.prototype.toString`.
    ObjectToString,
    /// A host method whose return value is irrelevant to the experiments
    /// (e.g. `navigator.javaEnabled`); returns `undefined`.
    HostNoop,
}

/// Kind of property slot.
#[derive(Debug, Clone, PartialEq)]
pub enum PropertyKind {
    /// A data property holding a value directly.
    Data {
        /// The stored value.
        value: Value,
        /// Whether assignment may change the value.
        writable: bool,
    },
    /// An accessor property with optional getter/setter functions.
    Accessor {
        /// Getter function object, if any.
        getter: Option<ObjectId>,
        /// Setter function object, if any.
        setter: Option<ObjectId>,
    },
}

/// A full property descriptor (kind + enumerability + configurability).
#[derive(Debug, Clone, PartialEq)]
pub struct PropertyDescriptor {
    /// Data or accessor slot.
    pub kind: PropertyKind,
    /// Whether `for-in` / `Object.keys` list the property.
    pub enumerable: bool,
    /// Whether the property may be redefined or deleted.
    pub configurable: bool,
}

impl PropertyDescriptor {
    /// A writable, enumerable, configurable data property — the shape
    /// produced by plain assignment.
    pub fn plain(value: Value) -> Self {
        Self {
            kind: PropertyKind::Data {
                value,
                writable: true,
            },
            enumerable: true,
            configurable: true,
        }
    }

    /// A non-enumerable data property, the default for
    /// `Object.defineProperty` when `enumerable` is omitted.
    pub fn define_default(value: Value) -> Self {
        Self {
            kind: PropertyKind::Data {
                value,
                writable: false,
            },
            enumerable: false,
            configurable: false,
        }
    }

    /// An accessor descriptor with only a getter.
    pub fn getter(getter: ObjectId, enumerable: bool) -> Self {
        Self {
            kind: PropertyKind::Accessor {
                getter: Some(getter),
                setter: None,
            },
            enumerable,
            configurable: true,
        }
    }

    /// True if the slot is an accessor.
    pub fn is_accessor(&self) -> bool {
        matches!(self.kind, PropertyKind::Accessor { .. })
    }
}

/// Function metadata carried by function objects.
#[derive(Debug, Clone, PartialEq)]
pub struct FunctionInfo {
    /// The function's `name` property. Engine-created anonymous wrappers
    /// (the Proxy side effect of §3.1) carry an empty name. Shared, not
    /// copied, when a world is stamped from a snapshot.
    pub name: Arc<str>,
    /// Whether `toString` renders `[native code]` (all host functions do).
    pub native: bool,
    /// What calling the function does.
    pub behavior: NativeBehavior,
}

/// Proxy handler state: the spoofed property overrides installed by the
/// OpenWPM extension (§3.2). Every other trap forwards to the target.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ProxyHandler {
    /// Property name → spoofed value returned by the `get` trap.
    pub get_overrides: Vec<(String, Value)>,
}

impl ProxyHandler {
    /// Looks up an override for `key`.
    pub fn override_for(&self, key: &str) -> Option<&Value> {
        self.get_overrides
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v)
    }
}

/// An object in the realm arena.
///
/// Own-property *names* are not stored here: `shape` identifies the
/// insertion-ordered key list in the realm's shape forest, and `slots[i]`
/// is the descriptor for that list's `i`-th key. Use the realm-level
/// accessors (`Realm::set_own`, `Realm::own_desc`, `Realm::own_keys`, …)
/// for all string-keyed access.
#[derive(Debug, Clone, PartialEq)]
pub struct JsObject {
    /// Internal `[[Class]]`-like tag: `"Object"`, `"Navigator"`,
    /// `"Function"`, `"Window"`, ... Shared across clones.
    pub class: Arc<str>,
    /// Hidden class: which key list (and key → offset map) this object has.
    pub(crate) shape: ShapeId,
    /// Property descriptors, index-aligned with the shape's key list.
    pub(crate) slots: Vec<PropertyDescriptor>,
    /// `[[Prototype]]`.
    pub prototype: Option<ObjectId>,
    /// Present iff this object is callable.
    pub function: Option<FunctionInfo>,
    /// Present iff this object is a Proxy exotic object: `(target, handler)`.
    /// The handler is immutable once installed, so clones share it.
    pub proxy: Option<(ObjectId, Arc<ProxyHandler>)>,
}

impl JsObject {
    /// A plain object with the given class and prototype (and no own
    /// properties, i.e. the root shape).
    pub fn plain(class: &str, prototype: Option<ObjectId>) -> Self {
        Self {
            class: Arc::from(class),
            shape: ShapeId::ROOT,
            slots: Vec::new(),
            prototype,
            function: None,
            proxy: None,
        }
    }

    /// Number of own properties.
    pub fn own_len(&self) -> usize {
        self.slots.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn descriptor_constructors() {
        assert!(PropertyDescriptor::plain(Value::Null).enumerable);
        assert!(!PropertyDescriptor::define_default(Value::Null).enumerable);
        let g = PropertyDescriptor::getter(ObjectId::test_id(0), true);
        assert!(g.is_accessor());
        assert!(!PropertyDescriptor::plain(Value::Null).is_accessor());
    }

    #[test]
    fn proxy_handler_lookup() {
        let h = ProxyHandler {
            get_overrides: vec![("webdriver".into(), Value::Bool(false))],
        };
        assert_eq!(h.override_for("webdriver"), Some(&Value::Bool(false)));
        assert_eq!(h.override_for("other"), None);
    }

    #[test]
    fn plain_objects_start_with_the_root_shape() {
        let o = JsObject::plain("Object", None);
        assert_eq!(o.shape, ShapeId::ROOT);
        assert_eq!(o.own_len(), 0);
    }
}
