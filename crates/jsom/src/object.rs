//! Objects, property descriptors, and native function behaviours.

use crate::realm::ObjectId;
use crate::value::Value;

/// What a native function does when called. Real engines attach compiled
/// code; the spoofing study only ever calls a handful of reflective
/// built-ins, so a small behaviour enum is sufficient and keeps everything
/// deterministic.
#[derive(Debug, Clone, PartialEq)]
pub enum NativeBehavior {
    /// Returns a fixed value (covers spoofed getters like `() => false`).
    Return(Value),
    /// Returns the engine-generated `toString` of the `this` function —
    /// the behaviour of `Function.prototype.toString`.
    FunctionToString,
    /// Returns `"[object <class>]"` of the `this` object —
    /// `Object.prototype.toString`.
    ObjectToString,
    /// A host method whose return value is irrelevant to the experiments
    /// (e.g. `navigator.javaEnabled`); returns `undefined`.
    HostNoop,
}

/// Kind of property slot.
#[derive(Debug, Clone, PartialEq)]
pub enum PropertyKind {
    /// A data property holding a value directly.
    Data {
        /// The stored value.
        value: Value,
        /// Whether assignment may change the value.
        writable: bool,
    },
    /// An accessor property with optional getter/setter functions.
    Accessor {
        /// Getter function object, if any.
        getter: Option<ObjectId>,
        /// Setter function object, if any.
        setter: Option<ObjectId>,
    },
}

/// A full property descriptor (kind + enumerability + configurability).
#[derive(Debug, Clone, PartialEq)]
pub struct PropertyDescriptor {
    /// Data or accessor slot.
    pub kind: PropertyKind,
    /// Whether `for-in` / `Object.keys` list the property.
    pub enumerable: bool,
    /// Whether the property may be redefined or deleted.
    pub configurable: bool,
}

impl PropertyDescriptor {
    /// A writable, enumerable, configurable data property — the shape
    /// produced by plain assignment.
    pub fn plain(value: Value) -> Self {
        Self {
            kind: PropertyKind::Data {
                value,
                writable: true,
            },
            enumerable: true,
            configurable: true,
        }
    }

    /// A non-enumerable data property, the default for
    /// `Object.defineProperty` when `enumerable` is omitted.
    pub fn define_default(value: Value) -> Self {
        Self {
            kind: PropertyKind::Data {
                value,
                writable: false,
            },
            enumerable: false,
            configurable: false,
        }
    }

    /// An accessor descriptor with only a getter.
    pub fn getter(getter: ObjectId, enumerable: bool) -> Self {
        Self {
            kind: PropertyKind::Accessor {
                getter: Some(getter),
                setter: None,
            },
            enumerable,
            configurable: true,
        }
    }

    /// True if the slot is an accessor.
    pub fn is_accessor(&self) -> bool {
        matches!(self.kind, PropertyKind::Accessor { .. })
    }
}

/// Function metadata carried by function objects.
#[derive(Debug, Clone, PartialEq)]
pub struct FunctionInfo {
    /// The function's `name` property. Engine-created anonymous wrappers
    /// (the Proxy side effect of §3.1) carry an empty name.
    pub name: String,
    /// Whether `toString` renders `[native code]` (all host functions do).
    pub native: bool,
    /// What calling the function does.
    pub behavior: NativeBehavior,
}

/// Proxy handler state: the spoofed property overrides installed by the
/// OpenWPM extension (§3.2). Every other trap forwards to the target.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ProxyHandler {
    /// Property name → spoofed value returned by the `get` trap.
    pub get_overrides: Vec<(String, Value)>,
}

impl ProxyHandler {
    /// Looks up an override for `key`.
    pub fn override_for(&self, key: &str) -> Option<&Value> {
        self.get_overrides
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v)
    }
}

/// An object in the realm arena.
#[derive(Debug, Clone, PartialEq)]
pub struct JsObject {
    /// Internal `[[Class]]`-like tag: `"Object"`, `"Navigator"`,
    /// `"Function"`, `"Window"`, ...
    pub class: String,
    /// Own properties in insertion order. Enumeration-order fidelity is the
    /// whole point of this substrate, so a `Vec` is the primary structure;
    /// sizes are tiny (tens of properties) so linear lookup is fine.
    pub props: Vec<(String, PropertyDescriptor)>,
    /// `[[Prototype]]`.
    pub prototype: Option<ObjectId>,
    /// Present iff this object is callable.
    pub function: Option<FunctionInfo>,
    /// Present iff this object is a Proxy exotic object: `(target, handler)`.
    pub proxy: Option<(ObjectId, ProxyHandler)>,
}

impl JsObject {
    /// A plain object with the given class and prototype.
    pub fn plain(class: &str, prototype: Option<ObjectId>) -> Self {
        Self {
            class: class.to_string(),
            props: Vec::new(),
            prototype,
            function: None,
            proxy: None,
        }
    }

    /// Finds an own property slot.
    pub fn own(&self, key: &str) -> Option<&PropertyDescriptor> {
        self.props.iter().find(|(k, _)| k == key).map(|(_, d)| d)
    }

    /// Finds an own property slot mutably.
    pub fn own_mut(&mut self, key: &str) -> Option<&mut PropertyDescriptor> {
        self.props
            .iter_mut()
            .find(|(k, _)| k == key)
            .map(|(_, d)| d)
    }

    /// Inserts or replaces an own property. Replacement keeps the original
    /// insertion position (JS semantics); new keys append.
    pub fn set_own(&mut self, key: &str, desc: PropertyDescriptor) {
        if let Some(slot) = self.own_mut(key) {
            *slot = desc;
        } else {
            self.props.push((key.to_string(), desc));
        }
    }

    /// Number of own properties.
    pub fn own_len(&self) -> usize {
        self.props.len()
    }

    /// Own keys in insertion order.
    pub fn own_keys(&self) -> Vec<String> {
        self.props.iter().map(|(k, _)| k.clone()).collect()
    }

    /// Own *enumerable* keys in insertion order (`Object.keys`).
    pub fn own_enumerable_keys(&self) -> Vec<String> {
        self.props
            .iter()
            .filter(|(_, d)| d.enumerable)
            .map(|(k, _)| k.clone())
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_own_preserves_position_on_redefine() {
        let mut o = JsObject::plain("Object", None);
        o.set_own("a", PropertyDescriptor::plain(Value::Number(1.0)));
        o.set_own("b", PropertyDescriptor::plain(Value::Number(2.0)));
        o.set_own("a", PropertyDescriptor::plain(Value::Number(9.0)));
        assert_eq!(o.own_keys(), vec!["a", "b"]);
        match &o.own("a").unwrap().kind {
            PropertyKind::Data { value, .. } => assert_eq!(*value, Value::Number(9.0)),
            _ => panic!("expected data property"),
        }
    }

    #[test]
    fn enumerable_filtering() {
        let mut o = JsObject::plain("Object", None);
        o.set_own("vis", PropertyDescriptor::plain(Value::Bool(true)));
        o.set_own(
            "hidden",
            PropertyDescriptor::define_default(Value::Bool(false)),
        );
        assert_eq!(o.own_enumerable_keys(), vec!["vis"]);
        assert_eq!(o.own_len(), 2);
    }

    #[test]
    fn descriptor_constructors() {
        assert!(PropertyDescriptor::plain(Value::Null).enumerable);
        assert!(!PropertyDescriptor::define_default(Value::Null).enumerable);
        let g = PropertyDescriptor::getter(ObjectId::test_id(0), true);
        assert!(g.is_accessor());
        assert!(!PropertyDescriptor::plain(Value::Null).is_accessor());
    }

    #[test]
    fn proxy_handler_lookup() {
        let h = ProxyHandler {
            get_overrides: vec![("webdriver".into(), Value::Bool(false))],
        };
        assert_eq!(h.override_for("webdriver"), Some(&Value::Bool(false)));
        assert_eq!(h.override_for("other"), None);
    }
}
