//! JavaScript template attacks (Schwarz et al., NDSS'19).
//!
//! A template attack walks the JavaScript object hierarchy from a root
//! object, recording for every reachable property path a structural summary
//! (type, descriptor shape, function name, class). Diffing the template of a
//! candidate environment against that of a reference environment reveals
//! *any* property that was added, removed, or changed — which is exactly how
//! the paper finds the side effects of the spoofing methods (§3.1).

use crate::realm::{ObjectId, Realm};
use crate::value::Value;
use std::collections::BTreeMap;
use std::sync::Arc;

/// A structural summary of one property path.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct Entry {
    /// `typeof` of the resolved value.
    pub type_of: String,
    /// Rendered value for primitives; `[object]` for objects.
    pub value_repr: String,
    /// `"data"`, `"accessor"`, or `"inherited"` (found on the prototype
    /// chain rather than as an own property of the holder).
    pub descriptor: String,
    /// `fn.toString()` for functions (captures missing names).
    pub fn_source: Option<String>,
    /// Class of the object the property resolved on (shared with the
    /// realm's object, not copied).
    pub holder_class: Arc<str>,
    /// Own-key list *position* within the holder, capturing enumeration
    /// order changes.
    pub order_index: Option<usize>,
}

/// A template: path (e.g. `window.navigator.webdriver`) → entry.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Template {
    /// All recorded entries, keyed by dotted path.
    pub entries: BTreeMap<String, Entry>,
}

/// One difference between two templates.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TemplateDiff {
    /// Path exists only in the candidate.
    Added(String),
    /// Path exists only in the reference.
    Removed(String),
    /// Path exists in both but the entries differ (field name included).
    Changed(String, String),
}

impl Template {
    /// Captures a template rooted at `root`, labelled `root_name`, walking
    /// object-valued properties breadth-first up to `max_depth`.
    pub fn capture(realm: &mut Realm, root: ObjectId, root_name: &str, max_depth: usize) -> Self {
        let mut entries = BTreeMap::new();
        let mut queue: Vec<(ObjectId, String, usize)> = vec![(root, root_name.to_string(), 0)];
        let mut visited: Vec<ObjectId> = Vec::new();

        while let Some((obj, path, depth)) = queue.pop() {
            if visited.contains(&obj) {
                continue;
            }
            visited.push(obj);

            // for-in view: all enumerable keys through the chain, giving the
            // enumeration-order observable.
            let keys = realm.for_in_keys(obj);
            for (idx, key) in keys.iter().enumerate() {
                let child_path = format!("{path}.{key}");
                let value = realm.get(obj, key).unwrap_or(Value::Undefined);
                let descriptor = match realm.get_own_descriptor(obj, key) {
                    Some(d) if d.is_accessor() => "accessor".to_string(),
                    Some(_) => "data".to_string(),
                    None => "inherited".to_string(),
                };
                let fn_source = value
                    .as_object()
                    .and_then(|oid| realm.function_to_string(oid).ok());
                let holder_class = holder_class(realm, obj, key);
                entries.insert(
                    child_path.clone(),
                    Entry {
                        type_of: realm.type_of(&value).to_string(),
                        value_repr: value.template_repr(),
                        descriptor,
                        fn_source,
                        holder_class,
                        order_index: Some(idx),
                    },
                );
                if depth + 1 < max_depth {
                    if let Value::Object(oid) = value {
                        if realm.obj(oid).function.is_none() {
                            queue.push((oid, child_path, depth + 1));
                        }
                    }
                }
            }

            // Prototype-chain view: record chain length and classes — the
            // setPrototypeOf method inserts an extra hop here.
            let chain = realm.proto_chain(obj);
            let chain_classes: Vec<Arc<str>> = chain
                .iter()
                .map(|id| realm.obj(*id).class.clone())
                .collect();
            entries.insert(
                format!("{path}.__proto_chain__"),
                Entry {
                    type_of: "chain".into(),
                    value_repr: chain_classes.join(" -> "),
                    descriptor: format!("len={}", chain.len()),
                    fn_source: None,
                    holder_class: realm.obj(obj).class.clone(),
                    order_index: None,
                },
            );
            // Own-key census: Object.keys + own length (the `_length`
            // observable of Table 1).
            entries.insert(
                format!("{path}.__own__"),
                Entry {
                    type_of: "own-keys".into(),
                    value_repr: realm.object_keys(obj).join(","),
                    descriptor: format!("len={}", realm.own_len(obj)),
                    fn_source: None,
                    holder_class: realm.obj(obj).class.clone(),
                    order_index: None,
                },
            );
        }
        Template { entries }
    }

    /// Diffs `self` (reference) against `candidate`.
    pub fn diff(&self, candidate: &Template) -> Vec<TemplateDiff> {
        let mut out = Vec::new();
        for (path, ref_entry) in &self.entries {
            match candidate.entries.get(path) {
                None => out.push(TemplateDiff::Removed(path.clone())),
                Some(cand) => {
                    if cand != ref_entry {
                        let field = if cand.type_of != ref_entry.type_of {
                            "type"
                        } else if cand.value_repr != ref_entry.value_repr {
                            "value"
                        } else if cand.descriptor != ref_entry.descriptor {
                            "descriptor"
                        } else if cand.fn_source != ref_entry.fn_source {
                            "fn_source"
                        } else if cand.order_index != ref_entry.order_index {
                            "order"
                        } else {
                            "holder"
                        };
                        out.push(TemplateDiff::Changed(path.clone(), field.to_string()));
                    }
                }
            }
        }
        for path in candidate.entries.keys() {
            if !self.entries.contains_key(path) {
                out.push(TemplateDiff::Added(path.clone()));
            }
        }
        out
    }
}

fn holder_class(realm: &Realm, obj: ObjectId, key: &str) -> Arc<str> {
    if realm.has_own(obj, key) {
        return realm.obj(obj).class.clone();
    }
    for p in realm.proto_chain(obj) {
        if realm.has_own(p, key) {
            return realm.obj(p).class.clone();
        }
    }
    realm.obj(obj).class.clone()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builders::{build_firefox_world, BrowserFlavor};
    use crate::object::PropertyDescriptor;

    #[test]
    fn identical_worlds_have_empty_diff() {
        let mut a = build_firefox_world(BrowserFlavor::RegularFirefox);
        let mut b = build_firefox_world(BrowserFlavor::RegularFirefox);
        let ta = Template::capture(&mut a.realm, a.window, "window", 3);
        let tb = Template::capture(&mut b.realm, b.window, "window", 3);
        assert!(ta.diff(&tb).is_empty());
    }

    #[test]
    fn webdriver_flag_shows_in_diff() {
        let mut reg = build_firefox_world(BrowserFlavor::RegularFirefox);
        let mut bot = build_firefox_world(BrowserFlavor::WebDriverFirefox);
        let tr = Template::capture(&mut reg.realm, reg.window, "window", 3);
        let tb = Template::capture(&mut bot.realm, bot.window, "window", 3);
        let diffs = tr.diff(&tb);
        assert!(diffs.iter().any(|d| matches!(
            d,
            TemplateDiff::Changed(p, f) if p == "window.navigator.webdriver" && f == "value"
        )));
    }

    #[test]
    fn added_own_property_is_detected() {
        let mut reg = build_firefox_world(BrowserFlavor::RegularFirefox);
        let tr = Template::capture(&mut reg.realm, reg.window, "window", 3);

        let mut cand = build_firefox_world(BrowserFlavor::RegularFirefox);
        let nav = cand.navigator;
        cand.realm
            .define_property(nav, "extra", PropertyDescriptor::plain(Value::Bool(true)))
            .unwrap();
        let tc = Template::capture(&mut cand.realm, cand.window, "window", 3);

        let diffs = tr.diff(&tc);
        assert!(diffs
            .iter()
            .any(|d| matches!(d, TemplateDiff::Added(p) if p == "window.navigator.extra")));
        // Own-key census changed too.
        assert!(diffs.iter().any(|d| matches!(
            d,
            TemplateDiff::Changed(p, _) if p == "window.navigator.__own__"
        )));
    }

    #[test]
    fn order_change_is_detected() {
        let mut reg = build_firefox_world(BrowserFlavor::RegularFirefox);
        let tr = Template::capture(&mut reg.realm, reg.window, "window", 3);

        // Shadow webdriver with an own enumerable property: it moves to the
        // front of for-in order, shifting every other key's index.
        let mut cand = build_firefox_world(BrowserFlavor::RegularFirefox);
        let nav = cand.navigator;
        cand.realm
            .define_property(
                nav,
                "webdriver",
                PropertyDescriptor::plain(Value::Bool(false)),
            )
            .unwrap();
        let tc = Template::capture(&mut cand.realm, cand.window, "window", 3);
        let diffs = tr.diff(&tc);
        assert!(diffs.iter().any(|d| matches!(
            d,
            TemplateDiff::Changed(p, f) if p.starts_with("window.navigator.") && f == "order"
        )));
    }

    #[test]
    fn proto_chain_change_is_detected() {
        let mut reg = build_firefox_world(BrowserFlavor::RegularFirefox);
        let tr = Template::capture(&mut reg.realm, reg.window, "window", 3);

        let mut cand = build_firefox_world(BrowserFlavor::RegularFirefox);
        let nav = cand.navigator;
        let old_proto = cand.realm.get_prototype_of(nav);
        let fake = cand
            .realm
            .alloc(crate::object::JsObject::plain("Object", old_proto));
        cand.realm.set_prototype_of(nav, Some(fake));
        let tc = Template::capture(&mut cand.realm, cand.window, "window", 3);
        let diffs = tr.diff(&tc);
        assert!(diffs.iter().any(|d| matches!(
            d,
            TemplateDiff::Changed(p, _) if p == "window.navigator.__proto_chain__"
        )));
    }
}
