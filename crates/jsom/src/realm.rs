//! The realm: an arena of JS objects plus the reflective operations the
//! spoofing study exercises.
//!
//! Property storage is shape-based: the realm owns an [`AtomTable`]
//! (interned property names) and a [`ShapeForest`] (hidden classes), and
//! every string-keyed operation resolves `name → atom → offset` in O(1)
//! instead of the old linear scan over `Vec<(String, _)>`. Enumeration
//! order — a Table 1 observable — is preserved exactly: a shape's key
//! list is insertion order, and a slot's offset is its position in that
//! list. Cloning a realm (the snapshot-stamping path) shares both tables
//! copy-on-write.

use crate::atom::{Atom, AtomTable};
use crate::error::JsError;
use crate::object::{
    FunctionInfo, JsObject, NativeBehavior, PropertyDescriptor, PropertyKind, ProxyHandler,
};
use crate::value::Value;

/// Handle to an object in a [`Realm`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ObjectId(usize);

impl ObjectId {
    /// Constructs an id directly — for tests that need distinct ids without
    /// a realm.
    #[doc(hidden)]
    pub fn test_id(raw: usize) -> Self {
        ObjectId(raw)
    }
}

/// Counters describing a realm's workload, surfaced through the browser's
/// observation metrics (`jsom.*` counters).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct RealmStats {
    /// Objects in the arena.
    pub objects_allocated: u64,
    /// Distinct property names interned (including the empty name).
    pub atoms_interned: u64,
    /// Distinct shapes ever created (including the root).
    pub shape_transitions: u64,
    /// `get` operations served.
    pub property_gets: u64,
    /// Per-object own-lookup probes performed while serving `get`s
    /// (one per prototype-chain hop).
    pub own_lookups: u64,
}

/// An arena of JS objects with JS-faithful reflective operations.
#[derive(Debug, Clone)]
pub struct Realm {
    objects: Vec<JsObject>,
    atoms: AtomTable,
    shapes: ShapeForest,
    counters: RealmStats,
}

use crate::shape::ShapeForest;

impl Realm {
    /// Creates an empty realm.
    pub fn new() -> Self {
        Self {
            objects: Vec::new(),
            atoms: AtomTable::new(),
            shapes: ShapeForest::new(),
            counters: RealmStats::default(),
        }
    }

    /// Allocates an object, returning its id.
    pub fn alloc(&mut self, obj: JsObject) -> ObjectId {
        self.objects.push(obj);
        ObjectId(self.objects.len() - 1)
    }

    /// Borrows an object.
    ///
    /// # Panics
    /// Panics on a dangling id (arena ids are never freed, so this indicates
    /// a cross-realm id mix-up).
    pub fn obj(&self, id: ObjectId) -> &JsObject {
        &self.objects[id.0]
    }

    /// Borrows an object mutably.
    pub fn obj_mut(&mut self, id: ObjectId) -> &mut JsObject {
        &mut self.objects[id.0]
    }

    /// Number of objects allocated.
    pub fn len(&self) -> usize {
        self.objects.len()
    }

    /// True when no objects are allocated.
    pub fn is_empty(&self) -> bool {
        self.objects.is_empty()
    }

    /// Workload counters, with the table sizes filled in at read time.
    pub fn stats(&self) -> RealmStats {
        RealmStats {
            objects_allocated: self.objects.len() as u64,
            atoms_interned: self.atoms.len() as u64,
            shape_transitions: self.shapes.len() as u64,
            ..self.counters
        }
    }

    /// Interns a property name into this realm's atom table.
    pub fn intern(&mut self, name: &str) -> Atom {
        self.atoms.intern(name)
    }

    // ---------------------------------------------------------------------
    // Construction helpers
    // ---------------------------------------------------------------------

    /// Allocates a named native function.
    pub fn make_native_fn(&mut self, name: &str, behavior: NativeBehavior) -> ObjectId {
        let mut obj = JsObject::plain("Function", None);
        obj.function = Some(FunctionInfo {
            name: std::sync::Arc::from(name),
            native: true,
            behavior,
        });
        self.alloc(obj)
    }

    /// Allocates an *anonymous* native function — the shape a Proxy `get`
    /// trap produces when it wraps a method (Listing 1 of the paper).
    pub fn make_anonymous_fn(&mut self, behavior: NativeBehavior) -> ObjectId {
        self.make_native_fn("", behavior)
    }

    /// Wraps `target` in a Proxy exotic object with the given handler.
    pub fn wrap_in_proxy(&mut self, target: ObjectId, handler: ProxyHandler) -> ObjectId {
        let class = self.obj(target).class.clone();
        let prototype = self.obj(target).prototype;
        let mut obj = JsObject::plain(&class, prototype);
        obj.proxy = Some((target, std::sync::Arc::new(handler)));
        self.alloc(obj)
    }

    // ---------------------------------------------------------------------
    // Own-property storage (atom + shape resolution)
    // ---------------------------------------------------------------------

    /// Inserts or replaces an own property on `id` directly (no proxy
    /// forwarding, no configurability check — the raw storage write that
    /// plain assignment and the world builders use). Replacement keeps the
    /// original insertion position (JS semantics); new keys append, moving
    /// the object to the successor shape.
    pub fn set_own(&mut self, id: ObjectId, key: &str, desc: PropertyDescriptor) {
        let atom = self.atoms.intern(key);
        let shape = self.objects[id.0].shape;
        if let Some(off) = self.shapes.offset_of(shape, atom) {
            self.objects[id.0].slots[off] = desc;
        } else {
            let next = self.shapes.transition_add(shape, atom);
            let obj = &mut self.objects[id.0];
            obj.shape = next;
            obj.slots.push(desc);
        }
    }

    /// Borrows the own descriptor for `key` on `id`, if present. Does not
    /// forward through proxies (see [`Realm::get_own_descriptor`]).
    pub fn own_desc(&self, id: ObjectId, key: &str) -> Option<&PropertyDescriptor> {
        let atom = self.atoms.lookup(key)?;
        let obj = &self.objects[id.0];
        let off = self.shapes.offset_of(obj.shape, atom)?;
        Some(&obj.slots[off])
    }

    /// Own keys of `id` in insertion order (no proxy forwarding).
    pub fn own_keys(&self, id: ObjectId) -> Vec<String> {
        self.shapes
            .keys(self.objects[id.0].shape)
            .iter()
            .map(|&a| self.atoms.name(a).to_string())
            .collect()
    }

    /// Own `(key, descriptor)` pairs of `id` in insertion order.
    pub fn own_properties(&self, id: ObjectId) -> Vec<(String, PropertyDescriptor)> {
        let obj = &self.objects[id.0];
        self.shapes
            .keys(obj.shape)
            .iter()
            .zip(&obj.slots)
            .map(|(&a, d)| (self.atoms.name(a).to_string(), d.clone()))
            .collect()
    }

    // ---------------------------------------------------------------------
    // Reflective operations
    // ---------------------------------------------------------------------

    /// `typeof v`.
    pub fn type_of(&self, v: &Value) -> &'static str {
        match v {
            Value::Object(id) => {
                if self.obj(*id).function.is_some() {
                    "function"
                } else {
                    "object"
                }
            }
            other => other.primitive_type_of(),
        }
    }

    /// `obj[key]` — own lookup, proxy traps, prototype-chain walk, getter
    /// invocation.
    pub fn get(&mut self, id: ObjectId, key: &str) -> Result<Value, JsError> {
        self.counters.property_gets += 1;

        // Proxy exotic behaviour first. Only a matched override value is
        // cloned — the handler itself is merely borrowed.
        let proxied = self
            .obj(id)
            .proxy
            .as_ref()
            .map(|(target, handler)| (*target, handler.override_for(key).cloned()));
        if let Some((target, override_val)) = proxied {
            if let Some(v) = override_val {
                return Ok(v);
            }
            let underlying = self.get(target, key)?;
            // The `get` trap returning a method re-binds it, producing a
            // fresh anonymous function — the Table 1 "unnamed functions"
            // side effect.
            if let Value::Object(fid) = underlying {
                let behavior = self.obj(fid).function.as_ref().map(|i| i.behavior.clone());
                if let Some(behavior) = behavior {
                    let wrapper = self.make_anonymous_fn(behavior);
                    return Ok(Value::Object(wrapper));
                }
            }
            return Ok(underlying);
        }

        // A name that was never interned cannot be a property of anything.
        let Some(atom) = self.atoms.lookup(key) else {
            return Ok(Value::Undefined);
        };

        enum Hit {
            Value(Value),
            Getter(Option<ObjectId>),
        }
        let mut cursor = Some(id);
        while let Some(cur) = cursor {
            self.counters.own_lookups += 1;
            let obj = &self.objects[cur.0];
            if let Some(off) = self.shapes.offset_of(obj.shape, atom) {
                let hit = match &obj.slots[off].kind {
                    PropertyKind::Data { value, .. } => Hit::Value(value.clone()),
                    PropertyKind::Accessor { getter, .. } => Hit::Getter(*getter),
                };
                return match hit {
                    Hit::Value(v) => Ok(v),
                    Hit::Getter(Some(g)) => self.call(g, Value::Object(id)),
                    Hit::Getter(None) => Ok(Value::Undefined),
                };
            }
            cursor = obj.prototype;
        }
        Ok(Value::Undefined)
    }

    /// Calls a function object with a `this` value.
    pub fn call(&mut self, fn_id: ObjectId, this: Value) -> Result<Value, JsError> {
        // Clone only the behaviour, not the whole `FunctionInfo`.
        let behavior = self
            .obj(fn_id)
            .function
            .as_ref()
            .map(|i| i.behavior.clone())
            .ok_or_else(|| JsError::TypeError("not a function".into()))?;
        Ok(match behavior {
            NativeBehavior::Return(v) => v,
            NativeBehavior::HostNoop => Value::Undefined,
            NativeBehavior::FunctionToString => {
                let target = this
                    .as_object()
                    .ok_or_else(|| JsError::TypeError("toString on non-object".into()))?;
                Value::Str(self.function_to_string(target)?.into())
            }
            NativeBehavior::ObjectToString => {
                let class: &str = match &this {
                    Value::Object(o) => &self.obj(*o).class,
                    Value::Undefined => "Undefined",
                    Value::Null => "Null",
                    Value::Bool(_) => "Boolean",
                    Value::Number(_) => "Number",
                    Value::Str(_) => "String",
                };
                Value::Str(format!("[object {class}]").into())
            }
        })
    }

    /// `Function.prototype.toString` output. Firefox renders native
    /// functions as `function name() {\n    [native code]\n}`; an anonymous
    /// wrapper renders with an empty name — exactly the discrepancy shown in
    /// Listing 1 of the paper.
    pub fn function_to_string(&self, fn_id: ObjectId) -> Result<String, JsError> {
        let info = self
            .obj(fn_id)
            .function
            .as_ref()
            .ok_or_else(|| JsError::TypeError("not a function".into()))?;
        let body = if info.native {
            "    [native code]"
        } else {
            "    ..."
        };
        Ok(format!("function {}() {{\n{}\n}}", info.name, body))
    }

    /// `Object.keys(obj)` — own enumerable keys in insertion order. For a
    /// Proxy this forwards to the target (default `ownKeys` trap).
    pub fn object_keys(&self, id: ObjectId) -> Vec<String> {
        if let Some((target, _)) = &self.obj(id).proxy {
            return self.object_keys(*target);
        }
        let obj = &self.objects[id.0];
        self.shapes
            .keys(obj.shape)
            .iter()
            .zip(&obj.slots)
            .filter(|(_, d)| d.enumerable)
            .map(|(&a, _)| self.atoms.name(a).to_string())
            .collect()
    }

    /// `for (k in obj)` — enumerable keys of the object and its prototype
    /// chain, own-first, skipping shadowed names. The shadow check is a
    /// dense per-atom bitset rather than the old string list scan.
    pub fn for_in_keys(&self, id: ObjectId) -> Vec<String> {
        let start = match &self.obj(id).proxy {
            Some((target, _)) => *target,
            None => id,
        };
        let mut seen = vec![false; self.atoms.len()];
        let mut out: Vec<String> = Vec::new();
        let mut cursor = Some(start);
        while let Some(cur) = cursor {
            let obj = &self.objects[cur.0];
            for (&a, d) in self.shapes.keys(obj.shape).iter().zip(&obj.slots) {
                if seen[a.index()] {
                    continue;
                }
                seen[a.index()] = true;
                if d.enumerable {
                    out.push(self.atoms.name(a).to_string());
                }
            }
            cursor = obj.prototype;
        }
        out
    }

    /// `Object.defineProperty(obj, key, desc)`.
    pub fn define_property(
        &mut self,
        id: ObjectId,
        key: &str,
        desc: PropertyDescriptor,
    ) -> Result<(), JsError> {
        if let Some(existing) = self.own_desc(id, key) {
            if !existing.configurable {
                return Err(JsError::TypeError(format!(
                    "can't redefine non-configurable property \"{key}\""
                )));
            }
        }
        self.set_own(id, key, desc);
        Ok(())
    }

    /// Legacy `obj.__defineGetter__(key, fn)` — installs an own enumerable
    /// configurable accessor (deprecated by Mozilla, noted in §3.1).
    pub fn define_getter(
        &mut self,
        id: ObjectId,
        key: &str,
        getter: ObjectId,
    ) -> Result<(), JsError> {
        if self.obj(getter).function.is_none() {
            return Err(JsError::TypeError("getter must be a function".into()));
        }
        self.set_own(
            id,
            key,
            PropertyDescriptor {
                kind: PropertyKind::Accessor {
                    getter: Some(getter),
                    setter: None,
                },
                enumerable: true,
                configurable: true,
            },
        );
        Ok(())
    }

    /// `delete obj[key]` — removes an *own* property. Returns `false` for
    /// own non-configurable properties, `true` otherwise (including for
    /// keys that only exist on the prototype chain, which `delete` cannot
    /// touch — the reason the classic `delete navigator.webdriver` trick
    /// does nothing in Firefox). Resolution goes through the shape table;
    /// the slot removal itself shifts the dense slot vector, mirroring the
    /// linear model's `Vec::remove` order exactly.
    pub fn delete_property(&mut self, id: ObjectId, key: &str) -> bool {
        if let Some((target, _)) = &self.obj(id).proxy {
            let target = *target;
            return self.delete_property(target, key);
        }
        let Some(atom) = self.atoms.lookup(key) else {
            return true;
        };
        let shape = self.objects[id.0].shape;
        let Some(off) = self.shapes.offset_of(shape, atom) else {
            return true;
        };
        if !self.objects[id.0].slots[off].configurable {
            return false;
        }
        let next = self.shapes.transition_remove(shape, atom);
        let obj = &mut self.objects[id.0];
        obj.shape = next;
        obj.slots.remove(off);
        true
    }

    /// `Object.setPrototypeOf(obj, proto)`.
    pub fn set_prototype_of(&mut self, id: ObjectId, proto: Option<ObjectId>) {
        self.obj_mut(id).prototype = proto;
    }

    /// `Object.getPrototypeOf(obj)` (`__proto__`). For a Proxy, the default
    /// trap forwards to the target.
    pub fn get_prototype_of(&self, id: ObjectId) -> Option<ObjectId> {
        if let Some((target, _)) = &self.obj(id).proxy {
            return self.get_prototype_of(*target);
        }
        self.obj(id).prototype
    }

    /// `Object.prototype.hasOwnProperty`.
    pub fn has_own(&self, id: ObjectId, key: &str) -> bool {
        if let Some((target, _)) = &self.obj(id).proxy {
            return self.has_own(*target, key);
        }
        self.own_desc(id, key).is_some()
    }

    /// `Object.getOwnPropertyDescriptor`.
    pub fn get_own_descriptor(&self, id: ObjectId, key: &str) -> Option<PropertyDescriptor> {
        if let Some((target, _)) = &self.obj(id).proxy {
            return self.get_own_descriptor(*target, key);
        }
        self.own_desc(id, key).cloned()
    }

    /// The prototype chain starting at (and excluding) `id`.
    pub fn proto_chain(&self, id: ObjectId) -> Vec<ObjectId> {
        let mut out = Vec::new();
        let mut cursor = self.get_prototype_of(id);
        while let Some(cur) = cursor {
            out.push(cur);
            if out.len() > 64 {
                break; // defensive: cyclic chains are host bugs
            }
            cursor = self.obj(cur).prototype;
        }
        out
    }

    /// True if `id` is a Proxy exotic object. Scripts cannot observe this
    /// directly — detectors must infer it from trap side effects — but the
    /// test suite uses it to validate the model.
    pub fn is_proxy(&self, id: ObjectId) -> bool {
        self.obj(id).proxy.is_some()
    }

    /// Number of own properties — the `navigator._length` observable of
    /// Table 1 (methods 1 and 2 add an own shadowing property, growing this
    /// count; the original accessor remains on the prototype).
    pub fn own_len(&self, id: ObjectId) -> usize {
        if let Some((target, _)) = &self.obj(id).proxy {
            return self.own_len(*target);
        }
        self.obj(id).own_len()
    }
}

impl Default for Realm {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn realm_with_chain() -> (Realm, ObjectId, ObjectId) {
        let mut r = Realm::new();
        let proto = r.alloc(JsObject::plain("NavigatorPrototype", None));
        let getter = r.make_native_fn("get webdriver", NativeBehavior::Return(Value::Bool(true)));
        r.set_own(proto, "webdriver", PropertyDescriptor::getter(getter, true));
        let nav = r.alloc(JsObject::plain("Navigator", Some(proto)));
        (r, nav, proto)
    }

    #[test]
    fn get_walks_prototype_and_calls_getter() {
        let (mut r, nav, _) = realm_with_chain();
        assert_eq!(r.get(nav, "webdriver").unwrap(), Value::Bool(true));
        assert_eq!(r.get(nav, "missing").unwrap(), Value::Undefined);
    }

    #[test]
    fn own_property_shadows_prototype() {
        let (mut r, nav, _) = realm_with_chain();
        r.define_property(
            nav,
            "webdriver",
            PropertyDescriptor::plain(Value::Bool(false)),
        )
        .unwrap();
        assert_eq!(r.get(nav, "webdriver").unwrap(), Value::Bool(false));
        // Prototype still holds the original — shown by deleting the shadow.
        assert_eq!(r.own_len(nav), 1);
    }

    #[test]
    fn define_property_respects_configurability() {
        let mut r = Realm::new();
        let o = r.alloc(JsObject::plain("Object", None));
        r.define_property(o, "x", PropertyDescriptor::define_default(Value::Null))
            .unwrap();
        let err = r
            .define_property(o, "x", PropertyDescriptor::plain(Value::Null))
            .unwrap_err();
        assert!(matches!(err, JsError::TypeError(_)));
    }

    #[test]
    fn set_own_preserves_position_on_redefine() {
        let mut r = Realm::new();
        let o = r.alloc(JsObject::plain("Object", None));
        r.set_own(o, "a", PropertyDescriptor::plain(Value::Number(1.0)));
        r.set_own(o, "b", PropertyDescriptor::plain(Value::Number(2.0)));
        r.set_own(o, "a", PropertyDescriptor::plain(Value::Number(9.0)));
        assert_eq!(r.own_keys(o), vec!["a", "b"]);
        match &r.own_desc(o, "a").unwrap().kind {
            PropertyKind::Data { value, .. } => assert_eq!(*value, Value::Number(9.0)),
            _ => panic!("expected data property"),
        }
    }

    #[test]
    fn for_in_lists_own_then_proto_without_shadowed_dupes() {
        let (mut r, nav, proto) = realm_with_chain();
        r.set_own(proto, "userAgent", PropertyDescriptor::plain("UA".into()));
        r.define_property(nav, "own1", PropertyDescriptor::plain(Value::Number(1.0)))
            .unwrap();
        r.define_property(
            nav,
            "webdriver",
            PropertyDescriptor::plain(Value::Bool(false)),
        )
        .unwrap();
        let keys = r.for_in_keys(nav);
        assert_eq!(keys, vec!["own1", "webdriver", "userAgent"]);
    }

    #[test]
    fn object_keys_only_own_enumerable() {
        let (mut r, nav, _) = realm_with_chain();
        assert!(r.object_keys(nav).is_empty());
        r.define_property(nav, "a", PropertyDescriptor::plain(Value::Null))
            .unwrap();
        r.define_property(nav, "b", PropertyDescriptor::define_default(Value::Null))
            .unwrap();
        assert_eq!(r.object_keys(nav), vec!["a"]);
    }

    #[test]
    fn define_getter_installs_enumerable_accessor() {
        let (mut r, nav, _) = realm_with_chain();
        let g = r.make_native_fn("", NativeBehavior::Return(Value::Bool(false)));
        r.define_getter(nav, "webdriver", g).unwrap();
        assert_eq!(r.get(nav, "webdriver").unwrap(), Value::Bool(false));
        assert_eq!(r.object_keys(nav), vec!["webdriver"]);
        assert!(r
            .get_own_descriptor(nav, "webdriver")
            .unwrap()
            .is_accessor());
    }

    #[test]
    fn define_getter_rejects_non_function() {
        let mut r = Realm::new();
        let o = r.alloc(JsObject::plain("Object", None));
        let not_fn = r.alloc(JsObject::plain("Object", None));
        assert!(r.define_getter(o, "x", not_fn).is_err());
    }

    #[test]
    fn function_to_string_renders_name() {
        let mut r = Realm::new();
        let named = r.make_native_fn("toString", NativeBehavior::HostNoop);
        let anon = r.make_anonymous_fn(NativeBehavior::HostNoop);
        assert_eq!(
            r.function_to_string(named).unwrap(),
            "function toString() {\n    [native code]\n}"
        );
        assert_eq!(
            r.function_to_string(anon).unwrap(),
            "function () {\n    [native code]\n}"
        );
    }

    #[test]
    fn proxy_forwards_and_overrides() {
        let (mut r, nav, _) = realm_with_chain();
        let handler = ProxyHandler {
            get_overrides: vec![("webdriver".into(), Value::Bool(false))],
        };
        let p = r.wrap_in_proxy(nav, handler);
        assert_eq!(r.get(p, "webdriver").unwrap(), Value::Bool(false));
        // Non-overridden keys forward to the target chain.
        assert_eq!(r.get(p, "missing").unwrap(), Value::Undefined);
        // Structural views forward, so no own-key side effects appear.
        assert!(r.object_keys(p).is_empty());
        assert_eq!(r.own_len(p), 0);
    }

    #[test]
    fn proxy_wraps_methods_anonymously() {
        let mut r = Realm::new();
        let proto = r.alloc(JsObject::plain("NavigatorPrototype", None));
        let m = r.make_native_fn("javaEnabled", NativeBehavior::HostNoop);
        r.set_own(
            proto,
            "javaEnabled",
            PropertyDescriptor::plain(Value::Object(m)),
        );
        let nav = r.alloc(JsObject::plain("Navigator", Some(proto)));
        let p = r.wrap_in_proxy(nav, ProxyHandler::default());
        let got = r.get(p, "javaEnabled").unwrap();
        let fid = got.as_object().unwrap();
        let s = r.function_to_string(fid).unwrap();
        assert!(s.starts_with("function ()"), "got: {s}");
        // Direct access on the unwrapped object keeps the name.
        let direct = r.get(nav, "javaEnabled").unwrap().as_object().unwrap();
        assert!(r
            .function_to_string(direct)
            .unwrap()
            .starts_with("function javaEnabled()"));
    }

    #[test]
    fn delete_removes_own_configurable_only() {
        let mut r = Realm::new();
        let o = r.alloc(JsObject::plain("Object", None));
        r.define_property(o, "a", PropertyDescriptor::plain(Value::Number(1.0)))
            .unwrap();
        r.define_property(o, "b", PropertyDescriptor::define_default(Value::Null))
            .unwrap();
        assert!(r.delete_property(o, "a"));
        assert!(r.get(o, "a").unwrap().is_undefined());
        // Non-configurable survives.
        assert!(!r.delete_property(o, "b"));
        assert!(r.has_own(o, "b"));
        // Deleting a missing key "succeeds" per JS semantics.
        assert!(r.delete_property(o, "ghost"));
    }

    #[test]
    fn delete_cannot_reach_prototype_properties() {
        let (mut r, nav, proto) = realm_with_chain();
        assert!(r.delete_property(nav, "webdriver"));
        // The accessor still resolves from the prototype.
        assert_eq!(r.get(nav, "webdriver").unwrap(), Value::Bool(true));
        assert!(r.has_own(proto, "webdriver"));
    }

    #[test]
    fn delete_then_readd_moves_key_to_the_end() {
        // Matches the linear model: remove + re-insert appends.
        let mut r = Realm::new();
        let o = r.alloc(JsObject::plain("Object", None));
        for k in ["a", "b", "c"] {
            r.set_own(o, k, PropertyDescriptor::plain(Value::Null));
        }
        assert!(r.delete_property(o, "b"));
        assert_eq!(r.own_keys(o), vec!["a", "c"]);
        r.set_own(o, "b", PropertyDescriptor::plain(Value::Null));
        assert_eq!(r.own_keys(o), vec!["a", "c", "b"]);
    }

    #[test]
    fn set_prototype_of_changes_chain() {
        let (mut r, nav, proto) = realm_with_chain();
        let fake = r.alloc(JsObject::plain("Object", Some(proto)));
        r.set_own(
            fake,
            "webdriver",
            PropertyDescriptor::plain(Value::Bool(false)),
        );
        r.set_prototype_of(nav, Some(fake));
        assert_eq!(r.get(nav, "webdriver").unwrap(), Value::Bool(false));
        assert_eq!(r.proto_chain(nav), vec![fake, proto]);
    }

    #[test]
    fn type_of_distinguishes_functions() {
        let mut r = Realm::new();
        let f = r.make_native_fn("f", NativeBehavior::HostNoop);
        let o = r.alloc(JsObject::plain("Object", None));
        assert_eq!(r.type_of(&Value::Object(f)), "function");
        assert_eq!(r.type_of(&Value::Object(o)), "object");
        assert_eq!(r.type_of(&Value::Bool(true)), "boolean");
    }

    #[test]
    fn object_to_string_uses_class() {
        let mut r = Realm::new();
        let nav = r.alloc(JsObject::plain("Navigator", None));
        let f = r.make_native_fn("toString", NativeBehavior::ObjectToString);
        let s = r.call(f, Value::Object(nav)).unwrap();
        assert_eq!(s, Value::Str("[object Navigator]".into()));
    }

    #[test]
    fn call_non_function_errors() {
        let mut r = Realm::new();
        let o = r.alloc(JsObject::plain("Object", None));
        assert!(r.call(o, Value::Undefined).is_err());
    }

    #[test]
    fn stats_track_tables_and_gets() {
        let (mut r, nav, _) = realm_with_chain();
        let before = r.stats();
        assert!(before.objects_allocated >= 3);
        assert!(before.atoms_interned >= 2); // "" + "webdriver"
        assert!(before.shape_transitions >= 2); // root + webdriver shape
        r.get(nav, "webdriver").unwrap();
        let after = r.stats();
        assert_eq!(after.property_gets, before.property_gets + 1);
        assert!(after.own_lookups > before.own_lookups);
    }
}
