//! Builders for Firefox-shaped `window`/`navigator` object trees.
//!
//! Jonker et al. (ESORICS'19) showed that the fingerprint surface that
//! separates automated from regular browsers is concentrated in the
//! `navigator` object, with `navigator.webdriver` as the single most
//! discriminative property (the W3C WebDriver spec *requires* conforming
//! automated browsers to expose it as `true`). These builders produce the
//! portion of the Firefox global object graph that the paper's experiments
//! touch: `window`, `navigator`, `Navigator.prototype` with its getters in
//! Firefox enumeration order, and the reflective built-ins
//! (`Object.prototype.toString`, `Function.prototype.toString`).

use crate::object::{JsObject, NativeBehavior, PropertyDescriptor};
use crate::realm::{ObjectId, Realm};
use crate::value::Value;

/// Which browser flavour to build.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BrowserFlavor {
    /// A regular, human-driven Firefox: `navigator.webdriver === false`.
    RegularFirefox,
    /// A WebDriver-automated Firefox (Selenium/OpenWPM) run *headful*, as
    /// the paper does: `navigator.webdriver === true` but otherwise a
    /// normal desktop browser.
    WebDriverFirefox,
    /// A WebDriver-automated Firefox run headless: on top of the webdriver
    /// flag, the environment leaks — no plugins, no window chrome. The
    /// paper runs headful precisely to avoid this second surface
    /// (cf. Vastel's headless-detection work cited in §2).
    HeadlessFirefox,
}

impl BrowserFlavor {
    /// Whether the flavour reports `navigator.webdriver === true`.
    pub fn is_automated(&self) -> bool {
        !matches!(self, BrowserFlavor::RegularFirefox)
    }

    /// Whether the flavour carries headless environment leaks.
    pub fn is_headless(&self) -> bool {
        matches!(self, BrowserFlavor::HeadlessFirefox)
    }
}

/// A built world: the realm plus ids of the interesting roots.
#[derive(Debug, Clone)]
pub struct World {
    /// The object arena.
    pub realm: Realm,
    /// `window`.
    pub window: ObjectId,
    /// `window.navigator`.
    pub navigator: ObjectId,
    /// `Navigator.prototype` (where Firefox keeps the getters).
    pub navigator_prototype: ObjectId,
    /// `Object.prototype`.
    pub object_prototype: ObjectId,
    /// `Function.prototype.toString`.
    pub function_to_string: ObjectId,
    /// The flavour this world was built as.
    pub flavor: BrowserFlavor,
}

impl World {
    /// Rebinds `window.navigator` (used by the Proxy spoofing method, which
    /// replaces the binding with a wrapping proxy).
    pub fn rebind_navigator(&mut self, new_navigator: ObjectId) {
        self.realm.set_own(
            self.window,
            "navigator",
            PropertyDescriptor::plain(Value::Object(new_navigator)),
        );
        self.navigator = new_navigator;
    }

    /// Resolves `window.navigator` freshly through the object graph (what a
    /// page script actually sees, following any rebinding).
    pub fn resolve_navigator(&mut self) -> ObjectId {
        self.realm
            .get(self.window, "navigator")
            // installed by World::new; every rebinding re-points it. lint: allow(no-panic)
            .expect("window.navigator must resolve")
            .as_object()
            // each rebinding stores Value::Object. lint: allow(no-panic)
            .expect("window.navigator must be an object")
    }
}

/// Navigator getter properties in (representative) Firefox enumeration
/// order, with the values a Linux Firefox 88 — the OpenWPM v0.13 browser —
/// reports. Order fidelity matters: Table 1's "incorrect order of navigator
/// properties" side effect is observed by iterating this list.
const NAVIGATOR_GETTERS: &[(&str, NavValue)] = &[
    ("permissions", NavValue::Obj("Permissions")),
    ("mimeTypes", NavValue::Obj("MimeTypeArray")),
    ("plugins", NavValue::Obj("PluginArray")),
    ("doNotTrack", NavValue::Str("unspecified")),
    ("maxTouchPoints", NavValue::Num(0.0)),
    ("mediaCapabilities", NavValue::Obj("MediaCapabilities")),
    ("oscpu", NavValue::Str("Linux x86_64")),
    ("vendor", NavValue::Str("")),
    ("vendorSub", NavValue::Str("")),
    ("productSub", NavValue::Str("20100101")),
    ("cookieEnabled", NavValue::Bool(true)),
    ("buildID", NavValue::Str("20181001000000")),
    ("mediaDevices", NavValue::Obj("MediaDevices")),
    ("serviceWorker", NavValue::Obj("ServiceWorkerContainer")),
    ("credentials", NavValue::Obj("CredentialsContainer")),
    ("clipboard", NavValue::Obj("Clipboard")),
    ("hardwareConcurrency", NavValue::Num(8.0)),
    ("geolocation", NavValue::Obj("Geolocation")),
    ("appCodeName", NavValue::Str("Mozilla")),
    ("appName", NavValue::Str("Netscape")),
    ("appVersion", NavValue::Str("5.0 (X11)")),
    ("platform", NavValue::Str("Linux x86_64")),
    (
        "userAgent",
        NavValue::Str("Mozilla/5.0 (X11; Linux x86_64; rv:88.0) Gecko/20100101 Firefox/88.0"),
    ),
    ("product", NavValue::Str("Gecko")),
    ("language", NavValue::Str("en-US")),
    ("languages", NavValue::Obj("Array")),
    ("onLine", NavValue::Bool(true)),
    ("webdriver", NavValue::WebDriverFlag),
    ("storage", NavValue::Obj("StorageManager")),
];

/// Navigator methods (named native functions) in enumeration order.
const NAVIGATOR_METHODS: &[&str] = &[
    "javaEnabled",
    "taintEnabled",
    "getGamepads",
    "vibrate",
    "sendBeacon",
    "registerProtocolHandler",
    "requestMediaKeySystemAccess",
];

enum NavValue {
    Str(&'static str),
    Bool(bool),
    Num(f64),
    /// A host object of the given class (contents irrelevant to the study).
    Obj(&'static str),
    /// `navigator.webdriver` — value depends on the flavour.
    WebDriverFlag,
}

/// Builds the Firefox world for the given flavour.
pub fn build_firefox_world(flavor: BrowserFlavor) -> World {
    let mut realm = Realm::new();

    // Object.prototype with toString/hasOwnProperty.
    let object_prototype = realm.alloc(JsObject::plain("ObjectPrototype", None));
    let obj_to_string = realm.make_native_fn("toString", NativeBehavior::ObjectToString);
    realm.set_own(
        object_prototype,
        "toString",
        PropertyDescriptor {
            kind: crate::object::PropertyKind::Data {
                value: Value::Object(obj_to_string),
                writable: true,
            },
            enumerable: false,
            configurable: true,
        },
    );

    // Function.prototype.toString.
    let function_to_string = realm.make_native_fn("toString", NativeBehavior::FunctionToString);

    // Navigator.prototype — getters in Firefox order, then methods.
    let navigator_prototype = realm.alloc(JsObject::plain(
        "NavigatorPrototype",
        Some(object_prototype),
    ));
    for (name, v) in NAVIGATOR_GETTERS {
        let ret = match v {
            NavValue::Str(s) => Value::Str((*s).into()),
            NavValue::Bool(b) => Value::Bool(*b),
            NavValue::Num(n) => Value::Number(*n),
            NavValue::Obj(class) => {
                let o = realm.alloc(JsObject::plain(class, Some(object_prototype)));
                Value::Object(o)
            }
            NavValue::WebDriverFlag => Value::Bool(flavor.is_automated()),
        };
        let getter = realm.make_native_fn(&format!("get {name}"), NativeBehavior::Return(ret));
        realm.set_own(
            navigator_prototype,
            name,
            PropertyDescriptor::getter(getter, true),
        );
    }
    for name in NAVIGATOR_METHODS {
        let f = realm.make_native_fn(name, NativeBehavior::HostNoop);
        realm.set_own(
            navigator_prototype,
            name,
            PropertyDescriptor {
                kind: crate::object::PropertyKind::Data {
                    value: Value::Object(f),
                    writable: true,
                },
                enumerable: true,
                configurable: true,
            },
        );
    }

    // Plugins: a headful desktop Firefox 88 reports a small PluginArray;
    // headless runs report none — one of the leaks the paper's headful
    // setup avoids.
    {
        let plugins_obj = realm
            .own_desc(navigator_prototype, "plugins")
            .and_then(|d| match &d.kind {
                crate::object::PropertyKind::Accessor { getter, .. } => *getter,
                _ => None,
            })
            // NAVIGATOR_GETTERS above installs the accessor. lint: allow(no-panic)
            .expect("plugins getter exists");
        let n_plugins = if flavor.is_headless() { 0.0 } else { 2.0 };
        let arr = realm.alloc(JsObject::plain("PluginArray", Some(object_prototype)));
        realm.set_own(
            arr,
            "length",
            PropertyDescriptor {
                kind: crate::object::PropertyKind::Data {
                    value: Value::Number(n_plugins),
                    writable: false,
                },
                enumerable: false,
                configurable: false,
            },
        );
        realm.obj_mut(plugins_obj).function = Some(crate::object::FunctionInfo {
            name: "get plugins".into(),
            native: true,
            behavior: NativeBehavior::Return(Value::Object(arr)),
        });
    }

    // navigator instance: no own properties in a pristine Firefox — every
    // observable lives on the prototype. That emptiness is itself one of the
    // invariants the side-effect probes rely on.
    let navigator = realm.alloc(JsObject::plain("Navigator", Some(navigator_prototype)));

    // window with a navigator binding and the built-ins pages reach for.
    let window = realm.alloc(JsObject::plain("Window", Some(object_prototype)));
    realm.set_own(
        window,
        "navigator",
        PropertyDescriptor::plain(Value::Object(navigator)),
    );
    let document = realm.alloc(JsObject::plain("HTMLDocument", Some(object_prototype)));
    realm.set_own(
        window,
        "document",
        PropertyDescriptor::plain(Value::Object(document)),
    );
    // Window geometry: a headful window carries browser chrome (outer >
    // inner); a headless one does not.
    let chrome_px = if flavor.is_headless() { 0.0 } else { 95.0 };
    for (name, v) in [
        ("innerWidth", 1280.0),
        ("innerHeight", 720.0),
        ("outerWidth", 1280.0),
        ("outerHeight", 720.0 + chrome_px),
    ] {
        realm.set_own(window, name, PropertyDescriptor::plain(Value::Number(v)));
    }

    World {
        realm,
        window,
        navigator,
        navigator_prototype,
        object_prototype,
        function_to_string,
        flavor,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn regular_firefox_reports_webdriver_false() {
        let mut w = build_firefox_world(BrowserFlavor::RegularFirefox);
        let nav = w.navigator;
        assert_eq!(w.realm.get(nav, "webdriver").unwrap(), Value::Bool(false));
    }

    #[test]
    fn webdriver_firefox_reports_webdriver_true() {
        let mut w = build_firefox_world(BrowserFlavor::WebDriverFirefox);
        let nav = w.navigator;
        assert_eq!(w.realm.get(nav, "webdriver").unwrap(), Value::Bool(true));
    }

    #[test]
    fn pristine_navigator_has_no_own_properties() {
        let w = build_firefox_world(BrowserFlavor::RegularFirefox);
        assert_eq!(w.realm.own_len(w.navigator), 0);
        assert!(w.realm.object_keys(w.navigator).is_empty());
    }

    #[test]
    fn webdriver_is_enumerable_via_for_in() {
        let w = build_firefox_world(BrowserFlavor::RegularFirefox);
        let keys = w.realm.for_in_keys(w.navigator);
        assert!(keys.iter().any(|k| k == "webdriver"));
        assert!(keys.iter().any(|k| k == "userAgent"));
    }

    #[test]
    fn property_order_is_stable_across_builds() {
        let a = build_firefox_world(BrowserFlavor::RegularFirefox);
        let b = build_firefox_world(BrowserFlavor::RegularFirefox);
        assert_eq!(
            a.realm.for_in_keys(a.navigator),
            b.realm.for_in_keys(b.navigator)
        );
    }

    #[test]
    fn flavors_differ_only_in_webdriver_value() {
        let reg = build_firefox_world(BrowserFlavor::RegularFirefox);
        let bot = build_firefox_world(BrowserFlavor::WebDriverFirefox);
        assert_eq!(
            reg.realm.for_in_keys(reg.navigator),
            bot.realm.for_in_keys(bot.navigator)
        );
    }

    #[test]
    fn navigator_methods_have_names() {
        let mut w = build_firefox_world(BrowserFlavor::RegularFirefox);
        let nav = w.navigator;
        let f = w
            .realm
            .get(nav, "javaEnabled")
            .unwrap()
            .as_object()
            .unwrap();
        let s = w.realm.function_to_string(f).unwrap();
        assert!(s.contains("javaEnabled"));
        assert!(s.contains("[native code]"));
    }

    #[test]
    fn rebind_navigator_changes_resolution() {
        let mut w = build_firefox_world(BrowserFlavor::WebDriverFirefox);
        let decoy = w
            .realm
            .alloc(JsObject::plain("Navigator", Some(w.navigator_prototype)));
        w.rebind_navigator(decoy);
        assert_eq!(w.resolve_navigator(), decoy);
    }

    #[test]
    fn user_agent_matches_openwpm_firefox() {
        let mut w = build_firefox_world(BrowserFlavor::RegularFirefox);
        let nav = w.navigator;
        let ua = w.realm.get(nav, "userAgent").unwrap();
        assert!(ua.as_str().unwrap().contains("Firefox/88.0"));
    }
}
