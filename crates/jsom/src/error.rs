//! Errors raised by object-model operations.

use std::fmt;

/// A JavaScript-level error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum JsError {
    /// `TypeError` — e.g. calling a non-function or redefining a
    /// non-configurable property.
    TypeError(String),
    /// `ReferenceError` — a missing binding.
    ReferenceError(String),
    /// Internal invariant violation (bad object id).
    Internal(String),
}

impl fmt::Display for JsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            JsError::TypeError(m) => write!(f, "TypeError: {m}"),
            JsError::ReferenceError(m) => write!(f, "ReferenceError: {m}"),
            JsError::Internal(m) => write!(f, "InternalError: {m}"),
        }
    }
}

impl std::error::Error for JsError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_kind() {
        assert_eq!(JsError::TypeError("x".into()).to_string(), "TypeError: x");
        assert_eq!(
            JsError::ReferenceError("y".into()).to_string(),
            "ReferenceError: y"
        );
        assert!(JsError::Internal("z".into()).to_string().contains('z'));
    }
}
