//! The linear-scan reference model.
//!
//! This is the pre-shape property storage — `Vec<(String, descriptor)>`
//! with O(n) string-compare lookup — preserved as an executable
//! specification. The differential proptest in
//! `tests/shape_differential.rs` drives a [`LinearObject`] and a
//! shape-backed realm object through identical operation sequences and
//! asserts every observable (key order, descriptors, delete results) is
//! byte-identical; the campaign benchmark uses it as the lookups/sec
//! baseline.

use crate::error::JsError;
use crate::object::PropertyDescriptor;

/// An own-property map with the original linear-scan semantics.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct LinearObject {
    /// Own properties in insertion order.
    pub props: Vec<(String, PropertyDescriptor)>,
}

impl LinearObject {
    /// An empty object.
    pub fn new() -> Self {
        Self::default()
    }

    /// Finds an own property slot.
    pub fn own(&self, key: &str) -> Option<&PropertyDescriptor> {
        self.props.iter().find(|(k, _)| k == key).map(|(_, d)| d)
    }

    /// Inserts or replaces an own property. Replacement keeps the original
    /// insertion position (JS semantics); new keys append.
    pub fn set_own(&mut self, key: &str, desc: PropertyDescriptor) {
        if let Some(slot) = self
            .props
            .iter_mut()
            .find(|(k, _)| k == key)
            .map(|(_, d)| d)
        {
            *slot = desc;
        } else {
            self.props.push((key.to_string(), desc));
        }
    }

    /// `Object.defineProperty` semantics: rejects redefinition of a
    /// non-configurable property.
    pub fn define(&mut self, key: &str, desc: PropertyDescriptor) -> Result<(), JsError> {
        if let Some(existing) = self.own(key) {
            if !existing.configurable {
                return Err(JsError::TypeError(format!(
                    "can't redefine non-configurable property \"{key}\""
                )));
            }
        }
        self.set_own(key, desc);
        Ok(())
    }

    /// `delete` semantics: `false` for own non-configurable properties,
    /// `true` otherwise (including missing keys).
    pub fn delete(&mut self, key: &str) -> bool {
        if let Some(pos) = self.props.iter().position(|(k, _)| k == key) {
            if !self.props[pos].1.configurable {
                return false;
            }
            self.props.remove(pos);
        }
        true
    }

    /// Own keys in insertion order.
    pub fn own_keys(&self) -> Vec<String> {
        self.props.iter().map(|(k, _)| k.clone()).collect()
    }

    /// Own *enumerable* keys in insertion order (`Object.keys`).
    pub fn own_enumerable_keys(&self) -> Vec<String> {
        self.props
            .iter()
            .filter(|(_, d)| d.enumerable)
            .map(|(k, _)| k.clone())
            .collect()
    }

    /// Number of own properties.
    pub fn own_len(&self) -> usize {
        self.props.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::Value;

    #[test]
    fn keeps_insertion_order_and_replaces_in_place() {
        let mut o = LinearObject::new();
        o.set_own("a", PropertyDescriptor::plain(Value::Number(1.0)));
        o.set_own("b", PropertyDescriptor::plain(Value::Number(2.0)));
        o.set_own("a", PropertyDescriptor::plain(Value::Number(9.0)));
        assert_eq!(o.own_keys(), vec!["a", "b"]);
        assert_eq!(o.own_len(), 2);
    }

    #[test]
    fn delete_and_define_follow_js_semantics() {
        let mut o = LinearObject::new();
        o.set_own("a", PropertyDescriptor::plain(Value::Null));
        o.define("b", PropertyDescriptor::define_default(Value::Null))
            .unwrap();
        assert!(o
            .define("b", PropertyDescriptor::plain(Value::Null))
            .is_err());
        assert!(o.delete("a"));
        assert!(!o.delete("b"));
        assert!(o.delete("ghost"));
        assert_eq!(o.own_keys(), vec!["b"]);
        assert_eq!(o.own_enumerable_keys(), Vec::<String>::new());
    }
}
