//! Hidden classes (shapes) with a transition tree.
//!
//! Objects that acquire the same properties in the same order share one
//! *shape*: an immutable record of the key list plus an atom-indexed
//! offset table. An object then stores only its shape id and a dense
//! `Vec` of property slots; own-property lookup is `atom → offset` in
//! O(1) instead of a linear string scan.
//!
//! The detectability-critical invariant (Table 1 of the paper treats
//! `Object.keys` order as an observable): a shape's `keys` are exactly
//! the insertion-ordered key list of the old `Vec<(String, …)>` model,
//! and a property's offset equals its position in that list. Shapes are
//! only ever created by appending one key to an existing shape, so the
//! invariant holds by construction; deletion re-derives the surviving
//! key list from the root, preserving relative order.
//!
//! Like the atom table, the forest is shared copy-on-write: realm clones
//! (snapshot stamps) bump one `Arc`, and only a post-clone *new*
//! transition copies the storage.

use crate::atom::Atom;
use std::sync::Arc;

/// Handle to a shape in a [`ShapeForest`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ShapeId(u32);

impl ShapeId {
    /// The empty root shape every forest starts with.
    pub const ROOT: ShapeId = ShapeId(0);

    fn index(self) -> usize {
        self.0 as usize
    }
}

#[derive(Debug, Clone, PartialEq, Default)]
struct Shape {
    /// Own keys in insertion order; a property's offset is its position.
    keys: Vec<Atom>,
    /// Atom index → property offset + 1; 0 means absent. Sized to the
    /// highest atom this shape holds, so lookups are one bounds-checked
    /// array read.
    offsets: Vec<u32>,
    /// Cached add-transitions: `(key, child shape)`.
    add: Vec<(Atom, ShapeId)>,
    /// Cached delete-transitions: `(key, surviving shape)`.
    del: Vec<(Atom, ShapeId)>,
}

impl Shape {
    fn offset_of(&self, atom: Atom) -> Option<usize> {
        match self.offsets.get(atom.index()) {
            Some(&slot) if slot > 0 => Some(slot as usize - 1),
            _ => None,
        }
    }
}

/// All shapes of a realm, rooted at [`ShapeId::ROOT`].
#[derive(Debug, Clone, PartialEq)]
pub struct ShapeForest {
    shapes: Arc<Vec<Shape>>,
}

impl ShapeForest {
    /// A forest holding only the empty root shape.
    pub fn new() -> Self {
        Self {
            shapes: Arc::new(vec![Shape::default()]),
        }
    }

    /// Number of distinct shapes ever created.
    pub fn len(&self) -> usize {
        self.shapes.len()
    }

    /// Always false: the root shape exists from construction.
    pub fn is_empty(&self) -> bool {
        self.shapes.is_empty()
    }

    /// The insertion-ordered key list of a shape.
    pub fn keys(&self, shape: ShapeId) -> &[Atom] {
        &self.shapes[shape.index()].keys
    }

    /// Number of own properties a shape describes.
    pub fn key_count(&self, shape: ShapeId) -> usize {
        self.shapes[shape.index()].keys.len()
    }

    /// O(1) offset of `atom` within objects of `shape`, if present.
    pub fn offset_of(&self, shape: ShapeId, atom: Atom) -> Option<usize> {
        self.shapes[shape.index()].offset_of(atom)
    }

    /// Whether this forest shares storage with `other`.
    pub fn shares_storage_with(&self, other: &ShapeForest) -> bool {
        Arc::ptr_eq(&self.shapes, &other.shapes)
    }

    /// The shape reached by appending `atom` to `shape`. Cached, so two
    /// objects built with the same key sequence share every intermediate
    /// shape. The caller guarantees `atom` is not already present.
    pub fn transition_add(&mut self, shape: ShapeId, atom: Atom) -> ShapeId {
        debug_assert!(
            self.offset_of(shape, atom).is_none(),
            "transition_add on a present key"
        );
        if let Some(&(_, child)) = self.shapes[shape.index()]
            .add
            .iter()
            .find(|(a, _)| *a == atom)
        {
            return child;
        }
        let parent = &self.shapes[shape.index()];
        let mut keys = Vec::with_capacity(parent.keys.len() + 1);
        keys.extend_from_slice(&parent.keys);
        keys.push(atom);
        let mut offsets = parent.offsets.clone();
        if offsets.len() <= atom.index() {
            offsets.resize(atom.index() + 1, 0);
        }
        // 2^32 properties / shapes exceeds any simulated page; wrapping
        // silently would corrupt slot lookup. lint: allow(no-panic)
        offsets[atom.index()] = u32::try_from(keys.len()).expect("shape width overflow");
        // Same capacity invariant as above. lint: allow(no-panic)
        let child_id = ShapeId(u32::try_from(self.shapes.len()).expect("shape forest overflow"));
        let shapes = Arc::make_mut(&mut self.shapes);
        shapes.push(Shape {
            keys,
            offsets,
            add: Vec::new(),
            del: Vec::new(),
        });
        shapes[shape.index()].add.push((atom, child_id));
        child_id
    }

    /// The shape reached by deleting `atom` from `shape`: the root
    /// re-extended with every surviving key in original order (so
    /// enumeration order is exactly the linear model's post-`remove`
    /// order). Returns `shape` unchanged when the key is absent. Cached
    /// per `(shape, atom)`.
    pub fn transition_remove(&mut self, shape: ShapeId, atom: Atom) -> ShapeId {
        if self.offset_of(shape, atom).is_none() {
            return shape;
        }
        if let Some(&(_, child)) = self.shapes[shape.index()]
            .del
            .iter()
            .find(|(a, _)| *a == atom)
        {
            return child;
        }
        let survivors: Vec<Atom> = self.shapes[shape.index()]
            .keys
            .iter()
            .copied()
            .filter(|&k| k != atom)
            .collect();
        let mut cur = ShapeId::ROOT;
        for k in survivors {
            cur = self.transition_add(cur, k);
        }
        Arc::make_mut(&mut self.shapes)[shape.index()]
            .del
            .push((atom, cur));
        cur
    }
}

impl Default for ShapeForest {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::atom::AtomTable;

    fn atoms(names: &[&str]) -> (AtomTable, Vec<Atom>) {
        let mut t = AtomTable::new();
        let v = names.iter().map(|n| t.intern(n)).collect();
        (t, v)
    }

    #[test]
    fn offsets_match_insertion_positions() {
        let (_, a) = atoms(&["x", "y", "z"]);
        let mut f = ShapeForest::new();
        let mut s = ShapeId::ROOT;
        for &atom in &a {
            s = f.transition_add(s, atom);
        }
        assert_eq!(f.key_count(s), 3);
        for (i, &atom) in a.iter().enumerate() {
            assert_eq!(f.offset_of(s, atom), Some(i));
        }
        assert_eq!(f.keys(s), a.as_slice());
    }

    #[test]
    fn same_key_sequence_shares_shapes() {
        let (_, a) = atoms(&["x", "y"]);
        let mut f = ShapeForest::new();
        let s1 = {
            let s = f.transition_add(ShapeId::ROOT, a[0]);
            f.transition_add(s, a[1])
        };
        let before = f.len();
        let s2 = {
            let s = f.transition_add(ShapeId::ROOT, a[0]);
            f.transition_add(s, a[1])
        };
        assert_eq!(s1, s2, "cached transitions must be reused");
        assert_eq!(f.len(), before, "no new shapes for a repeated sequence");
    }

    #[test]
    fn different_orders_get_different_shapes() {
        let (_, a) = atoms(&["x", "y"]);
        let mut f = ShapeForest::new();
        let xy = {
            let s = f.transition_add(ShapeId::ROOT, a[0]);
            f.transition_add(s, a[1])
        };
        let yx = {
            let s = f.transition_add(ShapeId::ROOT, a[1]);
            f.transition_add(s, a[0])
        };
        assert_ne!(xy, yx, "insertion order is part of the shape");
        assert_eq!(f.keys(xy), &[a[0], a[1]]);
        assert_eq!(f.keys(yx), &[a[1], a[0]]);
    }

    #[test]
    fn remove_preserves_surviving_order_and_caches() {
        let (_, a) = atoms(&["x", "y", "z"]);
        let mut f = ShapeForest::new();
        let mut s = ShapeId::ROOT;
        for &atom in &a {
            s = f.transition_add(s, atom);
        }
        let without_y = f.transition_remove(s, a[1]);
        assert_eq!(f.keys(without_y), &[a[0], a[2]]);
        assert_eq!(f.offset_of(without_y, a[0]), Some(0));
        assert_eq!(f.offset_of(without_y, a[2]), Some(1));
        assert_eq!(f.offset_of(without_y, a[1]), None);
        // Cached: removing again creates no shapes.
        let before = f.len();
        assert_eq!(f.transition_remove(s, a[1]), without_y);
        assert_eq!(f.len(), before);
        // Removing an absent key is the identity.
        assert_eq!(f.transition_remove(without_y, a[1]), without_y);
    }

    #[test]
    fn clones_share_until_a_new_transition() {
        let (_, a) = atoms(&["x", "y"]);
        let mut f = ShapeForest::new();
        let s = f.transition_add(ShapeId::ROOT, a[0]);
        let mut g = f.clone();
        assert!(f.shares_storage_with(&g));
        // A cached transition does not un-share.
        g.transition_add(ShapeId::ROOT, a[0]);
        assert!(f.shares_storage_with(&g));
        // A new one copies on write.
        g.transition_add(s, a[1]);
        assert!(!f.shares_storage_with(&g));
        assert_eq!(f.len(), 2);
        assert_eq!(g.len(), 3);
    }
}
