//! Interned property keys (atoms).
//!
//! Every property name in a realm is interned exactly once into a
//! [`AtomTable`], turning the `String` comparisons of the old linear
//! property scan into `u32` equality and making a property name usable as
//! a direct index into shape offset tables ([`crate::shape`]). The table
//! is shared copy-on-write (`Arc`) so cloning a realm — the snapshot
//! stamping path the crawl campaign uses — costs one reference-count
//! bump instead of re-hashing every key.
//!
//! Determinism note: atom *numbering* is insertion order, which is fully
//! determined by the (deterministic) build sequence of the realm. The
//! interior `HashMap` is only ever point-queried — its iteration order
//! never reaches any observable output — which is why the workspace
//! linter sanctions this module as an allowed unordered-container
//! interior (see `UNORDERED_INTERIOR_SITES` in `hlisa-lint`).

use std::collections::HashMap;
use std::sync::Arc;

/// An interned property name. `Atom`s are only meaningful relative to the
/// [`AtomTable`] that produced them (or a clone of it).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Atom(u32);

impl Atom {
    /// The always-present empty-name atom (anonymous functions).
    pub const EMPTY: Atom = Atom(0);

    /// The atom's dense index, usable for direct table addressing.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

#[derive(Debug, Clone, Default, PartialEq)]
struct Inner {
    /// Atom index → name. The canonical, insertion-ordered view.
    names: Vec<String>,
    /// Name → atom index. Point lookups only; never iterated.
    index: HashMap<String, u32>,
}

/// The per-realm intern table. Cloning shares the underlying storage;
/// the first `intern` of a *new* name after a clone copies on write.
#[derive(Debug, Clone, PartialEq)]
pub struct AtomTable {
    inner: Arc<Inner>,
}

impl AtomTable {
    /// An empty table with `""` pre-interned as [`Atom::EMPTY`].
    ///
    /// Pre-interning the empty name matters for the snapshot path: proxy
    /// `get` traps allocate anonymous (empty-named) wrapper functions on
    /// every method access, and that must not trigger a copy-on-write of
    /// a stamped realm's shared table.
    pub fn new() -> Self {
        let mut inner = Inner::default();
        inner.names.push(String::new());
        inner.index.insert(String::new(), 0);
        Self {
            inner: Arc::new(inner),
        }
    }

    /// Interns `name`, returning its atom. Existing names never mutate
    /// the table (and therefore never un-share a snapshot clone).
    pub fn intern(&mut self, name: &str) -> Atom {
        if let Some(&i) = self.inner.index.get(name) {
            return Atom(i);
        }
        let inner = Arc::make_mut(&mut self.inner);
        // 2^32 interned names exceeds any page the simulator can build;
        // overflowing silently would alias atoms. lint: allow(no-panic)
        let i = u32::try_from(inner.names.len()).expect("atom table overflow");
        inner.names.push(name.to_string());
        inner.index.insert(name.to_string(), i);
        Atom(i)
    }

    /// The atom for `name`, if it was ever interned. A name absent here is
    /// absent from every object of the realm.
    pub fn lookup(&self, name: &str) -> Option<Atom> {
        self.inner.index.get(name).copied().map(Atom)
    }

    /// The name behind an atom.
    ///
    /// # Panics
    /// Panics on an atom from a different table (a realm mix-up).
    pub fn name(&self, atom: Atom) -> &str {
        &self.inner.names[atom.index()]
    }

    /// Number of interned names (including the empty name).
    pub fn len(&self) -> usize {
        self.inner.names.len()
    }

    /// Always false: the empty name is pre-interned.
    pub fn is_empty(&self) -> bool {
        self.inner.names.is_empty()
    }

    /// Whether this table shares storage with `other` (both are clones of
    /// the same snapshot and neither has diverged).
    pub fn shares_storage_with(&self, other: &AtomTable) -> bool {
        Arc::ptr_eq(&self.inner, &other.inner)
    }
}

impl Default for AtomTable {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interning_is_idempotent_and_dense() {
        let mut t = AtomTable::new();
        let a = t.intern("webdriver");
        let b = t.intern("userAgent");
        assert_ne!(a, b);
        assert_eq!(t.intern("webdriver"), a);
        assert_eq!(t.name(a), "webdriver");
        assert_eq!(t.name(b), "userAgent");
        assert_eq!(t.len(), 3); // "" + two names
    }

    #[test]
    fn empty_name_is_preinterned() {
        let mut t = AtomTable::new();
        assert_eq!(t.lookup(""), Some(Atom::EMPTY));
        assert_eq!(t.intern(""), Atom::EMPTY);
        assert_eq!(t.name(Atom::EMPTY), "");
    }

    #[test]
    fn lookup_misses_unknown_names() {
        let t = AtomTable::new();
        assert_eq!(t.lookup("ghost"), None);
    }

    #[test]
    fn clones_share_until_a_new_name_arrives() {
        let mut a = AtomTable::new();
        a.intern("webdriver");
        let mut b = a.clone();
        assert!(a.shares_storage_with(&b));
        // Re-interning an existing name keeps sharing.
        b.intern("webdriver");
        assert!(a.shares_storage_with(&b));
        // A genuinely new name copies on write, leaving `a` untouched.
        b.intern("platform");
        assert!(!a.shares_storage_with(&b));
        assert_eq!(a.lookup("platform"), None);
        assert!(b.lookup("platform").is_some());
    }

    #[test]
    fn numbering_follows_insertion_order() {
        let mut t = AtomTable::new();
        let names = ["c", "a", "b"];
        let atoms: Vec<Atom> = names.iter().map(|n| t.intern(n)).collect();
        for w in atoms.windows(2) {
            assert!(w[0].index() < w[1].index());
        }
    }
}
