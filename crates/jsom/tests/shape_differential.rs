//! Differential test: the shape-backed property storage against the
//! linear-scan reference model ([`hlisa_jsom::LinearObject`]), and
//! snapshot-cloned realms against fresh-built ones.
//!
//! Enumeration order is a Table 1 observable, so the optimization must be
//! invisible: across arbitrary build/define/delete sequences, `Object.keys`
//! order, `getOwnPropertyDescriptor` results, delete outcomes, and full
//! `TemplateDiff` output have to be byte-identical to the old linear
//! semantics.

use hlisa_jsom::builders::{build_firefox_world, BrowserFlavor};
use hlisa_jsom::object::JsObject;
use hlisa_jsom::realm::{ObjectId, Realm};
use hlisa_jsom::{LinearObject, NativeBehavior, PropertyDescriptor, Template, Value};
use proptest::collection::vec;
use proptest::prelude::*;

/// Fixed key pool; small enough that sequences revisit keys (exercising
/// replace-in-place, delete-then-readd, and shadowing) and includes the
/// study's hot names.
const KEYS: &[&str] = &[
    "webdriver",
    "userAgent",
    "alpha",
    "beta",
    "gamma",
    "delta",
    "plugins",
    "epsilon",
];

#[derive(Debug, Clone, Copy)]
enum Op {
    SetPlain,
    DefineNonEnum,
    DefineGetter,
    Delete,
}

fn decode(kind: u8) -> Op {
    match kind % 4 {
        0 => Op::SetPlain,
        1 => Op::DefineNonEnum,
        2 => Op::DefineGetter,
        _ => Op::Delete,
    }
}

/// Applies one op to a realm object and mirrors it on the linear model,
/// asserting the operations agree on success/failure.
fn apply(
    realm: &mut Realm,
    obj: ObjectId,
    linear: &mut LinearObject,
    step: usize,
    op: Op,
    key: &str,
) {
    match op {
        Op::SetPlain => {
            let desc = PropertyDescriptor::plain(Value::Number(step as f64));
            realm.set_own(obj, key, desc.clone());
            linear.set_own(key, desc);
        }
        Op::DefineNonEnum => {
            let desc = PropertyDescriptor::define_default(Value::Number(step as f64));
            let a = realm.define_property(obj, key, desc.clone());
            let b = linear.define(key, desc);
            assert_eq!(a.is_err(), b.is_err(), "define disagreement on {key:?}");
        }
        Op::DefineGetter => {
            // Allocate the getter first so both sides store the same id.
            let g = realm.make_native_fn(
                &format!("get {key}"),
                NativeBehavior::Return(Value::Number(step as f64)),
            );
            let desc = PropertyDescriptor::getter(g, true);
            // Realm::define_getter has raw set_own semantics; mirror that.
            realm
                .define_getter(obj, key, g)
                .expect("getter is a function");
            linear.set_own(key, desc);
        }
        Op::Delete => {
            let a = realm.delete_property(obj, key);
            let b = linear.delete(key);
            assert_eq!(a, b, "delete disagreement on {key:?}");
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Shape-table lookups vs the linear reference on a bare object.
    #[test]
    fn shape_storage_matches_linear_reference(ops in vec((0u8..4, 0u8..8), 0..30)) {
        let mut realm = Realm::new();
        let obj = realm.alloc(JsObject::plain("Object", None));
        let mut linear = LinearObject::new();

        for (step, (kind, key_idx)) in ops.iter().enumerate() {
            let key = KEYS[*key_idx as usize];
            apply(&mut realm, obj, &mut linear, step, decode(*kind), key);

            // Every observable, after every step.
            prop_assert_eq!(realm.own_keys(obj), linear.own_keys());
            prop_assert_eq!(realm.object_keys(obj), linear.own_enumerable_keys());
            prop_assert_eq!(realm.own_len(obj), linear.own_len());
            for key in KEYS {
                prop_assert_eq!(
                    realm.get_own_descriptor(obj, key),
                    linear.own(key).cloned(),
                    "descriptor mismatch for {:?}",
                    key
                );
            }
        }
    }

    /// A snapshot-cloned world mutated through an arbitrary sequence stays
    /// template-identical to a fresh-built world mutated the same way —
    /// the invariant that makes the per-visit world cache undetectable.
    #[test]
    fn snapshot_clone_is_template_identical_to_fresh_build(
        ops in vec((0u8..4, 0u8..8), 0..20),
    ) {
        let mut fresh = build_firefox_world(BrowserFlavor::WebDriverFirefox);
        let pristine = build_firefox_world(BrowserFlavor::WebDriverFirefox);
        let mut stamped = pristine.clone();
        let mut linear = LinearObject::new();
        let mut linear_shadow = LinearObject::new();

        for (step, (kind, key_idx)) in ops.iter().enumerate() {
            let key = KEYS[*key_idx as usize];
            let op = decode(*kind);
            let nav_a = fresh.navigator;
            let nav_b = stamped.navigator;
            apply(&mut fresh.realm, nav_a, &mut linear, step, op, key);
            apply(&mut stamped.realm, nav_b, &mut linear_shadow, step, op, key);
        }

        // The navigator's own-key census agrees with the linear model...
        prop_assert_eq!(
            fresh.realm.object_keys(fresh.navigator),
            linear.own_enumerable_keys()
        );
        // ...and the full template attack sees no difference at all.
        let ta = Template::capture(&mut fresh.realm, fresh.window, "window", 3);
        let tb = Template::capture(&mut stamped.realm, stamped.window, "window", 3);
        let diff = ta.diff(&tb);
        prop_assert!(diff.is_empty(), "snapshot clone diverged: {:?}", diff);
    }
}

/// The pristine-world sanity anchor: an untouched clone diffs empty against
/// an untouched fresh build for every flavor.
#[test]
fn untouched_clone_matches_fresh_build_for_all_flavors() {
    for flavor in [
        BrowserFlavor::RegularFirefox,
        BrowserFlavor::WebDriverFirefox,
        BrowserFlavor::HeadlessFirefox,
    ] {
        let mut fresh = build_firefox_world(flavor);
        let mut cloned = build_firefox_world(flavor).clone();
        let ta = Template::capture(&mut fresh.realm, fresh.window, "window", 3);
        let tb = Template::capture(&mut cloned.realm, cloned.window, "window", 3);
        assert!(ta.diff(&tb).is_empty(), "{flavor:?} clone diverged");
    }
}
