#!/usr/bin/env bash
# Full verification gate: build, tests, lints, formatting.
# Run from the repository root (or any subdirectory; cargo finds the root).
set -euo pipefail

cd "$(dirname "$0")/.."

echo "==> cargo build --release"
cargo build --release --workspace

echo "==> cargo test -q"
cargo test -q --workspace

echo "==> hlisa-lint (workspace determinism + detectability gate + draw ledger)"
cargo run -q -p hlisa-lint --release -- --ledger-check

echo "==> bench_campaign --smoke (throughput harness sanity run)"
cargo run -q -p hlisa-bench --release --bin bench_campaign -- --smoke --out BENCH_campaign.smoke.json

echo "==> bench_campaign --chaos --smoke (fault plane: rate-0 identity + 5%-fault run)"
cargo run -q -p hlisa-bench --release --bin bench_campaign -- --chaos --smoke --out BENCH_chaos.smoke.json

echo "==> bench_interaction --smoke (interaction fast-path sanity run)"
cargo run -q -p hlisa-bench --release --bin bench_interaction -- --smoke --out BENCH_interaction.smoke.json

echo "==> bench_web --smoke (layered page-model sanity run)"
cargo run -q -p hlisa-bench --release --bin bench_web -- --smoke --out BENCH_web.smoke.json

echo "==> bench_lint --smoke (lint-throughput sanity run)"
cargo run -q -p hlisa-bench --release --bin bench_lint -- --smoke --out BENCH_lint.smoke.json

echo "==> bench_parallel --smoke (core-scaling sanity run: lazy shards + claiming workers)"
cargo run -q -p hlisa-bench --release --bin bench_parallel -- --smoke --out BENCH_parallel.smoke.json

echo "==> bench_reliability --smoke (measurement-loss drift curve + strengthened-mode identity)"
cargo run -q -p hlisa-bench --release --bin bench_reliability -- --smoke --out BENCH_reliability.smoke.json

echo "==> perf-regression guard (fresh smoke speedups vs committed baselines)"
# campaign's end-to-end row only reaches its full speedup at full-run
# scale (world-cache amortisation), so it is exempted explicitly.
scripts/perf_guard.sh BENCH_campaign.smoke.json:campaign BENCH_interaction.smoke.json BENCH_web.smoke.json

echo "==> cargo clippy --workspace -- -D warnings"
cargo clippy --workspace -- -D warnings

echo "==> cargo fmt --check"
cargo fmt --check

echo "verify: all gates passed"
