#!/usr/bin/env bash
# Perf-regression guard: compares the "speedup" field of every section of
# a freshly emitted smoke bench JSON against the committed full-run
# baseline (`BENCH_foo.json` for `BENCH_foo.smoke.json`) and fails on a
# >30% relative drop.
#
# Two accommodations keep the short smoke runs honest against full-run
# baselines:
#
#   * Large ratios are unstable between sizings: sections whose optimized
#     side times mostly timer overhead (hundreds/thousands ×) and sections
#     whose baseline cost is cache-scale-dependent (linear scans) swing
#     far more than 30% between smoke and full runs while the optimization
#     is plainly intact. Both sides are clamped to CLAMP before comparing:
#     a section at ≥ CLAMP× on both sides passes, while a real regression
#     — an optimization collapsing back toward its ×1 baseline — still
#     crashes through the clamp and trips the 30% rule.
#   * Sections whose speedup is *scale-dependent* (only reaching its
#     full-run value at full-run sizes) can be skipped explicitly with a
#     `FILE:section[,section]` argument, keeping the exemption visible at
#     the call site instead of hidden in a widened tolerance.
#
# Usage: scripts/perf_guard.sh BENCH_foo.smoke.json[:skip1,skip2] [...]
set -euo pipefail

cd "$(dirname "$0")/.."

CLAMP=30
FAIL=0

# Sections are one-line flat objects: `"name": {..., "speedup": N}`.
# Emits `name N` per section; the key must be exactly "speedup" (this
# deliberately excludes e.g. the scaling sweep's "speedup_vs_1", which
# depends on the machine's core count, not on code).
extract() {
    grep -oE '"[a-z_]+": \{[^{}]*"speedup": [0-9.eE+-]+' "$1" \
        | sed -E 's/^"([a-z_]+)": \{[^{}]*"speedup": ([0-9.eE+-]+)$/\1 \2/'
}

for arg in "$@"; do
    fresh=${arg%%:*}
    skips=""
    [ "$arg" != "$fresh" ] && skips=${arg#*:}
    ref=${fresh%.smoke.json}.json
    if [ ! -f "$fresh" ]; then
        echo "perf-guard: $fresh: fresh smoke run missing" >&2
        FAIL=1
        continue
    fi
    if [ ! -f "$ref" ]; then
        echo "perf-guard: $ref: no committed baseline, skipping"
        continue
    fi
    out=$({
        extract "$ref" | sed 's/^/ref /'
        extract "$fresh" | sed 's/^/new /'
    } | awk -v clamp="$CLAMP" -v file="$fresh" -v skips="$skips" '
        BEGIN { split(skips, sk, ","); for (i in sk) skip[sk[i]] = 1 }
        $1 == "ref" { ref[$2] = $3; order[n++] = $2 }
        $1 == "new" { new[$2] = $3 }
        END {
            status = 0
            for (i = 0; i < n; i++) {
                s = order[i]
                if (s in skip) {
                    printf "perf-guard: skip %s/%s (scale-dependent at smoke size)\n", file, s
                    continue
                }
                if (!(s in new)) {
                    printf "perf-guard: FAIL %s/%s: section missing from fresh run\n", file, s
                    status = 1
                    continue
                }
                r = ref[s] + 0; f = new[s] + 0
                rc = r > clamp ? clamp : r
                fc = f > clamp ? clamp : f
                if (fc < 0.7 * rc) {
                    printf "perf-guard: FAIL %s/%s: speedup %.3f -> %.3f (>30%% drop)\n", file, s, r, f
                    status = 1
                } else {
                    printf "perf-guard: ok   %s/%s: speedup %.3f -> %.3f\n", file, s, r, f
                }
            }
            exit status
        }') || FAIL=1
    printf '%s\n' "$out"
done

if [ "$FAIL" -ne 0 ]; then
    echo "perf-guard: FAILED (speedup dropped >30% vs committed baseline)" >&2
    exit 1
fi
echo "perf-guard: all guarded sections within 30% of committed baselines"
