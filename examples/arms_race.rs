//! Arms race: run the §4.2 simulator × detector tournament and print the
//! detection matrix (the measured counterpart of Fig. 3).
//!
//! Run with: `cargo run --example arms_race`

use hlisa_armsrace::{run_tournament, TournamentConfig};
use hlisa_detect::DetectorLevel;

fn main() {
    let config = TournamentConfig {
        sessions_per_agent: 4,
        ..TournamentConfig::default()
    };
    println!(
        "running {} sessions per simulator against 4 detector levels...\n",
        config.sessions_per_agent
    );
    let result = run_tournament(&config);

    println!(
        "{:<46} {:>5} {:>5} {:>5} {:>5}",
        "Simulator \\ Detector", "L1", "L2", "L3", "L4"
    );
    for sim in &result.simulators {
        print!("{:<46}", truncate(sim, 45));
        for level in DetectorLevel::ALL {
            print!(" {:>5.2}", result.rate(sim, level).unwrap());
        }
        println!();
    }
    println!("\nCells are detection rates. The staircase is Fig. 3's narrative:");
    println!("each simulator escalation defeats one more detector level, and only");
    println!("impersonating the enrolled user's own profile defeats level 4.\n");

    let rounds = hlisa_armsrace::run_escalation(&config);
    println!("{}", hlisa_armsrace::escalation::report(&rounds));
}

fn truncate(s: &str, n: usize) -> String {
    if s.len() <= n {
        s.to_string()
    } else {
        format!("{}…", &s[..n - 1])
    }
}
