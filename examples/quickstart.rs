//! Quickstart — the paper's Listing 2, end to end.
//!
//! Creates a WebDriver-automated browser session, hides its fingerprint
//! with the spoofing extension, then drives a form interaction through
//! `HlisaActionChains` and shows what the page observed.
//!
//! Run with: `cargo run --example quickstart`

use hlisa::HlisaActionChains;
use hlisa_browser::dom::standard_test_page;
use hlisa_browser::{Browser, BrowserConfig};
use hlisa_spoof::SpoofingExtension;
use hlisa_webdriver::{By, Session};

fn main() {
    // A Selenium/OpenWPM-style automated Firefox.
    let browser = Browser::open(
        BrowserConfig::webdriver(),
        standard_test_page("https://example.test/", 3_000.0),
    );
    let mut driver = Session::new(browser);

    // Step 0 — hide the fingerprint (§3): without this, the page can tell
    // it is talking to a bot before any interaction happens.
    println!(
        "navigator.webdriver before spoofing: {:?}",
        driver.execute_script_get("navigator.webdriver").unwrap()
    );
    SpoofingExtension::paper_default()
        .inject(&mut driver.browser.world)
        .expect("extension injects");
    println!(
        "navigator.webdriver after spoofing:  {:?}",
        driver.execute_script_get("navigator.webdriver").unwrap()
    );

    // Step 1 — Listing 2: two changed lines turn Selenium code into HLISA.
    let element = driver
        .find_element(By::Id("text_area".into()))
        .expect("element exists");
    let ac = HlisaActionChains::new(7)
        .move_to_element(element)
        .send_keys_to_element(element, "Text..");
    ac.perform(&mut driver).expect("chain performs");

    // Step 2 — what did the page observe?
    let rec = &driver.browser.recorder;
    println!();
    println!("typed text:        {:?}", driver.element_text(element));
    println!("events dispatched: {}", rec.events().len());
    println!("cursor samples:    {}", rec.cursor_trace().len());
    let clicks = rec.clicks();
    println!(
        "click dwell:       {:.0} ms (humans: 20-250 ms; Selenium: 0 ms)",
        clicks[0].dwell_ms
    );
    let strokes = rec.keystrokes();
    let mean_dwell: f64 = strokes.iter().map(|k| k.dwell_ms).sum::<f64>() / strokes.len() as f64;
    println!("mean key dwell:    {mean_dwell:.0} ms");
    println!(
        "elapsed (simulated): {:.1} s",
        driver.browser.now_ms() / 1000.0
    );
}
