//! Crawl study: a miniature §3.2 field experiment.
//!
//! Crawls a 300-site synthetic Tranco sample with two machines — stock
//! OpenWPM and OpenWPM with the spoofing extension — and reports the
//! screenshot evaluation and first-party error statistics.
//!
//! Run with: `cargo run --example crawl_study`

use hlisa_crawler::{analyze_http, run_campaign, screenshot_table, CampaignConfig};
use hlisa_web::{judge_traversal, traverse, PageGraph, PopulationConfig, TraversalStrategy};

fn main() {
    let config = CampaignConfig {
        seed: 2021,
        population: PopulationConfig {
            n_sites: 300,
            unreachable_sites: 24,
            ..PopulationConfig::default()
        },
        visits_per_site: 8,
        instances: 8,
        world_cache: true,
        plan_interactions: false,
    };
    println!(
        "crawling {} sites x {} visits with {} parallel instances per machine...\n",
        config.population.n_sites, config.visits_per_site, config.instances
    );
    let campaign = run_campaign(&config);

    let table = screenshot_table(&campaign);
    println!("Screenshot evaluation (sites with outcome, machine 1 / machine 2):");
    for row in &table.rows {
        println!(
            "  {:<26} {:>4} / {:<4}   (visits {:>4} / {:<4})",
            row.label, row.sites.0, row.sites.1, row.visits.0, row.visits.1
        );
    }

    let http = analyze_http(&campaign);
    println!("\nFirst-party error responses (code: OpenWPM / +extension):");
    for code in http.frequent_codes(&http.first_party, 20, true) {
        let (a, b) = http.first_party[&code];
        println!("  {code}: {a} / {b}");
    }
    if let Some(w) = &http.wilcoxon_first_party {
        println!(
            "\nWilcoxon matched-pairs on per-site first-party errors: p = {:.4} ({})",
            w.p_value,
            if w.significant_at(0.05) {
                "significant decrease with the extension"
            } else {
                "not significant at this scale"
            }
        );
    }

    // The third detection vector: no interaction API fixes an exhaustive
    // itinerary (§1 — traversal "cannot be solved generically").
    println!("\nTraversal check on a 24-page site:");
    let graph = PageGraph::generate(99, 24);
    let crawl = traverse(
        &graph,
        TraversalStrategy::ExhaustiveBfs { dwell_ms: 1_500.0 },
        1,
    );
    let v = judge_traversal(&graph, &crawl);
    println!(
        "  exhaustive crawler: coverage {:.0}%, flagged = {} ({})",
        crawl.coverage(&graph) * 100.0,
        v.is_bot,
        v.signals.join("; "),
    );
    let human = traverse(&graph, TraversalStrategy::HumanBrowse, 1);
    let vh = judge_traversal(&graph, &human);
    println!(
        "  human browse:       coverage {:.0}%, flagged = {}",
        human.coverage(&graph) * 100.0,
        vh.is_bot,
    );
}
