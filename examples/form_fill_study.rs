//! Form-fill study: the same task driven by Selenium, the naive improver,
//! and HLISA — judged by a behavioural bot detector.
//!
//! This is the workload the paper's introduction motivates: a measurement
//! study must interact with pages (fill a search box, click a button)
//! without the page classifying the visit as automated and serving
//! different content.
//!
//! Run with: `cargo run --example form_fill_study`

use hlisa::{HlisaActionChains, NaiveActionChains};
use hlisa_browser::dom::standard_test_page;
use hlisa_browser::{Browser, BrowserConfig};
use hlisa_detect::{HumanReference, InteractionDetector};
use hlisa_webdriver::{By, SeleniumActionChains, Session};

const QUERY: &str = "Weather in Nijmegen, today?";

fn session() -> Session {
    Session::new(Browser::open(
        BrowserConfig::webdriver(),
        standard_test_page("https://study.test/form", 4_000.0),
    ))
}

fn main() {
    println!("building the detector's human reference model (level 2)...");
    let reference = HumanReference::generate(42, 3);
    let l1 = InteractionDetector::level1();
    let l2 = InteractionDetector::level2(reference);

    for agent in ["selenium", "naive", "hlisa"] {
        let mut driver = session();
        let input = driver.find_element(By::Id("text_area".into())).unwrap();
        let submit = driver.find_element(By::Id("submit".into())).unwrap();

        match agent {
            "selenium" => SeleniumActionChains::new()
                .send_keys_to_element(input, QUERY)
                .click(Some(submit))
                .perform(&mut driver)
                .unwrap(),
            "naive" => NaiveActionChains::new(1)
                .send_keys_to_element(input, QUERY)
                .click(Some(submit))
                .perform(&mut driver)
                .unwrap(),
            _ => HlisaActionChains::new(1)
                .send_keys_to_element(input, QUERY)
                .pause(0.4)
                .click(Some(submit))
                .perform(&mut driver)
                .unwrap(),
        }

        let v1 = l1.judge(&driver.browser.recorder, driver.browser.document());
        let v2 = l2.judge(&driver.browser.recorder, driver.browser.document());
        println!();
        println!("=== {agent} ===");
        println!("  form content: {:?}", driver.element_text(input));
        println!(
            "  task time:    {:.1} s simulated",
            driver.browser.now_ms() / 1000.0
        );
        println!(
            "  L1 detector (artificial behaviour): {}",
            verdict(
                &v1.signals.iter().map(|s| s.name).collect::<Vec<_>>(),
                v1.is_bot
            )
        );
        println!(
            "  L2 detector (deviation from human): {}",
            verdict(
                &v2.signals.iter().map(|s| s.name).collect::<Vec<_>>(),
                v2.is_bot
            )
        );
    }
    println!();
    println!("Expected shape: Selenium fails L1; naive passes L1 but fails L2; HLISA passes both.");
}

fn verdict(signals: &[&str], is_bot: bool) -> String {
    if is_bot {
        format!("BOT ({})", signals.join(", "))
    } else {
        "passes".to_string()
    }
}
