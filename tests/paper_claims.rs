//! Integration tests for the paper's headline claims, each phrased as the
//! paper states it.

use hlisa::{HlisaActionChains, NaiveActionChains};
use hlisa_browser::dom::standard_test_page;
use hlisa_browser::{Browser, BrowserConfig};
use hlisa_crawler::{analyze_http, run_campaign, screenshot_table, CampaignConfig};
use hlisa_detect::reference::TYPING_TASK_TEXT;
use hlisa_detect::{HumanReference, InteractionDetector};
use hlisa_web::PopulationConfig;
use hlisa_webdriver::{By, SeleniumActionChains, Session};

fn session() -> Session {
    Session::new(Browser::open(
        BrowserConfig::webdriver(),
        standard_test_page("https://claims.test/", 30_000.0),
    ))
}

fn full_task(agent: &str, seed: u64) -> Session {
    let mut s = session();
    let input = s.find_element(By::Id("text_area".into())).unwrap();
    let button = s.find_element(By::Id("submit".into())).unwrap();
    match agent {
        "selenium" => SeleniumActionChains::new()
            .send_keys_to_element(input, TYPING_TASK_TEXT)
            .click(Some(button))
            .perform(&mut s)
            .unwrap(),
        "naive" => NaiveActionChains::new(seed)
            .send_keys_to_element(input, TYPING_TASK_TEXT)
            .click(Some(button))
            .perform(&mut s)
            .unwrap(),
        _ => HlisaActionChains::new(seed)
            .send_keys_to_element(input, TYPING_TASK_TEXT)
            .pause(0.3)
            .click(Some(button))
            .scroll_by(0.0, 1_500.0)
            .perform(&mut s)
            .unwrap(),
    }
    s
}

/// §4.1/§5: "Before HLISA, bot interaction was detectable by its
/// artificial nature" — Selenium fails a level-1 detector; HLISA passes.
#[test]
fn hlisa_evades_artificial_behaviour_detection_where_selenium_fails() {
    let l1 = InteractionDetector::level1();
    let sel = full_task("selenium", 1);
    let v = l1.judge(&sel.browser.recorder, sel.browser.document());
    assert!(v.is_bot, "Selenium must be flagged by L1");

    let hl = full_task("hlisa", 2);
    let v = l1.judge(&hl.browser.recorder, hl.browser.document());
    assert!(!v.is_bot, "HLISA flagged by L1: {:?}", v.signals);
}

/// §5: "To detect HLISA, an interaction-based detector needs to compare
/// the observed interaction to a model of human behaviour" — the naive
/// improver falls to that comparison, HLISA does not.
#[test]
fn hlisa_survives_the_human_model_comparison_naive_does_not() {
    let reference = HumanReference::generate(77, 3);
    let l2 = InteractionDetector::level2(reference);

    let naive = full_task("naive", 2);
    let v = l2.judge(&naive.browser.recorder, naive.browser.document());
    assert!(v.is_bot, "naive must be flagged by L2");

    let hl = full_task("hlisa", 2);
    let v = l2.judge(&hl.browser.recorder, hl.browser.document());
    assert!(!v.is_bot, "HLISA flagged by L2: {:?}", v.signals);
}

/// §5: "fingerprint hiding — in the sense that first-party bot detection
/// can be mostly prevented — is effective", and "spoofing properties in
/// JavaScript can lead to website breakage".
#[test]
fn field_study_shape_holds_at_reduced_scale() {
    let campaign = run_campaign(&CampaignConfig {
        seed: 404,
        population: PopulationConfig {
            n_sites: 300,
            unreachable_sites: 24,
            ..PopulationConfig::default()
        },
        visits_per_site: 8,
        instances: 8,
        world_cache: true,
        plan_interactions: false,
    });
    let t = screenshot_table(&campaign);
    let blocking = t.row("blocking/CAPTCHAs").unwrap();
    assert!(
        blocking.sites.0 >= 6,
        "blockers exist: {}",
        blocking.sites.0
    );
    assert!(
        blocking.sites.1 <= 2,
        "spoofing must mostly prevent blocking, saw {}",
        blocking.sites.1
    );

    // Breakage appears only on the extension machine.
    let frozen = t.row("frozen video element(s)").unwrap();
    let deformed_visits: usize = campaign
        .spoofed
        .sites
        .iter()
        .flat_map(|s| &s.outcomes)
        .filter(|o| o.visual == hlisa_web::VisualOutcome::DeformedLayout)
        .count();
    assert!(
        deformed_visits > 0 || frozen.visits.1 > 0,
        "breakage must appear"
    );

    // First-party errors decrease significantly (403/503-driven).
    let http = analyze_http(&campaign);
    let w = http.wilcoxon_first_party.expect("pairs differ");
    assert!(w.significant_at(0.05), "p = {}", w.p_value);
}

/// Listing 2: integrating HLISA changes two lines relative to Selenium and
/// the rest of the driving code keeps working.
#[test]
fn listing2_two_line_migration() {
    // Selenium version.
    let mut s1 = session();
    let el = s1.find_element(By::Id("text_area".into())).unwrap();
    SeleniumActionChains::new()
        .move_to_element(el)
        .send_keys_to_element(el, "Text..")
        .perform(&mut s1)
        .unwrap();

    // HLISA version — same call names, same order.
    let mut s2 = session();
    let el = s2.find_element(By::Id("text_area".into())).unwrap();
    HlisaActionChains::new(7)
        .move_to_element(el)
        .send_keys_to_element(el, "Text..")
        .perform(&mut s2)
        .unwrap();

    assert_eq!(s1.element_text(el), "Text..");
    assert_eq!(s2.element_text(el), "Text..");
    // And the HLISA run is the slower, human-paced one.
    assert!(s2.browser.now_ms() > s1.browser.now_ms() * 3.0);
}
