//! Property-based invariants of the substrates (JS object model, browser
//! event pipeline) that every experiment silently relies on.

use hlisa_browser::dom::{Document, ElementBuilder};
use hlisa_browser::events::MouseButton;
use hlisa_browser::{Browser, BrowserConfig, EventKind, RawInput, Rect};
use hlisa_jsom::object::PropertyDescriptor;
use hlisa_jsom::{build_firefox_world, BrowserFlavor, Value};
use proptest::prelude::*;

fn arb_key() -> impl Strategy<Value = String> {
    "[a-z]{1,8}"
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// defineProperty → get round-trips for fresh keys, and repeated
    /// definition keeps the first insertion position.
    #[test]
    fn jsom_define_get_roundtrip(key in arb_key(), n in 1.0f64..1e6) {
        let mut w = build_firefox_world(BrowserFlavor::RegularFirefox);
        let nav = w.navigator;
        w.realm
            .define_property(nav, &key, PropertyDescriptor::plain(Value::Number(n)))
            .unwrap();
        prop_assert_eq!(w.realm.get(nav, &key).unwrap(), Value::Number(n));
        let keys_before = w.realm.object_keys(nav);
        w.realm
            .define_property(nav, &key, PropertyDescriptor::plain(Value::Number(n + 1.0)))
            .unwrap();
        prop_assert_eq!(w.realm.object_keys(nav), keys_before);
    }

    /// for-in never yields duplicates and always contains Object.keys.
    #[test]
    fn jsom_for_in_superset_of_keys(extra in proptest::collection::vec(arb_key(), 0..6)) {
        let mut w = build_firefox_world(BrowserFlavor::WebDriverFirefox);
        let nav = w.navigator;
        for (i, k) in extra.iter().enumerate() {
            let _ = w.realm.define_property(
                nav,
                k,
                PropertyDescriptor::plain(Value::Number(i as f64)),
            );
        }
        let for_in = w.realm.for_in_keys(nav);
        let mut seen = std::collections::HashSet::new();
        for k in &for_in {
            prop_assert!(seen.insert(k.clone()), "duplicate for-in key {k}");
        }
        for k in w.realm.object_keys(nav) {
            prop_assert!(for_in.contains(&k), "Object.keys entry {k} missing from for-in");
        }
    }

    /// A proxy with no overrides is observationally equivalent to its
    /// target for get/keys/has/proto.
    #[test]
    fn jsom_transparent_proxy_equivalence(key in arb_key()) {
        let mut w = build_firefox_world(BrowserFlavor::WebDriverFirefox);
        let nav = w.navigator;
        let proxy = w
            .realm
            .wrap_in_proxy(nav, hlisa_jsom::object::ProxyHandler::default());
        // Non-function values pass through identically.
        for probe in ["webdriver", "userAgent", "platform", key.as_str()] {
            let direct = w.realm.get(nav, probe).unwrap();
            let via = w.realm.get(proxy, probe).unwrap();
            match direct {
                Value::Object(id) if w.realm.obj(id).function.is_some() => {
                    // Functions are re-wrapped — the known detectable cost.
                }
                other => prop_assert_eq!(via, other),
            }
        }
        prop_assert_eq!(w.realm.object_keys(proxy), w.realm.object_keys(nav));
        prop_assert_eq!(w.realm.has_own(proxy, &key), w.realm.has_own(nav, &key));
        prop_assert_eq!(w.realm.get_prototype_of(proxy), w.realm.get_prototype_of(nav));
    }

    /// Event timestamps are non-decreasing whatever raw input arrives.
    #[test]
    fn browser_event_timestamps_monotone(
        steps in proptest::collection::vec((0.0f64..80.0, 0u8..6), 1..60),
    ) {
        let mut doc = Document::new("https://prop.test/", 1280.0, 4_000.0);
        ElementBuilder::new("body", Rect::new(0.0, 0.0, 1280.0, 4_000.0)).insert(&mut doc);
        let mut b = Browser::open(BrowserConfig::regular(), doc);
        for (dt, kind) in steps {
            b.advance(dt);
            match kind {
                0 => b.input(RawInput::MouseMove { x: dt * 10.0, y: dt * 5.0 }),
                1 => b.input(RawInput::MouseDown { button: MouseButton::Left }),
                2 => b.input(RawInput::MouseUp { button: MouseButton::Left }),
                3 => b.input(RawInput::KeyDown { key: "a".into() }),
                4 => b.input(RawInput::KeyUp { key: "a".into() }),
                _ => b.input(RawInput::WheelTick { direction: 1 }),
            }
        }
        let evs = b.recorder.events();
        for w in evs.windows(2) {
            prop_assert!(w[1].timestamp_ms >= w[0].timestamp_ms);
        }
        // Clicks never exceed completed press/release pairs.
        let downs = b.recorder.of_kind(EventKind::MouseDown).len();
        let clicks = b.recorder.of_kind(EventKind::Click).len();
        prop_assert!(clicks <= downs);
    }

    /// Scroll offset never escapes [0, max] under arbitrary wheel noise.
    #[test]
    fn browser_scroll_bounded(ticks in proptest::collection::vec(-3i32..=3, 0..200)) {
        let mut doc = Document::new("https://prop.test/", 1280.0, 2_500.0);
        ElementBuilder::new("body", Rect::new(0.0, 0.0, 1280.0, 2_500.0)).insert(&mut doc);
        let mut b = Browser::open(BrowserConfig::regular(), doc);
        for t in ticks {
            if t != 0 {
                b.input_after(20.0, RawInput::WheelTick { direction: t });
            }
        }
        let y = b.viewport.scroll_y();
        prop_assert!(y >= 0.0);
        prop_assert!(y <= b.viewport.max_scroll_y());
    }

    /// Typed printable keys always append to the focused element, and
    /// Backspace always removes exactly one character.
    #[test]
    fn browser_text_editing_consistent(keys in proptest::collection::vec(0u8..27, 0..40)) {
        let mut doc = Document::new("https://prop.test/", 1280.0, 1_000.0);
        ElementBuilder::new("body", Rect::new(0.0, 0.0, 1280.0, 1_000.0)).insert(&mut doc);
        let input = ElementBuilder::new("input", Rect::new(100.0, 100.0, 300.0, 30.0))
            .id("in")
            .focusable()
            .insert(&mut doc);
        let mut b = Browser::open(BrowserConfig::regular(), doc);
        // Focus by clicking.
        let c = b.element_center(input);
        b.input_after(30.0, RawInput::MouseMove { x: c.x, y: c.y });
        b.input_after(20.0, RawInput::MouseDown { button: MouseButton::Left });
        b.input_after(60.0, RawInput::MouseUp { button: MouseButton::Left });

        let mut model = String::new();
        for k in keys {
            let key = if k == 26 {
                "Backspace".to_string()
            } else {
                char::from(b'a' + k).to_string()
            };
            b.input_after(40.0, RawInput::KeyDown { key: key.clone() });
            b.input_after(40.0, RawInput::KeyUp { key: key.clone() });
            if key == "Backspace" {
                model.pop();
            } else {
                model.push_str(&key);
            }
        }
        prop_assert_eq!(&b.document().element(input).text, &model);
    }
}
