//! Integration tests for the SimContext layer: observer fan-out, seeded
//! determinism, and schedule-independence of the campaign runner.

use hlisa::HlisaActionChains;
use hlisa_browser::dom::standard_test_page;
use hlisa_browser::{Browser, BrowserConfig};
use hlisa_crawler::{run_machine, run_machine_lazy, run_machine_sharded, CampaignConfig};
use hlisa_detect::LiveInteractionMonitor;
use hlisa_sim::SimContext;
use hlisa_web::visit::DetectorRuntime;
use hlisa_web::{generate_population, simulate_visit, ClientKind, PopulationConfig};
use hlisa_webdriver::{By, Session};
use proptest::prelude::*;

/// The recorder and a detect-crate consumer both run through the Observer
/// protocol, and their event counts surface as browser metrics.
#[test]
fn live_monitor_subscribes_to_the_browser_and_feeds_metrics() {
    let mut browser = Browser::open(
        BrowserConfig::webdriver(),
        standard_test_page("https://observer.test/", 10_000.0),
    );
    let (monitor, handle) = LiveInteractionMonitor::new();
    browser.attach_observer(Box::new(monitor));
    let mut s = Session::new(browser);

    let el = s.find_element(By::Id("submit".into())).unwrap();
    HlisaActionChains::new(3)
        .move_to_element(el)
        .click(None)
        .perform(&mut s)
        .unwrap();

    // HLISA interaction passes the streaming level-1 cues.
    assert!(
        !handle.is_bot(),
        "counters: {:?}",
        handle.counters().entries()
    );

    // The same numbers are visible through the browser's metrics, merged
    // with the recorder's own counts.
    let metrics = s.browser.metrics();
    let clicks = metrics.get("live.clicks").unwrap();
    assert_eq!(clicks, 1);
    assert!(metrics.get("live.moves").unwrap() > 4);
    assert_eq!(metrics.get("events.click"), Some(clicks));
    assert_eq!(
        metrics.get("live.moves"),
        metrics.get("events.mousemove"),
        "observer and recorder saw different streams"
    );
}

/// Two contexts with the same seed produce identical visit outcome
/// streams; a different seed diverges.
#[test]
fn same_seed_contexts_replay_identical_visit_outcomes() {
    let sites = generate_population(&PopulationConfig {
        n_sites: 30,
        unreachable_sites: 2,
        ..PopulationConfig::default()
    });
    let runtime = DetectorRuntime::new();
    let run = |seed: u64| {
        let mut ctx = SimContext::new(seed);
        sites
            .iter()
            .map(|site| simulate_visit(site, ClientKind::OpenWpm, &runtime, &mut ctx))
            .collect::<Vec<_>>()
    };
    assert_eq!(run(11), run(11), "same seed must replay bit-identically");
    assert_ne!(run(11), run(12), "different seeds must diverge");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// `run_machine` output is independent of the worker count: one
    /// instance and eight produce bit-identical results for any seed.
    #[test]
    fn run_machine_is_independent_of_instances(seed in 0u64..1_000) {
        let base = CampaignConfig {
            seed,
            population: PopulationConfig {
                n_sites: 40,
                unreachable_sites: 3,
                ..PopulationConfig::default()
            },
            visits_per_site: 3,
            instances: 1,
            world_cache: true,
            plan_interactions: false,
        };
        let sites = generate_population(&base.population);
        let serial = run_machine(&base, &sites, ClientKind::OpenWpmSpoofed);
        let wide = CampaignConfig { instances: 8, ..base };
        let parallel = run_machine(&wide, &sites, ClientKind::OpenWpmSpoofed);
        prop_assert_eq!(serial, parallel);
    }

    /// The shard-claiming scheduler is invisible in the output: any
    /// `(instances, shard size)` pair — one giant shard, one site per
    /// shard, ragged tails, more workers than shards — and the lazy
    /// shard-generated population all yield the serial run bit for bit.
    #[test]
    fn run_machine_is_independent_of_shard_granularity_and_laziness(
        seed in 0u64..1_000,
        instances in 1usize..9,
        shard_size in 1usize..64,
    ) {
        let base = CampaignConfig {
            seed,
            population: PopulationConfig {
                n_sites: 40,
                unreachable_sites: 3,
                ..PopulationConfig::default()
            },
            visits_per_site: 3,
            instances: 1,
            world_cache: true,
            plan_interactions: false,
        };
        let sites = generate_population(&base.population);
        let serial = run_machine(&base, &sites, ClientKind::OpenWpmSpoofed);

        let wide = CampaignConfig { instances, ..base };
        let sharded = run_machine_sharded(&wide, &sites, ClientKind::OpenWpmSpoofed, shard_size);
        prop_assert_eq!(&sharded, &serial);

        let shards = hlisa_web::PopulationShards::with_shard_size(&wide.population, shard_size);
        let lazy = run_machine_lazy(&wide, &shards, ClientKind::OpenWpmSpoofed);
        prop_assert_eq!(&lazy, &serial);
        // Laziness held under contention: never more live shards than
        // workers (a worker materialises one shard at a time).
        prop_assert!(shards.peak_resident_shards() <= instances);
    }
}
