//! Property-based tests (proptest) over the public API invariants.

use hlisa::motion::{plan_motion, MotionStyle};
use hlisa::HlisaActionChains;
use hlisa_browser::dom::{Document, ElementBuilder};
use hlisa_browser::{Browser, BrowserConfig, Point, Rect};
use hlisa_human::click::sample_click_point;
use hlisa_human::HumanParams;
use hlisa_sim::SimContext;
use hlisa_stats::wilcoxon::{wilcoxon_signed_rank, Alternative};
use hlisa_stats::TruncatedNormal;
use hlisa_webdriver::{By, Session};
use proptest::prelude::*;

fn arb_rect() -> impl Strategy<Value = Rect> {
    (
        10.0f64..1100.0,
        10.0f64..600.0,
        8.0f64..300.0,
        8.0f64..120.0,
    )
        .prop_map(|(x, y, w, h)| Rect::new(x, y, w, h))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Human click placement never leaves the element, whatever its box.
    #[test]
    fn clicks_stay_inside_any_element(rect in arb_rect(), seed in 0u64..1_000) {
        let params = HumanParams::paper_baseline();
        let mut ctx = SimContext::new(seed);
        for _ in 0..16 {
            let p = sample_click_point(&params, &mut ctx, rect);
            prop_assert!(rect.contains(p), "click {p:?} outside {rect:?}");
        }
    }

    /// Every motion style lands exactly on its target with monotone time.
    #[test]
    fn motion_always_reaches_target(
        fx in 0.0f64..1200.0, fy in 0.0f64..700.0,
        tx in 0.0f64..1200.0, ty in 0.0f64..700.0,
        seed in 0u64..1_000,
    ) {
        let params = HumanParams::paper_baseline();
        let mut ctx = SimContext::new(seed);
        for style in [MotionStyle::hlisa(), MotionStyle::naive_bezier()] {
            let t = plan_motion(style, &params, &mut ctx,
                                Point::new(fx, fy), Point::new(tx, ty), 40.0);
            let last = t.last().unwrap();
            prop_assert_eq!((last.x, last.y), (tx, ty));
            for w in t.windows(2) {
                prop_assert!(w[1].t_ms >= w[0].t_ms);
            }
        }
    }

    /// Truncated normals respect their bounds for arbitrary parameters.
    #[test]
    fn truncated_normal_bounds(
        mean in -500.0f64..500.0,
        sd in 0.0f64..200.0,
        lo in -100.0f64..50.0,
        width in 1.0f64..400.0,
        seed in 0u64..1_000,
    ) {
        let d = TruncatedNormal::new(mean, sd, lo, lo + width);
        let mut ctx = SimContext::new(seed);
        let rng = &mut *ctx.stream("visit");
        for _ in 0..32 {
            let x = d.sample(rng);
            prop_assert!(x >= lo && x <= lo + width);
        }
    }

    /// Wilcoxon p-values are probabilities for any paired data.
    #[test]
    fn wilcoxon_p_is_probability(
        xs in proptest::collection::vec(-100.0f64..100.0, 2..40),
    ) {
        let ys: Vec<f64> = xs.iter().map(|x| x * 0.9 + 1.0).collect();
        for alt in [Alternative::TwoSided, Alternative::Less, Alternative::Greater] {
            if let Some(r) = wilcoxon_signed_rank(&xs, &ys, alt) {
                prop_assert!((0.0..=1.0).contains(&r.p_value), "p = {}", r.p_value);
            }
        }
    }

    /// HLISA typing reproduces exactly the US-QWERTY-typable characters of
    /// its input, in order, for arbitrary ASCII strings.
    #[test]
    fn typing_is_faithful(text in "[ -~]{0,24}", seed in 0u64..500) {
        let mut doc = Document::new("https://prop.test/", 1280.0, 1000.0);
        ElementBuilder::new("body", Rect::new(0.0, 0.0, 1280.0, 1000.0)).insert(&mut doc);
        ElementBuilder::new("input", Rect::new(300.0, 300.0, 400.0, 30.0))
            .id("in")
            .focusable()
            .insert(&mut doc);
        let mut s = Session::new(Browser::open(BrowserConfig::webdriver(), doc));
        let el = s.find_element(By::Id("in".into())).unwrap();
        HlisaActionChains::new(seed)
            .send_keys_to_element(el, &text)
            .perform(&mut s)
            .unwrap();
        let expected: String = text
            .chars()
            .filter(|c| hlisa_human::keyboard::us_qwerty(*c).is_some())
            .collect();
        prop_assert_eq!(s.element_text(el), expected);
    }

    /// scroll_to never leaves the document bounds.
    #[test]
    fn scroll_to_clamps(y in -2_000.0f64..50_000.0, seed in 0u64..200) {
        let mut doc = Document::new("https://prop.test/", 1280.0, 10_000.0);
        ElementBuilder::new("body", Rect::new(0.0, 0.0, 1280.0, 10_000.0)).insert(&mut doc);
        let mut s = Session::new(Browser::open(BrowserConfig::webdriver(), doc));
        HlisaActionChains::new(seed)
            .scroll_to(0.0, y)
            .perform(&mut s)
            .unwrap();
        let got = s.browser.viewport.scroll_y();
        prop_assert!(got >= 0.0);
        prop_assert!(got <= s.browser.viewport.max_scroll_y());
    }
}
