//! Chaos-mode invariants: the fault plane must never perturb what it does
//! not touch.
//!
//! Two properties pin the PR's key guarantee (ISSUE 4): (a) with every
//! fault rate at zero the chaos runner is bit-identical to the legacy
//! campaign for *arbitrary* seeds and instance counts, and (b) retries
//! consume RNG from the `"fault"` stream only, so any visit that ends in
//! success — first try or after recovery — records exactly the outcome
//! the faultless campaign records at the same `(machine, site, visit)`.

use hlisa_crawler::{
    run_campaign, run_chaos_campaign, run_chaos_campaign_sharded, CampaignConfig, ChaosConfig,
};
use hlisa_web::PopulationConfig;
use proptest::prelude::*;

fn config(seed: u64, instances: usize) -> CampaignConfig {
    CampaignConfig {
        seed,
        population: PopulationConfig {
            n_sites: 24,
            unreachable_sites: 2,
            webdriver_visible: (1, 1, 0, 0),
            template_visible: (1, 0, 0),
            silent_http: (1, 1),
            breakage_sites: 1,
            ..PopulationConfig::default()
        },
        visits_per_site: 3,
        instances,
        world_cache: true,
        plan_interactions: false,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    #[test]
    fn rate_zero_chaos_is_bit_identical_for_any_seed_and_schedule(
        seed in 0u64..1_000_000,
        instances in 1usize..5,
    ) {
        let cfg = config(seed, instances);
        let legacy = run_campaign(&cfg);
        let chaos = run_chaos_campaign(&cfg, &ChaosConfig::off());
        prop_assert_eq!(&chaos.campaign, &legacy);
        // And the no-op plan schedules nothing.
        prop_assert_eq!(chaos.counters().get("fault.injected"), None);
        prop_assert_eq!(chaos.counters().get("retry.scheduled"), None);
    }

    /// Chaos mode under the shard-claiming scheduler: any `(instances,
    /// shard size)` pair reproduces the serial faulted run exactly —
    /// outcomes, recovery telemetry, and merged counters — even though
    /// which worker claims which shard is scheduling-dependent.
    #[test]
    fn faulted_chaos_is_independent_of_shard_claiming(
        seed in 0u64..1_000_000,
        instances in 2usize..6,
        shard_size in 1usize..16,
    ) {
        let chaos = ChaosConfig::uniform(0.10);
        let serial = run_chaos_campaign(&config(seed, 1), &chaos);
        let sharded = run_chaos_campaign_sharded(&config(seed, instances), &chaos, shard_size);
        prop_assert_eq!(&sharded, &serial);
        prop_assert_eq!(sharded.counters(), serial.counters());
    }

    #[test]
    fn retries_draw_from_the_fault_stream_only(
        seed in 0u64..1_000_000,
        instances in 1usize..5,
    ) {
        let cfg = config(seed, instances);
        let legacy = run_campaign(&cfg);
        let chaos = run_chaos_campaign(&cfg, &ChaosConfig::uniform(0.15));
        for (chaos_run, legacy_run) in [
            (&chaos.campaign.openwpm, &legacy.openwpm),
            (&chaos.campaign.spoofed, &legacy.spoofed),
        ] {
            for (cs, ls) in chaos_run.sites.iter().zip(&legacy_run.sites) {
                for (v, (co, lo)) in cs.outcomes.iter().zip(&ls.outcomes).enumerate() {
                    if co.successful {
                        // A successful visit — including one recovered
                        // after retries — replays the legacy draw
                        // sequence exactly: interaction streams are
                        // unperturbed by injection and backoff.
                        prop_assert_eq!(
                            co, lo,
                            "{} visit {}: interaction stream perturbed", cs.domain, v
                        );
                    }
                }
            }
        }
    }
}

#[test]
fn faulted_runs_replay_identically() {
    // The fixed-seed acceptance check in integration form: outcomes and
    // every fault/retry/breaker counter must match across two runs.
    let cfg = config(0xC4A05, 3);
    let chaos = ChaosConfig::uniform(0.05);
    let a = run_chaos_campaign(&cfg, &chaos);
    let b = run_chaos_campaign(&cfg, &chaos);
    assert_eq!(a, b);
    assert_eq!(a.counters(), b.counters());
}
