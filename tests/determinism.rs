//! Reproducibility guarantees: every experiment is a pure function of its
//! seed, independent of thread scheduling.

use hlisa_armsrace::{run_tournament, TournamentConfig};
use hlisa_crawler::{run_campaign, CampaignConfig};
use hlisa_web::PopulationConfig;

fn small_campaign(instances: usize) -> CampaignConfig {
    CampaignConfig {
        seed: 99,
        population: PopulationConfig {
            n_sites: 80,
            unreachable_sites: 6,
            ..PopulationConfig::default()
        },
        visits_per_site: 4,
        instances,
        world_cache: true,
        plan_interactions: false,
    }
}

#[test]
fn campaign_is_schedule_independent() {
    let serial = run_campaign(&small_campaign(1));
    let parallel = run_campaign(&small_campaign(8));
    assert_eq!(serial, parallel);
}

#[test]
fn campaign_changes_with_seed() {
    let a = run_campaign(&small_campaign(4));
    let mut cfg = small_campaign(4);
    cfg.seed = 100;
    let b = run_campaign(&cfg);
    assert_ne!(a, b);
}

#[test]
fn tournament_is_reproducible() {
    let cfg = TournamentConfig {
        seed: 5,
        sessions_per_agent: 2,
        reference_sessions: 2,
        enrollment_sessions: 2,
    };
    assert_eq!(run_tournament(&cfg), run_tournament(&cfg));
}
