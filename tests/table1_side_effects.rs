//! Cross-crate integration test: the §3.1 spoofing experiment reproduces
//! Table 1 exactly, and the template attack explains it.

use hlisa_detect::{probe_side_effects, scan_fingerprint, SideEffect, TemplateAttackDetector};
use hlisa_jsom::{build_firefox_world, BrowserFlavor, Value};
use hlisa_spoof::SpoofMethod;

fn spoofed_world(method: SpoofMethod) -> hlisa_jsom::World {
    let mut w = build_firefox_world(BrowserFlavor::WebDriverFirefox);
    method
        .apply(&mut w, "webdriver", Value::Bool(false))
        .expect("spoofing applies");
    w
}

#[test]
fn table1_matrix_matches_paper() {
    let expected: [(SpoofMethod, &[SideEffect]); 4] = [
        (
            SpoofMethod::DefineProperty,
            &[
                SideEffect::IncorrectNavigatorOrder,
                SideEffect::ModifiedNavigatorLength,
                SideEffect::NewObjectKeys,
            ],
        ),
        (
            SpoofMethod::DefineGetter,
            &[
                SideEffect::IncorrectNavigatorOrder,
                SideEffect::ModifiedNavigatorLength,
                SideEffect::NewObjectKeys,
            ],
        ),
        (
            SpoofMethod::SetPrototypeOf,
            &[SideEffect::DefinedProtoWebdriver],
        ),
        (
            SpoofMethod::ProxyObjects,
            &[SideEffect::UnnamedNavigatorFunctions],
        ),
    ];
    for (method, want) in expected {
        let mut w = spoofed_world(method);
        let mut found = probe_side_effects(&mut w);
        found.sort();
        let mut want = want.to_vec();
        want.sort();
        assert_eq!(found, want, "method {}", method.name());
    }
}

#[test]
fn every_method_defeats_the_plain_webdriver_scan() {
    for method in SpoofMethod::ALL {
        let mut w = spoofed_world(method);
        assert!(
            !scan_fingerprint(&mut w).is_bot,
            "method {} failed to hide webdriver",
            method.name()
        );
    }
}

#[test]
fn no_method_is_side_effect_free() {
    // "Interestingly, none of the previously applied methods was
    // side-effect free in our measurement" (§3.1).
    for method in SpoofMethod::ALL {
        let mut w = spoofed_world(method);
        assert!(
            !probe_side_effects(&mut w).is_empty(),
            "method {} left no side effects",
            method.name()
        );
    }
}

#[test]
fn template_attack_sees_every_spoofing_attempt() {
    let detector = TemplateAttackDetector::new();
    for method in SpoofMethod::ALL {
        let mut w = spoofed_world(method);
        assert!(
            detector.is_tampered(&mut w),
            "template attack missed method {}",
            method.name()
        );
    }
    // But a pristine regular Firefox is clean.
    let mut regular = build_firefox_world(BrowserFlavor::RegularFirefox);
    assert!(!detector.is_tampered(&mut regular));
}

#[test]
fn proxy_hides_which_property_was_spoofed() {
    // §3.1: with the Proxy method, the adversary can tell *that* the
    // navigator is wrapped, but not *what* was overridden — structural
    // views stay pristine even when several properties are spoofed.
    let mut w = build_firefox_world(BrowserFlavor::WebDriverFirefox);
    hlisa_spoof::methods::proxy_wrap(
        &mut w,
        &[
            ("webdriver".to_string(), Value::Bool(false)),
            ("platform".to_string(), Value::Str("Win32".into())),
            ("hardwareConcurrency".to_string(), Value::Number(4.0)),
        ],
    )
    .unwrap();
    let nav = w.resolve_navigator();
    assert!(w.realm.object_keys(nav).is_empty());
    assert_eq!(w.realm.own_len(nav), 0);
    let pristine = build_firefox_world(BrowserFlavor::RegularFirefox);
    assert_eq!(
        w.realm.for_in_keys(nav),
        pristine.realm.for_in_keys(pristine.navigator)
    );
}
