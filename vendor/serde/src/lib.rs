//! Offline stub for the slice of `serde` this workspace uses: the
//! `derive(Serialize, Deserialize)` attributes. No serializer ever runs in
//! the offline build, so the derives expand to nothing and the marker
//! traits below exist only so bounds keep compiling.

#![forbid(unsafe_code)]

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};
