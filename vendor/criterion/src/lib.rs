//! Offline, API-compatible subset of `criterion`.
//!
//! The registry is unreachable in this build, so this vendored crate keeps
//! the workspace's benches compiling and runnable. It performs a crude
//! wall-clock measurement (a fixed, small number of iterations — enough to
//! smoke-test the hot paths and print per-iteration timings) rather than
//! criterion's full statistical sampling.

#![forbid(unsafe_code)]

use std::time::{Duration, Instant};

/// Re-export of `std::hint::black_box`, as `criterion::black_box`.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// How per-iteration inputs are batched in [`Bencher::iter_batched`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small inputs: large batches.
    SmallInput,
    /// Large inputs: small batches.
    LargeInput,
    /// One input per iteration.
    PerIteration,
}

/// Measurement driver handed to benchmark closures.
#[derive(Debug, Default)]
pub struct Bencher {
    iterations: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `routine` over a fixed number of iterations.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        let start = Instant::now();
        for _ in 0..self.iterations {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }

    /// Times `routine` over inputs built by `setup` (setup excluded from
    /// the measurement).
    pub fn iter_batched<I, O, S, F>(&mut self, mut setup: S, mut routine: F, _size: BatchSize)
    where
        S: FnMut() -> I,
        F: FnMut(I) -> O,
    {
        let mut total = Duration::ZERO;
        for _ in 0..self.iterations {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            total += start.elapsed();
        }
        self.elapsed = total;
    }
}

/// Benchmark registry/driver (subset of `criterion::Criterion`).
#[derive(Debug)]
pub struct Criterion {
    iterations: u64,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { iterations: 10 }
    }
}

impl Criterion {
    /// Runs one benchmark and prints a per-iteration timing.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        let mut bencher = Bencher {
            iterations: self.iterations,
            elapsed: Duration::ZERO,
        };
        f(&mut bencher);
        let per_iter = bencher.elapsed.as_nanos() / u128::from(bencher.iterations.max(1));
        println!(
            "bench {id:<40} {per_iter:>12} ns/iter ({} iters)",
            bencher.iterations
        );
        self
    }
}

/// Declares a group of benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the bench entry point running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
