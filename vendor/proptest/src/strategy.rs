//! Value-generation strategies (subset of `proptest::strategy`).

use crate::string::generate_matching;
use crate::test_runner::TestRng;

/// A recipe for generating values of an associated type.
pub trait Strategy {
    /// Type of generated values.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }
}

/// Result of [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, U> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> U,
{
    type Value = U;

    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> S::Value {
        (**self).generate(rng)
    }
}

/// Scalars generable from range strategies.
pub trait RangeValue: PartialOrd + Copy {
    /// Uniform draw from `[low, high)` (`[low, high]` when `inclusive`).
    fn draw(rng: &mut TestRng, low: Self, high: Self, inclusive: bool) -> Self;
}

macro_rules! impl_range_value_int {
    ($($t:ty),*) => {$(
        impl RangeValue for $t {
            fn draw(rng: &mut TestRng, low: Self, high: Self, inclusive: bool) -> Self {
                if inclusive {
                    assert!(low <= high, "empty inclusive strategy range");
                } else {
                    assert!(low < high, "empty strategy range");
                }
                let span = (high as i128) - (low as i128) + i128::from(inclusive);
                let off = rng.below(span as u64) as i128;
                (low as i128 + off) as $t
            }
        }
    )*};
}
impl_range_value_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_range_value_float {
    ($($t:ty),*) => {$(
        impl RangeValue for $t {
            fn draw(rng: &mut TestRng, low: Self, high: Self, inclusive: bool) -> Self {
                if inclusive {
                    assert!(low <= high, "empty inclusive strategy range");
                } else {
                    assert!(low < high, "empty strategy range");
                }
                let v = low + (high - low) * rng.next_f64() as $t;
                if !inclusive && v >= high {
                    low
                } else {
                    v
                }
            }
        }
    )*};
}
impl_range_value_float!(f32, f64);

impl<T: RangeValue> Strategy for core::ops::Range<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::draw(rng, self.start, self.end, false)
    }
}

impl<T: RangeValue> Strategy for core::ops::RangeInclusive<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::draw(rng, *self.start(), *self.end(), true)
    }
}

/// String-literal strategies are regexes over a supported subset
/// (character classes with ranges plus `{m,n}` repetition).
impl Strategy for &str {
    type Value = String;

    fn generate(&self, rng: &mut TestRng) -> String {
        generate_matching(self, rng)
    }
}

macro_rules! impl_strategy_tuple {
    ($(($($s:ident . $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}
impl_strategy_tuple!(
    (S0.0)(S0.0, S1.1)(S0.0, S1.1, S2.2)(S0.0, S1.1, S2.2, S3.3)(S0.0, S1.1, S2.2, S3.3, S4.4)(
        S0.0, S1.1, S2.2, S3.3, S4.4, S5.5
    )(S0.0, S1.1, S2.2, S3.3, S4.4, S5.5, S6.6)(S0.0, S1.1, S2.2, S3.3, S4.4, S5.5, S6.6, S7.7)
);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranges_and_tuples_compose() {
        let mut rng = TestRng::deterministic("compose");
        let strat = (0u8..6, -3i32..=3, 1.0f64..2.0).prop_map(|(a, b, c)| (a, b, c));
        for _ in 0..200 {
            let (a, b, c) = strat.generate(&mut rng);
            assert!(a < 6);
            assert!((-3..=3).contains(&b));
            assert!((1.0..2.0).contains(&c));
        }
    }
}
