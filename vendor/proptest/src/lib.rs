//! Offline, API-compatible subset of `proptest`.
//!
//! The registry is unreachable in this build environment, so this vendored
//! crate reimplements the slice of proptest the workspace's property tests
//! use: the [`proptest!`] macro, numeric-range / tuple / regex-literal
//! strategies, [`Strategy::prop_map`], `collection::vec`, and the
//! `prop_assert*` macros. Cases are driven by a deterministic per-test
//! generator (seeded from the test name), so failures reproduce exactly.
//! Shrinking is intentionally not implemented — a failing case panics with
//! the values embedded in the assertion message instead.

#![forbid(unsafe_code)]

pub mod collection;
pub mod strategy;
pub mod string;
pub mod test_runner;

/// Common imports, mirroring `proptest::prelude::*`.
pub mod prelude {
    pub use crate::strategy::Strategy;
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

/// Defines property tests: each `fn name(pat in strategy, ...) { body }`
/// becomes a `#[test]` that runs the body over `cases` generated inputs.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($cfg:expr)]
        $($rest:tt)*
    ) => {
        $crate::proptest!(@cfg ($cfg); $($rest)*);
    };
    (
        @cfg ($cfg:expr);
        $(
            $(#[$meta:meta])*
            fn $name:ident ( $($pat:pat in $strat:expr),+ $(,)? ) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config: $crate::test_runner::ProptestConfig = $cfg;
                let mut __rng =
                    $crate::test_runner::TestRng::deterministic(stringify!($name));
                let __strategies = ( $( $strat, )+ );
                for __case in 0..__config.cases {
                    let ( $( $pat, )+ ) =
                        $crate::strategy::Strategy::generate(&__strategies, &mut __rng);
                    $body
                }
            }
        )*
    };
    ( $($rest:tt)* ) => {
        $crate::proptest!(@cfg ($crate::test_runner::ProptestConfig::default()); $($rest)*);
    };
}

/// Asserts a condition inside a property test.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)+) => { assert!($cond, $($fmt)+) };
}

/// Asserts equality inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_eq!($a, $b, $($fmt)+) };
}

/// Asserts inequality inside a property test.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => { assert_ne!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_ne!($a, $b, $($fmt)+) };
}
