//! Regex-literal string generation for the pattern subset the workspace
//! uses: one character class (ranges and literals) with an optional
//! `{m,n}` repetition, e.g. `"[a-z]{1,8}"` or `"[ -~]{0,24}"`. Unsupported
//! patterns are treated as literal strings.

use crate::test_runner::TestRng;

/// Generates a string matching `pattern` (see module docs for the subset).
pub fn generate_matching(pattern: &str, rng: &mut TestRng) -> String {
    match parse(pattern) {
        Some((alphabet, min, max)) if !alphabet.is_empty() => {
            let len = min + rng.below((max - min + 1) as u64) as usize;
            (0..len)
                .map(|_| alphabet[rng.below(alphabet.len() as u64) as usize])
                .collect()
        }
        _ => pattern.to_string(),
    }
}

/// Parses `[<class>]{m,n}` / `[<class>]` into (alphabet, min_len, max_len).
fn parse(pattern: &str) -> Option<(Vec<char>, usize, usize)> {
    let rest = pattern.strip_prefix('[')?;
    let close = rest.find(']')?;
    let class: Vec<char> = rest[..close].chars().collect();
    let mut alphabet = Vec::new();
    let mut i = 0;
    while i < class.len() {
        if i + 2 < class.len() && class[i + 1] == '-' {
            let (lo, hi) = (class[i] as u32, class[i + 2] as u32);
            if lo > hi {
                return None;
            }
            alphabet.extend((lo..=hi).filter_map(char::from_u32));
            i += 3;
        } else {
            alphabet.push(class[i]);
            i += 1;
        }
    }
    let tail = &rest[close + 1..];
    if tail.is_empty() {
        return Some((alphabet, 1, 1));
    }
    let counts = tail.strip_prefix('{')?.strip_suffix('}')?;
    let (min, max) = match counts.split_once(',') {
        Some((m, n)) => (m.trim().parse().ok()?, n.trim().parse().ok()?),
        None => {
            let m = counts.trim().parse().ok()?;
            (m, m)
        }
    };
    if min > max {
        return None;
    }
    Some((alphabet, min, max))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn class_with_counts() {
        let mut rng = TestRng::deterministic("class");
        for _ in 0..200 {
            let s = generate_matching("[a-z]{1,8}", &mut rng);
            assert!((1..=8).contains(&s.len()), "{s:?}");
            assert!(s.chars().all(|c| c.is_ascii_lowercase()));
        }
    }

    #[test]
    fn printable_ascii_class() {
        let mut rng = TestRng::deterministic("printable");
        let mut seen_empty = false;
        for _ in 0..300 {
            let s = generate_matching("[ -~]{0,24}", &mut rng);
            assert!(s.len() <= 24);
            assert!(s.chars().all(|c| (' '..='~').contains(&c)));
            seen_empty |= s.is_empty();
        }
        assert!(seen_empty, "zero-length must be reachable");
    }

    #[test]
    fn unsupported_patterns_fall_back_to_literal() {
        let mut rng = TestRng::deterministic("literal");
        assert_eq!(generate_matching("plain", &mut rng), "plain");
    }
}
