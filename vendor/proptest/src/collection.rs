//! Collection strategies (subset of `proptest::collection`).

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Length bounds for [`vec`].
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    min: usize,
    max_exclusive: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange {
            min: n,
            max_exclusive: n + 1,
        }
    }
}

impl From<core::ops::Range<usize>> for SizeRange {
    fn from(r: core::ops::Range<usize>) -> Self {
        assert!(r.start < r.end, "empty vec size range");
        SizeRange {
            min: r.start,
            max_exclusive: r.end,
        }
    }
}

impl From<core::ops::RangeInclusive<usize>> for SizeRange {
    fn from(r: core::ops::RangeInclusive<usize>) -> Self {
        SizeRange {
            min: *r.start(),
            max_exclusive: *r.end() + 1,
        }
    }
}

/// Strategy for vectors whose elements come from `element` and whose
/// length falls in `size`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

/// Result of [`vec`].
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let span = (self.size.max_exclusive - self.size.min) as u64;
        let len = self.size.min + rng.below(span.max(1)) as usize;
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lengths_and_elements_respect_bounds() {
        let mut rng = TestRng::deterministic("vec");
        let strat = vec(-100.0f64..100.0, 2..40);
        for _ in 0..200 {
            let v = strat.generate(&mut rng);
            assert!((2..40).contains(&v.len()));
            assert!(v.iter().all(|x| (-100.0..100.0).contains(x)));
        }
    }
}
