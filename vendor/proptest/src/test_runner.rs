//! Test configuration and the deterministic case generator.

/// Per-test configuration (subset of `proptest::test_runner::Config`).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// Configuration running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// Deterministic generator driving case generation (SplitMix64 seeded from
/// the test name, so every run of a given test sees the same cases).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Generator seeded from a test's name.
    pub fn deterministic(test_name: &str) -> Self {
        // FNV-1a over the name picks a stable, name-specific seed.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in test_name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        TestRng { state: h }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform double in [0, 1).
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform draw from `[0, bound)`; `bound` must be non-zero.
    pub fn below(&mut self, bound: u64) -> u64 {
        ((u128::from(self.next_u64()) * u128::from(bound)) >> 64) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_name_same_stream() {
        let mut a = TestRng::deterministic("case");
        let mut b = TestRng::deterministic("case");
        assert_eq!(a.next_u64(), b.next_u64());
        let mut c = TestRng::deterministic("other");
        assert_ne!(a.next_u64(), c.next_u64());
    }
}
