//! No-op `Serialize`/`Deserialize` derives. The workspace only ever tags
//! types with these derives (no serializer runs offline), so expanding to
//! an empty token stream keeps every annotated type compiling unchanged.

use proc_macro::TokenStream;

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
