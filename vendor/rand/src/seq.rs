//! Sequence helpers (subset of `rand::seq`).

use crate::Rng;

/// Slice extensions (subset of `rand::seq::SliceRandom`).
pub trait SliceRandom {
    /// Element type.
    type Item;

    /// Shuffles the slice in place (Fisher–Yates).
    fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);

    /// Returns a uniformly chosen element, or `None` on an empty slice.
    fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
}

impl<T> SliceRandom for [T] {
    type Item = T;

    fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
        for i in (1..self.len()).rev() {
            let j = (rng.next_u64() % (i as u64 + 1)) as usize;
            self.swap(i, j);
        }
    }

    fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&T> {
        if self.is_empty() {
            None
        } else {
            self.get((rng.next_u64() % self.len() as u64) as usize)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::SmallRng;
    use crate::SeedableRng;

    #[test]
    fn shuffle_permutes_without_loss() {
        let mut rng = SmallRng::seed_from_u64(5);
        let mut v: Vec<u32> = (0..100).collect();
        v.shuffle(&mut rng);
        assert_ne!(v, (0..100).collect::<Vec<_>>());
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn choose_is_none_on_empty() {
        let mut rng = SmallRng::seed_from_u64(6);
        let empty: [u8; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
        assert!([7u8].choose(&mut rng).is_some());
    }
}
