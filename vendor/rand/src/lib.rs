//! Offline, API-compatible subset of `rand` 0.8.
//!
//! The build environment has no registry access, so the workspace vendors
//! the slice of the `rand` API it actually uses: the [`Rng`] extension
//! trait (`gen`, `gen_range`, `gen_bool`), [`SeedableRng::seed_from_u64`],
//! [`rngs::SmallRng`] (xoshiro256++, the same algorithm rand 0.8 uses on
//! 64-bit targets), and [`seq::SliceRandom::shuffle`]. Distributional
//! quality matters here — the workspace's statistical tests feed these
//! draws into KS tests — so the generator and the uniform-range methods
//! follow the standard constructions (53-bit mantissa doubles, widening
//! multiply for integer ranges).

#![forbid(unsafe_code)]

pub mod rngs;
pub mod seq;

/// Low-level source of randomness (subset of `rand_core::RngCore`).
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Types that can be sampled uniformly from the generator's raw output.
pub trait Standard: Sized {
    /// Draws one value.
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for u128 {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (u128::from(rng.next_u64()) << 64) | u128::from(rng.next_u64())
    }
}

impl Standard for bool {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Scalar types usable with [`Rng::gen_range`].
pub trait SampleUniform: PartialOrd + Copy {
    /// Uniform draw from `[low, high)` (`[low, high]` when `inclusive`).
    fn sample_range<R: RngCore + ?Sized>(
        rng: &mut R,
        low: Self,
        high: Self,
        inclusive: bool,
    ) -> Self;
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty => $wide:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: RngCore + ?Sized>(
                rng: &mut R,
                low: Self,
                high: Self,
                inclusive: bool,
            ) -> Self {
                if inclusive {
                    assert!(low <= high, "gen_range: empty inclusive range");
                } else {
                    assert!(low < high, "gen_range: empty range");
                }
                let span = (high as $wide).wrapping_sub(low as $wide);
                let width = if inclusive { span + 1 } else { span };
                if width == 0 {
                    // Inclusive over the whole domain.
                    return rng.next_u64() as $t;
                }
                // Widening-multiply range reduction (Lemire); the slight
                // bias over 2^64 draws is irrelevant for simulation use.
                let hi = ((u128::from(rng.next_u64()) * u128::from(width)) >> 64) as u64;
                low.wrapping_add(hi as $t)
            }
        }
    )*};
}
impl_sample_uniform_int!(
    u8 => u64, u16 => u64, u32 => u64, u64 => u64, usize => u64,
    i8 => u64, i16 => u64, i32 => u64, i64 => u64, isize => u64
);

macro_rules! impl_sample_uniform_float {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: RngCore + ?Sized>(
                rng: &mut R,
                low: Self,
                high: Self,
                inclusive: bool,
            ) -> Self {
                if inclusive {
                    assert!(low <= high, "gen_range: empty inclusive range");
                } else {
                    assert!(low < high, "gen_range: empty range");
                }
                let u = <$t as Standard>::standard_sample(rng);
                let v = low + (high - low) * u;
                // Guard against rounding up to an excluded endpoint.
                if !inclusive && v >= high {
                    <$t>::max(low, high - (high - low) * <$t>::EPSILON)
                } else {
                    v
                }
            }
        }
    )*};
}
impl_sample_uniform_float!(f32, f64);

/// Range argument forms accepted by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one value from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for core::ops::Range<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_range(rng, self.start, self.end, false)
    }
}

impl<T: SampleUniform> SampleRange<T> for core::ops::RangeInclusive<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_range(rng, *self.start(), *self.end(), true)
    }
}

/// User-facing random-value methods (subset of `rand::Rng`).
pub trait Rng: RngCore {
    /// Draws a value of type `T` from its standard distribution.
    fn gen<T: Standard>(&mut self) -> T {
        T::standard_sample(self)
    }

    /// Draws uniformly from `range`.
    fn gen_range<T, Ra>(&mut self, range: Ra) -> T
    where
        T: SampleUniform,
        Ra: SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p = {p} out of range");
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Seedable generators (subset of `rand::SeedableRng`).
pub trait SeedableRng: Sized {
    /// Constructs the generator from a 64-bit seed.
    fn seed_from_u64(state: u64) -> Self;
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::SmallRng;

    #[test]
    fn doubles_are_uniform_in_unit_interval() {
        let mut rng = SmallRng::seed_from_u64(1);
        let n = 20_000;
        let mut sum = 0.0;
        for _ in 0..n {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = SmallRng::seed_from_u64(2);
        for _ in 0..1_000 {
            let a = rng.gen_range(3..9);
            assert!((3..9).contains(&a));
            let b = rng.gen_range(1..=4usize);
            assert!((1..=4).contains(&b));
            let c = rng.gen_range(-2.5..7.5f64);
            assert!((-2.5..7.5).contains(&c));
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = SmallRng::seed_from_u64(3);
        let hits = (0..20_000).filter(|_| rng.gen_bool(0.3)).count();
        let rate = hits as f64 / 20_000.0;
        assert!((rate - 0.3).abs() < 0.02, "rate {rate}");
    }

    #[test]
    fn same_seed_same_stream() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }
}
