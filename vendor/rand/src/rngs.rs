//! Concrete generators.

use crate::{RngCore, SeedableRng};

/// Small, fast, non-cryptographic generator — xoshiro256++, the algorithm
/// `rand` 0.8's `SmallRng` uses on 64-bit platforms.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SmallRng {
    s: [u64; 4],
}

#[inline]
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl SeedableRng for SmallRng {
    fn seed_from_u64(state: u64) -> Self {
        // Expand the seed with SplitMix64, as rand_core does, so that
        // similar seeds yield uncorrelated states.
        let mut sm = state;
        let s = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        // xoshiro must not start from the all-zero state.
        if s == [0, 0, 0, 0] {
            SmallRng { s: [1, 2, 3, 4] }
        } else {
            SmallRng { s }
        }
    }
}

impl RngCore for SmallRng {
    fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn xoshiro256pp_reference_vector() {
        // First outputs for state [1, 2, 3, 4] from the reference
        // implementation (Blackman & Vigna).
        let mut rng = SmallRng { s: [1, 2, 3, 4] };
        let expected: [u64; 4] = [41943041, 58720359, 3588806011781223, 3591011842654386];
        for e in expected {
            assert_eq!(rng.next_u64(), e);
        }
    }

    #[test]
    fn nearby_seeds_decorrelate() {
        let mut a = SmallRng::seed_from_u64(0);
        let mut b = SmallRng::seed_from_u64(1);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }
}
